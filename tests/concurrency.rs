//! Concurrency suite: the snapshot read path under a live writer, and
//! the sharding equivalence contracts.
//!
//! Three contracts:
//!
//! 1. *Liveness*: a writer thread interleaving `observe` + `snapshot`
//!    with reader threads running `score_batch_parallel` completes —
//!    the read path takes no locks, so the scope ending at all is the
//!    no-deadlock assertion — and every published epoch is internally
//!    consistent (`epoch == network.revision()`, `model_epoch ≤ epoch`,
//!    `fitted ⇔ model_epoch.is_some()`).
//! 2. *Determinism*: `score_batch_parallel` is bit-identical to the
//!    serial path at every thread count.
//! 3. *Sharding*: one shard is bit-for-bit the unsharded predictor
//!    (property-tested over random streams), and N shards score exactly
//!    like N standalone predictors fed the owner-routed substreams.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

use proptest::prelude::*;
use ssf_repro::datasets::DatasetSpec;
use ssf_repro::prelude::*;

#[allow(clippy::expect_used)] // test helper
fn quick_config(seed: u64) -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            seed,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
        .build()
        .expect("valid concurrency configuration")
}

/// A fit-capable synthetic stream in timestamp order.
fn stream_events() -> Vec<(NodeId, NodeId, Timestamp)> {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    events
}

fn bits(scores: &[Option<f64>]) -> Vec<Option<u64>> {
    scores.iter().map(|s| s.map(f64::to_bits)).collect()
}

/// Every snapshot a reader can observe must be internally consistent,
/// and its parallel batch must bit-match its own serial batch.
#[allow(clippy::unwrap_used)] // test assertions
fn check_snapshot(snap: &ScoringSnapshot, pairs: &[(NodeId, NodeId)]) {
    assert_eq!(
        snap.epoch(),
        snap.graph().revision(),
        "published epoch must equal the frozen graph's revision"
    );
    assert_eq!(
        snap.is_fitted(),
        snap.model_epoch().is_some(),
        "fitted flag and model epoch must agree atomically"
    );
    if let Some(me) = snap.model_epoch() {
        assert!(me <= snap.epoch(), "model from the future: {me}");
    }
    let serial = snap.score_batch(pairs);
    let parallel = snap.score_batch_parallel(pairs, 2);
    assert_eq!(bits(&serial), bits(&parallel), "reader batch diverged");
}

/// One writer keeps observing and publishing; three readers hammer the
/// latest snapshot with parallel batches the whole time. The scope
/// ending is the no-deadlock assertion.
#[test]
#[allow(clippy::unwrap_used)] // mutex in a test; poisoning is a failure
fn concurrent_publish_and_score_never_deadlocks() {
    let events = stream_events();
    let pairs: Vec<(NodeId, NodeId)> =
        vec![(0, 1), (2, 7), (3, 3), (5, 900), (1, 4), (0, 1), (6, 2)];
    let latest: Mutex<Option<ScoringSnapshot>> = Mutex::new(None);
    let done = AtomicBool::new(false);

    thread::scope(|s| {
        s.spawn(|| {
            let mut p = OnlineLinkPredictor::new(quick_config(7));
            for (i, &(u, v, t)) in events.iter().enumerate() {
                p.observe(u, v, t);
                if i % 5 == 0 {
                    *latest.lock().unwrap() = Some(p.snapshot());
                }
            }
            *latest.lock().unwrap() = Some(p.snapshot());
            done.store(true, Ordering::Release);
        });
        for _ in 0..3 {
            s.spawn(|| {
                let mut seen = 0u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = latest.lock().unwrap().clone();
                    if let Some(snap) = snap {
                        check_snapshot(&snap, &pairs);
                        seen += 1;
                    }
                    if finished {
                        break;
                    }
                }
                assert!(seen > 0, "reader never saw a snapshot");
            });
        }
    });
}

/// The parallel ladder: every thread count returns the serial bits.
#[test]
fn score_batch_parallel_is_bit_identical_at_every_thread_count() {
    let mut p = OnlineLinkPredictor::new(quick_config(3));
    for &(u, v, t) in &stream_events() {
        p.observe(u, v, t);
    }
    assert!(p.is_fitted(), "stream must support a fit");
    let n = p.network().node_count() as NodeId;
    let pairs: Vec<(NodeId, NodeId)> = (0..96u32)
        .map(|i| ((i * 7) % n, (i * 11 + 1) % n))
        .collect();
    let snap = p.snapshot();
    let serial = snap.score_batch(&pairs);
    assert!(
        serial.iter().any(Option::is_some),
        "the ladder must score real values"
    );
    // The snapshot must also bit-match the live predictor at publish.
    let live: Vec<Option<f64>> =
        pairs.iter().map(|&(u, v)| p.score(u, v)).collect();
    assert_eq!(bits(&serial), bits(&live), "snapshot diverged from live");
    for threads in [1, 2, 4, 8] {
        let parallel = snap.score_batch_parallel(&pairs, threads);
        assert_eq!(
            bits(&serial),
            bits(&parallel),
            "diverged at {threads} threads"
        );
    }
}

/// N shards score exactly like N standalone predictors fed the
/// owner-routed substreams — the documented sharding semantics.
#[test]
#[allow(clippy::expect_used)] // test setup
fn sharded_scores_match_standalone_substream_predictors() {
    const SHARDS: usize = 3;
    let events = stream_events();
    let mut sharded = ShardedPredictor::new(quick_config(5), SHARDS)
        .expect("valid concurrency configuration");
    let mut standalone: Vec<OnlineLinkPredictor> = (0..SHARDS)
        .map(|_| OnlineLinkPredictor::new(quick_config(5)))
        .collect();
    for &(u, v, t) in &events {
        sharded.observe(u, v, t);
        standalone[u.min(v) as usize % SHARDS].observe(u, v, t);
    }
    let n = sharded
        .shard_healths()
        .iter()
        .map(|h| h.accepted)
        .sum::<u64>();
    assert_eq!(n, events.len() as u64);
    let node_count =
        events.iter().map(|&(u, v, _)| u.max(v)).max().unwrap_or(0);
    let pairs: Vec<(NodeId, NodeId)> = (0..node_count)
        .map(|u| (u, (u * 13 + 1) % (node_count + 1)))
        .collect();
    let snap = sharded.snapshot();
    for &(u, v) in &pairs {
        let owner = sharded.shard_of(u, v);
        let want = standalone[owner].score(u, v).map(f64::to_bits);
        assert_eq!(
            sharded.score(u, v).map(f64::to_bits),
            want,
            "sharded.score diverged on ({u}, {v})"
        );
        assert_eq!(
            snap.score(u, v).map(f64::to_bits),
            want,
            "sharded snapshot diverged on ({u}, {v})"
        );
    }
    let batch = sharded.score_batch(&pairs);
    let routed: Vec<Option<f64>> = pairs
        .iter()
        .map(|&(u, v)| standalone[sharded.shard_of(u, v)].score(u, v))
        .collect();
    assert_eq!(bits(&batch), bits(&routed), "grouped batch diverged");
}

proptest! {
    // Every case streams a network and may fit several MLPs; keep the
    // case count small like the stream property in `properties.rs`.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One shard *is* the unsharded predictor: same acceptance, same
    /// health counters, same score bits over random interleavings.
    #[test]
    fn one_shard_is_bit_identical_to_unsharded(
        events in prop::collection::vec(
            (0..12u32, 0..12u32).prop_filter("no self-loops", |(u, v)| u != v),
            30..80,
        ),
        seed in 0..10u64,
    ) {
        let config = OnlinePredictorConfig::builder()
            .method(MethodOptions {
                nm_epochs: 10,
                seed,
                ..MethodOptions::default()
            })
            .refit_every(8)
            .min_positives(6)
            .history_folds(0)
            .build()
            .expect("valid property configuration");
        let mut plain = OnlineLinkPredictor::new(config.clone());
        let mut sharded = ShardedPredictor::new(config, 1)
            .expect("valid property configuration");
        let pairs: Vec<(NodeId, NodeId)> =
            vec![(0, 1), (1, 0), (2, 7), (3, 3), (5, 40), (0, 11)];
        for (i, &(u, v)) in events.iter().enumerate() {
            let t = 1 + i as Timestamp / 3;
            let a = plain.observe(u, v, t);
            let b = sharded.observe(u, v, t);
            prop_assert_eq!(
                a.is_accepted(),
                b.is_accepted(),
                "acceptance diverged at event {}", i
            );
            if i % 13 != 0 {
                continue;
            }
            for &(u, v) in &pairs {
                let x = plain.score(u, v).map(f64::to_bits);
                let y = sharded.score(u, v).map(f64::to_bits);
                prop_assert_eq!(
                    x, y,
                    "score({}, {}) diverged at event {}", u, v, i
                );
            }
        }
        let (ph, sh) = (plain.health(), sharded.health());
        prop_assert_eq!(ph.accepted, sh.accepted);
        prop_assert_eq!(ph.quarantined, sh.quarantined);
        prop_assert_eq!(ph.fitted, sh.fitted);
        prop_assert_eq!(ph.model_epoch, sh.model_epoch);
        prop_assert_eq!(ph.graph_revision, sh.graph_revision);
    }
}
