//! Differential kernel tests: the branch-light optimized extraction
//! kernels (sorted-slice structure merge, hash-free Palette-WL,
//! early-exit bounded Dijkstra) against the retained naive
//! [`ssf_core::reference`] pipeline.
//!
//! Every assertion here is *bit* equality on the feature values — the
//! optimized kernels are rewrites of the numeric hot path, so any
//! reordering of float operations, any divergence in tie-breaking, or
//! any cache-reuse leak shows up as a failed `to_bits` comparison.
//! Coverage axes: all six [`EntryEncoding`]s, `K ∈ {3..6}`, uncached vs
//! cached (fresh and warm-reused caches), and the multi-threaded
//! `extract_batch` at 1/2/8 workers.

use proptest::prelude::*;
use ssf_repro::dyngraph::{DynamicNetwork, NodeId, Timestamp};
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_core::{
    reference, EntryEncoding, ExtractionCache, SsfConfig, SsfExtractor,
};
use ssf_repro::ssf_eval::{LinkSample, Split, SplitConfig};

const ENCODINGS: [EntryEncoding; 6] = [
    EntryEncoding::NormalizedInfluence,
    EntryEncoding::LogInfluence,
    EntryEncoding::ReciprocalDistance,
    EntryEncoding::InfluenceAndStructure,
    EntryEncoding::LinkCount,
    EntryEncoding::Binary,
];

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Strategy: a connected-ish random multigraph on up to `n` nodes (same
/// shape as `tests/properties.rs`).
fn network(
    n: NodeId,
    max_links: usize,
) -> impl Strategy<Value = DynamicNetwork> {
    prop::collection::vec(
        (0..n, 0..n, 1..20u32).prop_filter("no self-loops", |(u, v, _)| u != v),
        2..max_links,
    )
    .prop_map(move |links| {
        let mut g = DynamicNetwork::new();
        for i in 0..n - 1 {
            g.add_link(i, i + 1, 1);
        }
        for (u, v, t) in links {
            g.add_link(u, v, t);
        }
        g
    })
}

/// Asserts the optimized uncached and cached paths both reproduce the
/// reference pipeline bit for bit on one target pair.
#[allow(clippy::unwrap_used, clippy::expect_used)] // test helper
fn assert_matches_reference(
    g: &DynamicNetwork,
    a: NodeId,
    b: NodeId,
    l_t: Timestamp,
    config: &SsfConfig,
    cache: &mut ExtractionCache,
) {
    let expect = reference::try_extract(g, a, b, l_t, config);
    let ex = SsfExtractor::new(*config);
    let uncached = ex.try_extract(g, a, b, l_t);
    let cached = ex.try_extract_cached(g, a, b, l_t, cache);
    match expect {
        Ok((values, h, s_nodes)) => {
            let f = uncached.expect("reference extracted, optimized failed");
            assert_eq!(bits(f.values()), bits(&values), "uncached values");
            assert_eq!(f.radius(), h, "uncached radius");
            assert_eq!(f.structure_node_count(), s_nodes, "uncached nodes");
            let f = cached.expect("reference extracted, cached failed");
            assert_eq!(bits(f.values()), bits(&values), "cached values");
            assert_eq!(f.radius(), h, "cached radius");
            assert_eq!(f.structure_node_count(), s_nodes, "cached nodes");
        }
        Err(e) => {
            assert_eq!(uncached.unwrap_err(), e, "uncached error");
            assert_eq!(cached.unwrap_err(), e, "cached error");
        }
    }
}

/// Deterministic sweep: every encoding × K ∈ {3..6} on a fixed graph that
/// exercises merging fans, a bridge, multi-links and an outlying chain —
/// guaranteed coverage of all 24 combinations regardless of proptest
/// case generation.
#[test]
fn every_encoding_and_k_matches_reference() {
    let g: DynamicNetwork = [
        (0, 2, 1),
        (0, 3, 1),
        (0, 4, 2),
        (1, 5, 2),
        (1, 6, 3),
        (0, 7, 3),
        (1, 7, 4),
        (2, 8, 5),
        (8, 9, 6),
        (9, 10, 7),
        (4, 5, 8),
        (4, 5, 9), // multi-link
    ]
    .into_iter()
    .collect();
    for encoding in ENCODINGS {
        for k in 3..=6usize {
            let config =
                SsfConfig::new(k).with_theta(0.5).with_encoding(encoding);
            let mut cache = ExtractionCache::new();
            for (a, b) in [(0, 1), (2, 5), (9, 0), (10, 3)] {
                assert_matches_reference(&g, a, b, 12, &config, &mut cache);
            }
        }
    }
}

/// The Dijkstra early-exit must not depend on reachability: endpoints in
/// different components, pendant endpoints with empty link sets, and
/// fully padded slots all reduce to the reference answer.
#[test]
fn reciprocal_distance_disconnected_matches_reference() {
    // Two components: {0,2,3,4,8} and {1,5,6,7} — target (0,1) spans them.
    let g: DynamicNetwork = [
        (0, 2, 1),
        (2, 3, 2),
        (3, 4, 3),
        (5, 6, 4),
        (6, 7, 5),
        (1, 5, 6),
        (4, 8, 7),
    ]
    .into_iter()
    .collect();
    let config = SsfConfig::new(4)
        .with_theta(0.5)
        .with_encoding(EntryEncoding::ReciprocalDistance);
    let mut cache = ExtractionCache::new();
    for (a, b) in [(0, 1), (4, 7), (0, 8), (8, 6)] {
        assert_matches_reference(&g, a, b, 9, &config, &mut cache);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random graphs, random encoding/K/target: uncached and cached
    /// optimized extraction are bit-identical to the reference pipeline.
    /// The cache is reused across all targets of a case, so warm ball
    /// reuse, pair memo hits and K-growth all run under the comparison.
    #[test]
    fn kernels_match_reference(
        g in network(12, 50),
        enc_idx in 0..ENCODINGS.len(),
        k in 3..7usize,
        targets in prop::collection::vec((0..12u32, 0..12u32), 1..6),
    ) {
        let config = SsfConfig::new(k)
            .with_theta(0.5)
            .with_encoding(ENCODINGS[enc_idx]);
        let mut cache = ExtractionCache::new();
        for (a, b) in targets {
            assert_matches_reference(&g, a, b, 21, &config, &mut cache);
        }
    }

    /// One warm cache serving a *growing* K (3 → 6) on the same graph:
    /// the pair memo is keyed per configuration, so K-growth must re-run
    /// the kernels, never serve a stale smaller-K selection.
    #[test]
    fn cache_survives_k_growth(
        g in network(10, 40),
        enc_idx in 0..ENCODINGS.len(),
    ) {
        let mut cache = ExtractionCache::new();
        for k in 3..=6usize {
            let config = SsfConfig::new(k)
                .with_theta(0.5)
                .with_encoding(ENCODINGS[enc_idx]);
            for (a, b) in [(0u32, 1u32), (2, 7), (0, 1)] {
                assert_matches_reference(&g, a, b, 25, &config, &mut cache);
            }
        }
    }

    /// `extract_batch` rows at 1, 2 and 8 workers all equal the reference
    /// pipeline run sample by sample against the fold history (degraded
    /// rows — degenerate pairs — are all-zero by contract).
    #[test]
    fn extract_batch_matches_reference_at_every_thread_count(
        g in network(14, 70),
        seed in 0..20u64,
        enc_idx in 0..ENCODINGS.len(),
    ) {
        let Ok(split) = Split::new(
            &g,
            &SplitConfig { seed, ..SplitConfig::default() },
        ) else {
            return Ok(()); // tiny/degenerate networks may not split
        };
        let opts = MethodOptions {
            ssf_encoding: ENCODINGS[enc_idx],
            ..MethodOptions::default()
        };
        let config = SsfConfig::new(opts.k)
            .with_theta(opts.theta)
            .with_encoding(opts.ssf_encoding);
        let n = split.history.node_count() as NodeId;
        // ≥ 64 samples so multi-threaded runs actually spawn workers;
        // every 9th sample is degenerate (u == v) to pin zero-row padding.
        let samples: Vec<LinkSample> = (0..72u32)
            .map(|i| LinkSample {
                u: (i * 7 + seed as u32) % n,
                v: if i % 9 == 0 { (i * 7 + seed as u32) % n } else { (i * 11 + 1) % n },
                label: i % 2 == 0,
            })
            .collect();
        let present =
            split.history.max_timestamp().map_or(split.l_t, |t| t + 1);
        let dim = Method::Ssfnm.feature_dim(&opts).unwrap_or(0);
        let expected: Vec<Vec<u64>> = samples
            .iter()
            .map(|s| {
                reference::try_extract(
                    &split.history, s.u, s.v, present, &config,
                )
                .map_or_else(|_| vec![0f64.to_bits(); dim], |(v, _, _)| bits(&v))
            })
            .collect();
        for threads in [1usize, 2, 8] {
            let rows =
                Method::Ssfnm.extract_batch(&split, &opts, &samples, threads);
            prop_assert_eq!(rows.len(), expected.len());
            for (i, (row, want)) in rows.iter().zip(&expected).enumerate() {
                prop_assert_eq!(
                    &bits(row), want,
                    "row {} diverged from reference at {} threads",
                    i, threads
                );
            }
        }
    }
}
