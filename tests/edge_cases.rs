//! Adversarial topologies and degenerate inputs: the whole pipeline must
//! stay total (no panics, well-formed outputs) on graphs that stress its
//! assumptions.

use ssf_repro::dyngraph::DynamicNetwork;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_core::{EntryEncoding, SsfConfig, SsfExtractor};
use ssf_repro::ssf_eval::{Split, SplitConfig};

fn extract_all_encodings(g: &DynamicNetwork, a: u32, b: u32, k: usize) {
    for encoding in [
        EntryEncoding::NormalizedInfluence,
        EntryEncoding::LogInfluence,
        EntryEncoding::ReciprocalDistance,
        EntryEncoding::InfluenceAndStructure,
        EntryEncoding::LinkCount,
        EntryEncoding::Binary,
    ] {
        let cfg = SsfConfig::new(k).with_encoding(encoding);
        let f = SsfExtractor::new(cfg).extract(g, a, b, 100);
        assert_eq!(f.values().len(), cfg.feature_dim(), "{encoding:?}");
        assert!(
            f.values().iter().all(|v| v.is_finite()),
            "{encoding:?} produced non-finite values"
        );
    }
}

/// Complete graph: maximal density, no structure-node merging possible
/// between interconnected nodes.
#[test]
fn complete_graph_extraction() {
    let mut g = DynamicNetwork::new();
    for u in 0..15u32 {
        for v in (u + 1)..15 {
            g.add_link(u, v, 1 + (u + v) % 9);
        }
    }
    extract_all_encodings(&g, 0, 1, 10);
}

/// Star graph: every leaf merges into one structure node; the structure
/// subgraph is tiny and the feature must zero-pad.
#[test]
fn star_graph_extraction() {
    let mut g = DynamicNetwork::new();
    for leaf in 1..40u32 {
        g.add_link(0, leaf, leaf % 7 + 1);
    }
    // Target between two leaves: their common neighbor is the hub.
    extract_all_encodings(&g, 1, 2, 10);
    // Target between hub and a leaf.
    extract_all_encodings(&g, 0, 5, 10);
}

/// Long path: h must grow far to collect K structure nodes.
#[test]
fn long_path_growth() {
    let g: DynamicNetwork = (0..50u32).map(|i| (i, i + 1, 1 + i % 5)).collect();
    let ex = SsfExtractor::new(SsfConfig::new(12));
    let f = ex.extract(&g, 25, 26, 10);
    assert!(
        f.radius() >= 3,
        "path needs a deep radius, got {}",
        f.radius()
    );
    assert!(f.structure_node_count() >= 12);
}

/// Disconnected endpoints: the pipeline works on the union of both
/// components.
#[test]
fn disconnected_endpoints() {
    let mut g = DynamicNetwork::new();
    for i in 0..10u32 {
        g.add_link(i, (i + 1) % 10, 1);
    }
    for i in 20..30u32 {
        g.add_link(i, (i + 1 - 20) % 10 + 20, 2);
    }
    extract_all_encodings(&g, 0, 25, 8);
}

/// All links at a single timestamp: decay is constant, influence reduces
/// to link counting; nothing divides by zero.
#[test]
fn single_timestamp_network() {
    let mut g = DynamicNetwork::new();
    for u in 0..12u32 {
        g.add_link(u, (u + 1) % 12, 5);
        g.add_link(u, (u + 3) % 12, 5);
    }
    extract_all_encodings(&g, 0, 6, 8);
}

/// Extreme multi-edges: thousands of parallel links between one pair.
#[test]
fn heavy_multi_edge_pair() {
    let mut g = DynamicNetwork::new();
    for t in 0..2000u32 {
        g.add_link(0, 2, 1 + t % 10);
    }
    g.add_link(1, 2, 5);
    g.add_link(2, 3, 5);
    extract_all_encodings(&g, 0, 1, 4);
}

/// Methods run (not just extraction) on a pathological hub-and-spokes
/// network where negatives are hard to sample.
#[test]
fn methods_on_dense_small_network() {
    let mut g = DynamicNetwork::new();
    // Nearly complete 12-node network over 10 ticks, a few gaps.
    for u in 0..12u32 {
        for v in (u + 1)..12 {
            if (u + v) % 7 != 0 {
                g.add_link(u, v, 1 + (u * v) % 9);
            }
        }
    }
    // Fresh links at the last tick filling two gaps.
    let mut added = 0;
    for u in 0..12u32 {
        for v in (u + 1)..12 {
            if !g.has_link(u, v) && added < 3 {
                g.add_link(u, v, 10);
                added += 1;
            }
        }
    }
    match Split::new(&g, &SplitConfig::default()) {
        Ok(split) => {
            let opts = MethodOptions {
                nm_epochs: 5,
                ..MethodOptions::default()
            };
            for m in [Method::Cn, Method::Ssflr, Method::Tmf] {
                let r = m.evaluate(&split, &opts);
                assert!(r.auc.is_finite());
            }
        }
        Err(e) => {
            // Dense tiny graphs may legitimately fail negative sampling —
            // but they must fail with the typed error, not a panic.
            let _ = e.to_string();
        }
    }
}

/// K larger than anything the component can provide.
#[test]
fn k_exceeds_component() {
    let g: DynamicNetwork =
        [(0, 1, 1), (1, 2, 2), (2, 0, 3)].into_iter().collect();
    let cfg = SsfConfig::new(20);
    let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 5);
    assert_eq!(f.values().len(), cfg.feature_dim());
    assert!(f.structure_node_count() <= 3);
}

/// Timestamps at the u32 extremes must not overflow the decay math.
#[test]
fn extreme_timestamps() {
    let g: DynamicNetwork =
        [(0, 2, 1), (1, 2, u32::MAX - 1), (2, 3, u32::MAX / 2)]
            .into_iter()
            .collect();
    let ex = SsfExtractor::new(SsfConfig::new(4));
    let f = ex.extract(&g, 0, 1, u32::MAX);
    assert!(f.values().iter().all(|v| v.is_finite()));
}
