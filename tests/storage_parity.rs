//! Storage-layout parity suite: the compact (u32 + varint arena) and
//! wide (usize-offset) frozen layouts must be indistinguishable to
//! every scoring path — same bits, not just close scores.
//!
//! Coverage axes:
//!
//! * SSF extraction over both layouts, all six [`EntryEncoding`]s,
//!   uncached and cached,
//! * the full online predictor (observe → compaction → fit → score /
//!   score_batch) configured wide vs compact,
//! * snapshot `score_batch_parallel` at 1 and 8 worker threads,
//! * the persist round-trip: checkpoint a compact-configured predictor,
//!   `ScoringSnapshot::load` the file, and score — the loaded replica
//!   must match the writer bit for bit in both layouts.

// Test suite: a failed expectation is the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::sync::Arc;

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::{DynamicNetwork, FrozenGraph, NodeId, StorageMode};
use ssf_repro::methods::MethodOptions;
use ssf_repro::obs::ObsHandle;
use ssf_repro::ssf_core::{
    EntryEncoding, ExtractionCache, SsfConfig, SsfExtractor,
};
use ssf_repro::{
    DurabilityPolicy, OnlineLinkPredictor, OnlinePredictorConfig,
    ScoringSnapshot,
};

const ENCODINGS: [EntryEncoding; 6] = [
    EntryEncoding::NormalizedInfluence,
    EntryEncoding::LogInfluence,
    EntryEncoding::ReciprocalDistance,
    EntryEncoding::InfluenceAndStructure,
    EntryEncoding::LinkCount,
    EntryEncoding::Binary,
];

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn score_bits(scores: &[Option<f64>]) -> Vec<Option<u64>> {
    scores.iter().map(|s| s.map(f64::to_bits)).collect()
}

/// A fixed network with merging fans, a bridge, multi-links and an
/// outlying chain (the same shape the kernel suite sweeps).
fn fixture_network() -> DynamicNetwork {
    let mut g: DynamicNetwork = [
        (0u32, 2u32, 1u32),
        (0, 3, 1),
        (0, 4, 2),
        (1, 5, 2),
        (1, 6, 3),
        (2, 7, 3),
        (3, 7, 4),
        (5, 7, 4),
        (4, 8, 5),
        (6, 8, 5),
        (7, 8, 6),
        (8, 9, 7),
        (9, 10, 8),
        (0, 2, 9),
        (1, 5, 9),
        (7, 8, 10),
    ]
    .into_iter()
    .collect();
    // Multi-links with spread timestamps exercise the delta encoding.
    g.add_link(0, 2, 40);
    g.add_link(7, 8, 55);
    g
}

/// Extraction parity: for every encoding, extracting over the wide and
/// the compact frozen layout produces bit-identical features, on both
/// the uncached and the cached path.
#[test]
fn extraction_is_bit_identical_across_layouts_and_encodings() {
    let g = fixture_network();
    let wide = FrozenGraph::from_view_with(&g, StorageMode::Wide)
        .expect("wide freeze never fails");
    let compact = FrozenGraph::from_view_with(&g, StorageMode::Compact)
        .expect("fixture fits the compact limits");
    let targets = [(0u32, 1u32, 11u32), (2, 5, 11), (9, 0, 11), (4, 6, 11)];
    for encoding in ENCODINGS {
        for k in [3usize, 5] {
            let config = SsfConfig::new(k).with_encoding(encoding);
            let ex = SsfExtractor::new(config);
            let mut cache_w = ExtractionCache::new();
            let mut cache_c = ExtractionCache::new();
            for &(a, b, t) in &targets {
                let w = ex.try_extract(&wide, a, b, t);
                let c = ex.try_extract(&compact, a, b, t);
                match (w, c) {
                    (Ok(w), Ok(c)) => {
                        assert_eq!(
                            bits(w.values()),
                            bits(c.values()),
                            "{encoding:?} k={k} ({a},{b}) uncached"
                        );
                        assert_eq!(w.radius(), c.radius());
                    }
                    (Err(w), Err(c)) => assert_eq!(w, c),
                    (w, c) => {
                        panic!("layouts disagree on outcome: {w:?} vs {c:?}")
                    }
                }
                let w = ex.try_extract_cached(&wide, a, b, t, &mut cache_w);
                let c = ex.try_extract_cached(&compact, a, b, t, &mut cache_c);
                match (w, c) {
                    (Ok(w), Ok(c)) => assert_eq!(
                        bits(w.values()),
                        bits(c.values()),
                        "{encoding:?} k={k} ({a},{b}) cached"
                    ),
                    (Err(w), Err(c)) => assert_eq!(w, c),
                    (w, c) => {
                        panic!("layouts disagree on outcome: {w:?} vs {c:?}")
                    }
                }
            }
        }
    }
}

fn parity_config(storage: StorageMode) -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
        .storage(storage)
        .build()
        .expect("valid parity configuration")
}

/// Feeds the same fit-capable stream into both predictors.
fn feed_both(
    a: &mut OnlineLinkPredictor,
    b: &mut OnlineLinkPredictor,
) -> Vec<(NodeId, NodeId)> {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    for l in links {
        a.observe(l.u, l.v, l.t);
        b.observe(l.u, l.v, l.t);
    }
    assert!(a.is_fitted() && b.is_fitted(), "streams must support a fit");
    let n = a.network().node_count() as NodeId;
    let mut pairs = Vec::new();
    for u in 0..24 {
        pairs.push((u, (u * 7 + 3) % n));
        pairs.push((u, (u * 13 + 1) % n));
    }
    pairs.push((0, n + 9)); // out of range: both must return None
    pairs
}

/// End-to-end predictor parity: identical streams through a wide- and a
/// compact-configured predictor produce bit-identical scores on the
/// per-pair path, the batch path, and snapshot batch scoring at 1 and
/// 8 threads.
#[test]
fn serving_paths_are_bit_identical_across_layouts() {
    let mut wide = OnlineLinkPredictor::new(parity_config(StorageMode::Wide));
    let mut compact =
        OnlineLinkPredictor::new(parity_config(StorageMode::Compact));
    let pairs = feed_both(&mut wide, &mut compact);
    assert_eq!(wide.snapshot().storage_mode(), StorageMode::Wide);
    assert_eq!(compact.snapshot().storage_mode(), StorageMode::Compact);

    for &(u, v) in &pairs {
        let w = wide.score(u, v);
        let c = compact.score(u, v);
        assert_eq!(score_bits(&[w]), score_bits(&[c]), "pair ({u},{v})");
    }
    let w = wide.score_batch(&pairs);
    let c = compact.score_batch(&pairs);
    assert_eq!(score_bits(&w), score_bits(&c), "batch path");

    let ws = wide.snapshot();
    let cs = compact.snapshot();
    for threads in [1usize, 8] {
        let w = ws.score_batch_parallel(&pairs, threads);
        let c = cs.score_batch_parallel(&pairs, threads);
        assert_eq!(score_bits(&w), score_bits(&c), "{threads} threads");
        assert_eq!(score_bits(&w), score_bits(&ws.score_batch(&pairs)));
    }
}

/// Persist round-trip parity: checkpoint both layouts, load each file
/// into a read-only [`ScoringSnapshot`], and require (a) the storage
/// mode survives the file format, (b) loaded replicas score exactly
/// like their writers, (c) the two layouts' files serve identical bits.
#[test]
fn checkpointed_compact_state_scores_bit_identically_after_load() {
    let base = std::env::temp_dir()
        .join(format!("ssf-storage-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let mut loaded: Vec<(ScoringSnapshot, Vec<Option<u64>>, StorageMode)> =
        Vec::new();
    {
        let mut wide = OnlineLinkPredictor::open_with(
            parity_config(StorageMode::Wide),
            &base.join("wide"),
            DurabilityPolicy::default(),
            ObsHandle::noop(),
        )
        .expect("fresh durability dir")
        .0;
        let mut compact = OnlineLinkPredictor::open_with(
            parity_config(StorageMode::Compact),
            &base.join("compact"),
            DurabilityPolicy::default(),
            ObsHandle::noop(),
        )
        .expect("fresh durability dir")
        .0;
        let pairs = feed_both(&mut wide, &mut compact);
        for (p, mode) in [
            (&mut wide, StorageMode::Wide),
            (&mut compact, StorageMode::Compact),
        ] {
            let writer_scores = score_bits(&p.snapshot().score_batch(&pairs));
            let path = p.checkpoint().expect("checkpoint succeeds");
            let snap = ScoringSnapshot::load(&path).expect("loadable");
            assert_eq!(snap.storage_mode(), mode, "mode survives the file");
            assert_eq!(snap.epoch(), p.network().revision());
            let loaded_scores = score_bits(&snap.score_batch(&pairs));
            assert_eq!(
                loaded_scores, writer_scores,
                "loaded replica diverged from its writer ({mode})"
            );
            loaded.push((snap, loaded_scores, mode));
        }
    }
    assert_eq!(
        loaded[0].1, loaded[1].1,
        "wide and compact files serve different bits"
    );
    drop(loaded);
    let _ = std::fs::remove_dir_all(&base);
}

/// The compact layout shares one `Arc` allocation: cloning the frozen
/// base for a snapshot must not deep-copy the arena.
#[test]
fn compact_base_is_shared_not_copied_across_snapshots() {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let frozen = Arc::new(
        FrozenGraph::from_view_with(&g, StorageMode::Compact)
            .expect("fits compact limits"),
    );
    let before = frozen.heap_bytes();
    let clones: Vec<Arc<FrozenGraph>> =
        (0..8).map(|_| Arc::clone(&frozen)).collect();
    assert_eq!(frozen.heap_bytes(), before);
    for c in &clones {
        assert_eq!(c.heap_bytes(), before);
        assert!(c.is_compact());
    }
}
