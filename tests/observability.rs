//! Metrics-invariant suite: end-to-end checks that the observability
//! layer measures the pipeline without ever steering it.
//!
//! The contract under test has two halves. *Accuracy*: every counter,
//! gauge and span histogram the serving path emits must agree with the
//! ground truth the predictor already tracks ([`StreamStats`],
//! [`CacheStats`], span guards balancing). *Neutrality*: running the
//! identical workload with the no-op recorder must produce bit-identical
//! scores and feature rows — recording is observation, never influence.
//!
//! The golden test at the bottom pins the `ssf.metrics.v1` JSON export
//! byte-for-byte against `tests/fixtures/metrics_snapshot.json`
//! (regenerate deliberately with `UPDATE_METRICS_GOLDEN=1`).

use std::sync::Arc;

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::NodeId;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::obs::{
    labeled, ObsHandle, Registry, SPANS_ENTERED, SPANS_EXITED,
};
use ssf_repro::ssf_eval::{LinkSample, Split, SplitConfig};
use ssf_repro::{
    OnlineLinkPredictor, OnlinePredictorConfig, OnlinePredictorConfigBuilder,
};

/// The shared builder the suite's configs start from; individual tests
/// chain further setters before `build()`.
fn quick_builder() -> OnlinePredictorConfigBuilder {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
}

#[allow(clippy::expect_used)] // test helper
fn quick_config() -> OnlinePredictorConfig {
    quick_builder().build().expect("valid quick configuration")
}

/// Feeds a fit-capable stream into `p` (same generator the stream tests
/// use) and returns the candidate pairs every test scores.
fn feed_stream(p: &mut OnlineLinkPredictor) -> Vec<(NodeId, NodeId)> {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    for l in links {
        p.observe(l.u, l.v, l.t);
    }
    assert!(p.is_fitted(), "stream must support a fit");
    let n = p.network().node_count() as NodeId;
    vec![(0, 1), (2, 5), (1, 4), (3, 3), (0, n + 7), (0, 1), (5, 2)]
}

/// A recording predictor after a full observe → refit → score →
/// score_batch workload, with its registry.
fn recorded_run() -> (OnlineLinkPredictor, Arc<Registry>) {
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    let mut p = OnlineLinkPredictor::with_recorder(quick_config(), obs);
    let pairs = feed_stream(&mut p);
    for &(u, v) in &pairs {
        let _ = p.score(u, v);
    }
    let _ = p.score_batch(&pairs);
    let _ = p.score_batch(&pairs); // warm batch: exercises the pair memo
    (p, registry)
}

/// Every span guard the workload opened has dropped by the time we
/// snapshot, so enters and exits must balance exactly.
#[test]
fn span_enters_and_exits_balance() {
    let (_p, registry) = recorded_run();
    let snap = registry.snapshot();
    let entered = snap.counter(SPANS_ENTERED);
    let exited = snap.counter(SPANS_EXITED);
    assert!(entered > 0, "workload must open spans");
    assert_eq!(entered, exited, "unbalanced spans: a guard leaked");
}

/// Every stage the workload crosses shows up as a span histogram, and
/// each histogram satisfies count == Σ bucket counts with ordered,
/// range-bracketed quantiles.
#[test]
fn stage_histograms_are_present_and_internally_consistent() {
    let (_p, registry) = recorded_run();
    let snap = registry.snapshot();
    for stage in [
        "ssf.stream.ingest",
        "ssf.stream.refit",
        "ssf.stream.score",
        "ssf.stream.score_batch",
        "ssf.model.fit",
        "ssf.model.extract",
        "ssf.ml.fit",
        "ssf.core.pair",
        "ssf.core.ball",
        "ssf.core.wl",
        "ssf.core.structure",
        "ssf.core.encode",
    ] {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("stage {stage} never recorded"));
        assert!(h.count() > 0, "{stage} is empty");
    }
    for (name, h) in &snap.histograms {
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            h.count(),
            "{name}: bucket counts disagree with count"
        );
        let (p50, p95, p99) =
            (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{name}: quantiles out of order");
        assert!(
            h.min() <= p50 && p99 <= h.max(),
            "{name}: quantiles escape [min, max]"
        );
    }
}

/// The cache gauges published after `score_batch` must agree with the
/// predictor's own [`CacheStats`], and hits + misses must account for
/// every lookup.
#[test]
fn cache_gauges_match_cache_stats_after_score_batch() {
    let (p, registry) = recorded_run();
    let snap = registry.snapshot();
    let stats = p.cache_stats();
    let gauge = |name: &str| snap.gauge(name) as u64;
    assert_eq!(gauge("ssf.stream.cache.ball_hits"), stats.ball_hits);
    assert_eq!(gauge("ssf.stream.cache.ball_misses"), stats.ball_misses);
    assert_eq!(gauge("ssf.stream.cache.pair_hits"), stats.pair_hits);
    assert_eq!(gauge("ssf.stream.cache.pair_misses"), stats.pair_misses);
    assert_eq!(gauge("ssf.stream.cache.invalidations"), stats.invalidations);
    let total = stats.total_lookups();
    assert_eq!(gauge("ssf.stream.cache.lookups"), total);
    assert_eq!(
        stats.ball_hits
            + stats.ball_misses
            + stats.pair_hits
            + stats.pair_misses,
        total,
        "hit + miss tallies must cover every lookup"
    );
    assert!(
        stats.pair_hits > 0,
        "the warm batch must have hit the pair memo"
    );
}

/// The `ssf.graph.storage_mode` gauge published at snapshot time must
/// agree with the snapshot's own reported layout (0 = wide,
/// 1 = compact).
#[test]
fn storage_mode_gauge_matches_the_snapshot() {
    use ssf_repro::dyngraph::StorageMode;
    let (p, registry) = recorded_run();
    let snapshot = p.snapshot();
    // Workload is far below the Auto compaction thresholds.
    assert_eq!(snapshot.storage_mode(), StorageMode::Wide);
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("ssf.graph.storage_mode"), 0.0);
}

/// Refit counters mirror [`StreamStats`] on both the success path and
/// the backoff/failure path.
#[test]
fn refit_counters_match_stream_stats() {
    // Success-heavy run.
    let (p, registry) = recorded_run();
    let snap = registry.snapshot();
    assert!(p.stats().successful_refits > 0);
    assert_eq!(
        snap.counter("ssf.stream.refit.success"),
        p.stats().successful_refits
    );
    assert_eq!(
        snap.counter("ssf.stream.refit.failed"),
        p.stats().failed_refits
    );

    // Failure-only run: one repeated pair never yields fresh positives,
    // so every refit attempt fails and backoff widens.
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    #[allow(clippy::expect_used)] // test setup
    let config = quick_builder()
        .refit_every(1)
        .max_backoff(8)
        .build()
        .expect("valid failure-only configuration");
    let mut p = OnlineLinkPredictor::with_recorder(config, obs);
    for t in 1..=20u32 {
        p.observe(0, 1, t);
    }
    let snap = registry.snapshot();
    assert!(p.stats().failed_refits > 0);
    assert_eq!(
        snap.counter("ssf.stream.refit.failed"),
        p.stats().failed_refits
    );
    assert_eq!(snap.counter("ssf.stream.refit.success"), 0);
    assert_eq!(
        snap.gauge("ssf.stream.backoff") as u32,
        p.health().current_backoff
    );
}

/// Quarantine counters — the total and every labeled reason — mirror
/// the per-reason tallies in [`StreamStats`].
#[test]
fn quarantine_counters_match_stream_stats_by_reason() {
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    #[allow(clippy::expect_used)] // test setup
    let config = quick_builder()
        .quarantine_duplicates(true)
        .max_lag(Some(2))
        .build()
        .expect("valid quarantine configuration");
    let mut p = OnlineLinkPredictor::with_recorder(config, obs);
    p.observe(0, 1, 1);
    p.observe(0, 1, 1); // duplicate
    p.observe(7, 7, 2); // self-loop
    p.observe(1, 2, 10);
    p.observe(2, 3, 1); // stale (lag 9 > 2)
    let snap = registry.snapshot();
    let stats = p.stats();
    let reason = |r: &str| {
        snap.counter(&labeled("ssf.stream.quarantined", &[("reason", r)]))
    };
    assert_eq!(reason("self_loop"), stats.self_loops);
    assert_eq!(reason("duplicate"), stats.duplicates);
    assert_eq!(reason("stale"), stats.stale);
    assert_eq!(snap.counter("ssf.stream.quarantined"), stats.quarantined());
    assert_eq!(snap.counter("ssf.stream.accepted"), stats.accepted);
}

/// `health()` carries the recorder's snapshot — and stays empty (not
/// stale, not partial) on the no-op handle.
#[test]
fn health_carries_metrics_snapshot() {
    let (p, registry) = recorded_run();
    assert_eq!(p.health().metrics, registry.snapshot());

    let mut unobserved = OnlineLinkPredictor::new(quick_config());
    unobserved.observe(0, 1, 1);
    assert!(unobserved.health().metrics.is_empty());
}

/// The neutrality half of the contract: an identical workload through
/// the no-op recorder and through a live registry recorder produces
/// bit-identical scores, per-pair and batched.
#[test]
fn noop_and_recording_paths_are_bit_identical() {
    let mut plain = OnlineLinkPredictor::new(quick_config());
    let registry = Arc::new(Registry::new());
    let mut recorded = OnlineLinkPredictor::with_recorder(
        quick_config(),
        ObsHandle::of_registry(Arc::clone(&registry)),
    );
    let pairs = feed_stream(&mut plain);
    let pairs_r = feed_stream(&mut recorded);
    assert_eq!(pairs, pairs_r);

    let bits = |s: Option<f64>| s.map(f64::to_bits);
    for &(u, v) in &pairs {
        assert_eq!(
            bits(plain.score(u, v)),
            bits(recorded.score(u, v)),
            "score({u}, {v}) diverged under recording"
        );
    }
    let batch_plain: Vec<_> =
        plain.score_batch(&pairs).into_iter().map(bits).collect();
    let batch_recorded: Vec<_> =
        recorded.score_batch(&pairs).into_iter().map(bits).collect();
    assert_eq!(batch_plain, batch_recorded, "batch diverged");
    assert!(
        !registry.snapshot().is_empty(),
        "the recording side must actually have recorded"
    );
}

/// A split the extraction tests share, built the way the pipeline tests
/// build theirs.
#[allow(clippy::expect_used)] // test helper
fn eval_split() -> Split {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    Split::with_min_positives(
        &g,
        &SplitConfig {
            max_positives: Some(60),
            ..SplitConfig::default()
        },
        30,
    )
    .expect("generated dataset must split")
}

/// Batch extraction is equally neutral: the observed entry point returns
/// the same rows, bit for bit, as the no-op one.
#[test]
fn observed_extraction_rows_are_bit_identical() {
    let split = eval_split();
    let opts = MethodOptions::default();
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    for threads in [1, 4] {
        let (plain, _) = Method::Ssfnm.extract_batch_stats(
            &split,
            &opts,
            &split.train,
            threads,
        );
        let (observed, _) = Method::Ssfnm.extract_batch_observed(
            &split,
            &opts,
            &split.train,
            threads,
            &obs,
        );
        let to_bits = |rows: &[Vec<f64>]| -> Vec<Vec<u64>> {
            rows.iter()
                .map(|r| r.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        assert_eq!(
            to_bits(&plain),
            to_bits(&observed),
            "threads={threads}: recording changed extraction output"
        );
    }
    let snap = registry.snapshot();
    assert!(snap.histogram("ssf.core.pair").is_some());
    assert!(snap.histogram("ssf.methods.extract").is_some());
    assert!(snap.counter("ssf.methods.samples") > 0);
}

/// Regression test for the per-chunk cache-stats bug: the parallel batch
/// path used to return only the *last* worker chunk's [`CacheStats`],
/// under-counting on any multi-threaded batch. Every valid sample does
/// exactly one pair-memo lookup, so across all chunks
/// `pair_hits + pair_misses` must equal the sample count.
#[test]
fn extract_batch_stats_cover_all_chunks() {
    let split = eval_split();
    let opts = MethodOptions::default();
    // ≥ 64 samples forces the threaded path; 4 threads → 4 worker chunks,
    // each with its own cache.
    let samples: Vec<LinkSample> =
        split.train.iter().cycle().take(80).copied().collect();
    let (rows, stats) =
        Method::Ssflr.extract_batch_stats(&split, &opts, &samples, 4);
    assert_eq!(rows.len(), samples.len());
    assert_eq!(
        stats.pair_hits + stats.pair_misses,
        samples.len() as u64,
        "stats must aggregate every worker chunk, not just the last: \
         {stats:?}"
    );
    // The single-threaded path counts the same lookups in one cache.
    let (_, seq) =
        Method::Ssflr.extract_batch_stats(&split, &opts, &samples, 1);
    assert_eq!(
        seq.pair_hits + seq.pair_misses,
        samples.len() as u64,
        "sequential path lost lookups: {seq:?}"
    );
}

const GOLDEN: &str = include_str!("fixtures/metrics_snapshot.json");

/// Builds the deterministic snapshot the golden fixture freezes: fixed
/// counter/gauge values and explicit histogram samples — no clocks, no
/// randomness, so the JSON is byte-stable across machines.
fn golden_registry() -> Registry {
    let reg = Registry::new();
    reg.counter(SPANS_ENTERED).add(3);
    reg.counter(SPANS_EXITED).add(3);
    reg.counter("ssf.stream.accepted").add(42);
    reg.counter(&labeled(
        "ssf.stream.quarantined",
        &[("reason", "self_loop")],
    ))
    .add(1);
    reg.gauge("ssf.ml.val_loss").set(0.125);
    reg.gauge("ssf.stream.backoff").set(1.0);
    reg.gauge("ssf.stream.cache.hit_rate").set(0.75);
    for ns in [800, 3_000, 250_000, 9_000_000_000] {
        reg.histogram("ssf.core.ball").record(ns);
    }
    reg.histogram("ssf.stream.score").record(2_000_000);
    reg
}

/// The `ssf.metrics.v1` JSON export, byte-for-byte. A failure here means
/// the schema moved: bump the schema version and the consumers, don't
/// just regenerate. (`UPDATE_METRICS_GOLDEN=1 cargo test` rewrites the
/// fixture when a change *is* intentional.)
#[test]
fn metrics_snapshot_json_matches_golden() {
    let json = golden_registry().snapshot().to_json();
    if std::env::var_os("UPDATE_METRICS_GOLDEN").is_some() {
        std::fs::write("tests/fixtures/metrics_snapshot.json", &json)
            .expect("rewrite golden fixture");
        return;
    }
    assert!(json.contains("\"schema\": \"ssf.metrics.v1\""));
    assert_eq!(
        json, GOLDEN,
        "ssf.metrics.v1 JSON drifted from the golden fixture"
    );
}
