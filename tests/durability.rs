//! Durability suite: crash recovery over the snapshot + WAL stack.
//!
//! The contract under test, end to end: a durable predictor killed at
//! *any* byte of its on-disk state either recovers a valid prefix of
//! its own history — bit-identical to an uninterrupted run over that
//! prefix — or fails with a typed [`SsfError::Corrupt`]. It never
//! panics and never serves silently-wrong state.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::io::{FaultConfig, FaultyReader};
use ssf_repro::prelude::*;
use ssf_repro::ssf_persist::{decode_graph, encode_graph, SnapshotWriter};

/// Refits every 5 ticks so recovery has to reproduce fitted models,
/// not just the graph.
#[allow(clippy::expect_used)] // test helper
fn durable_config() -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
        .build()
        .expect("valid configuration")
}

/// A config whose refit interval never fires — keeps the proptest
/// iterations cheap while still exercising the persistence machinery.
#[allow(clippy::expect_used)] // test helper
fn graph_only_config() -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .refit_every(u32::MAX)
        .build()
        .expect("valid configuration")
}

fn fast_policy() -> DurabilityPolicy {
    DurabilityPolicy {
        fsync: FsyncPolicy::Never,
        ..DurabilityPolicy::default()
    }
}

/// Fresh scratch directory (removed first if a previous run left one).
#[allow(clippy::expect_used)] // test helper
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("ssf-durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[allow(clippy::expect_used)] // test helper
fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("create copy target");
    for entry in fs::read_dir(src).expect("read source dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name()))
            .expect("copy durable file");
    }
}

fn clean_events() -> Vec<(NodeId, NodeId, Timestamp)> {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    links.iter().map(|l| (l.u, l.v, l.t)).collect()
}

/// Newest WAL segment in `dir` (the one a crash would tear).
#[allow(clippy::expect_used)] // test helper
fn live_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read durability dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    segments.sort();
    segments.pop().expect("a live WAL segment exists")
}

/// Every score the recovered predictor serves must be the same bits
/// the uninterrupted twin serves.
fn assert_bit_identical(
    recovered: &mut OnlineLinkPredictor,
    twin: &mut OnlineLinkPredictor,
) {
    assert_eq!(
        recovered.network().revision(),
        twin.network().revision(),
        "revision diverged"
    );
    assert_eq!(
        recovered.network().link_count(),
        twin.network().link_count()
    );
    assert_eq!(recovered.is_fitted(), twin.is_fitted());
    let n = (twin.network().node_count() as NodeId).min(20);
    for u in 0..n {
        for v in (u + 1)..n {
            let (a, b) = (recovered.score(u, v), twin.score(u, v));
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "scores diverged on ({u}, {v}): {a:?} vs {b:?}"
            );
        }
    }
}

/// The headline contract: kill the process at an arbitrary byte of the
/// live WAL segment, reopen, and the recovered predictor is
/// bit-identical to an uninterrupted run over exactly the events that
/// survived on disk. A checkpoint mid-stream must never be lost.
#[test]
#[allow(clippy::expect_used, clippy::unwrap_used)]
fn crash_mid_ingest_recovers_a_bit_identical_prefix() {
    let events = clean_events();
    let master = scratch("crash-master");
    let mid = events.len() / 3;
    let mut p = OnlineLinkPredictor::with_durability(
        durable_config(),
        &master,
        fast_policy(),
    )
    .expect("fresh durable predictor");
    for (i, &(u, v, t)) in events.iter().enumerate() {
        p.observe(u, v, t);
        if i + 1 == mid {
            p.checkpoint().expect("mid-stream checkpoint");
        }
    }
    p.sync_wal().expect("sync");
    drop(p); // the crash: no shutdown checkpoint, WAL tail only

    let live = live_segment(&master);
    let live_len = fs::metadata(&live).expect("segment metadata").len();
    // Cut points sweep the whole file: inside the segment header,
    // mid-record, on a record boundary, and no cut at all.
    for (i, fraction) in [0.0, 0.1, 0.37, 0.62, 0.83, 1.0].iter().enumerate() {
        let case = scratch(&format!("crash-case-{i}"));
        copy_dir(&master, &case);
        let cut = (live_len as f64 * fraction) as u64;
        let seg = live_segment(&case);
        fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .and_then(|f| f.set_len(cut))
            .expect("truncate the live segment");

        let (mut recovered, report) =
            OnlineLinkPredictor::open(durable_config(), &case)
                .expect("recovery must accept any torn tail");
        let h = recovered.health();
        let survived = (h.accepted + h.quarantined) as usize;
        assert!(survived >= mid, "the checkpointed prefix is never lost");
        assert!(survived <= events.len());
        if cut == live_len {
            assert!(!report.is_lossy(), "nothing was cut: {report:?}");
            assert_eq!(survived, events.len());
        }
        let mut twin = OnlineLinkPredictor::new(durable_config());
        for &(u, v, t) in &events[..survived] {
            twin.observe(u, v, t);
        }
        assert_bit_identical(&mut recovered, &mut twin);
    }
}

/// A checkpoint is servable directly from disk: `ScoringSnapshot::load`
/// answers with the same bits as the predictor that wrote it.
#[test]
#[allow(clippy::expect_used)]
fn loaded_snapshot_serves_the_writers_scores() {
    let events = clean_events();
    let dir = scratch("snapshot-serve");
    let mut p = OnlineLinkPredictor::with_durability(
        durable_config(),
        &dir,
        fast_policy(),
    )
    .expect("fresh durable predictor");
    for &(u, v, t) in &events {
        p.observe(u, v, t);
    }
    let path = p.checkpoint().expect("checkpoint");
    assert!(p.is_fitted(), "stream is rich enough to fit");

    let snap = ScoringSnapshot::load(&path).expect("load checkpoint");
    assert_eq!(snap.epoch(), p.network().revision());
    assert!(snap.is_fitted());
    let n = (p.network().node_count() as NodeId).min(20);
    for u in 0..n {
        for v in (u + 1)..n {
            assert_eq!(
                snap.score(u, v).map(f64::to_bits),
                p.score(u, v).map(f64::to_bits),
                "snapshot diverged from writer on ({u}, {v})"
            );
        }
    }
}

/// One flipped byte anywhere in a snapshot file must be caught by a
/// checksum — `ScoringSnapshot::load` fails typed, never panics, and
/// lossy recovery skips the file and reports it.
#[test]
#[allow(clippy::expect_used, clippy::unwrap_used)]
fn corrupt_snapshot_is_detected_never_served() {
    let events = clean_events();
    let dir = scratch("snapshot-corrupt");
    let mut p = OnlineLinkPredictor::with_durability(
        graph_only_config(),
        &dir,
        fast_policy(),
    )
    .expect("fresh durable predictor");
    for &(u, v, t) in &events[..200] {
        p.observe(u, v, t);
    }
    let path = p.checkpoint().expect("checkpoint");
    drop(p);
    let clean = fs::read(&path).expect("read snapshot");

    // Stride through the file so the sweep covers the header, every
    // section payload and every checksum without 200k iterations.
    for offset in (0..clean.len()).step_by(131) {
        let mut bytes = clean.clone();
        bytes[offset] ^= 0x20;
        fs::write(&path, &bytes).expect("write corrupted snapshot");
        let err = ScoringSnapshot::load(&path)
            .err()
            .unwrap_or_else(|| panic!("flip at {offset} went undetected"));
        assert!(
            matches!(err, SsfError::Corrupt { .. }),
            "flip at {offset}: expected Corrupt, got {err}"
        );

        let (recovered, report) =
            OnlineLinkPredictor::open(graph_only_config(), &dir)
                .expect("lossy recovery skips the bad snapshot");
        assert_eq!(report.corrupt_snapshots, vec![path.clone()]);
        assert!(report.is_lossy());
        // The WAL was truncated by the checkpoint, so nothing is left
        // to replay — but what is served is a valid (empty) state, not
        // a guess.
        assert_eq!(recovered.network().revision(), 0);
    }
    fs::write(&path, &clean).expect("restore snapshot");
    let (recovered, report) =
        OnlineLinkPredictor::open(graph_only_config(), &dir)
            .expect("clean recovery");
    assert!(!report.is_lossy());
    assert_eq!(recovered.network().link_count(), 200);
}

/// The CLI contract end to end: `save` produces a restorable
/// directory, a flipped byte makes `restore --strict` fail through the
/// `error:` contract (nonzero exit, no panic), and plain `restore`
/// degrades with a `warning:`.
#[test]
#[allow(clippy::expect_used, clippy::unwrap_used)]
fn cli_save_restore_obeys_the_stderr_contract() {
    use std::process::Command;
    let g = DatasetSpec::coauthor().scaled(0.1).generate(7);
    let dir = scratch("cli");
    let edges = dir.join("net.txt");
    let state = dir.join("state");
    let mut buf = Vec::new();
    ssf_repro::dyngraph::io::write_edge_list(&g, &mut buf)
        .expect("write to memory");
    fs::write(&edges, &buf).expect("write edge list");

    let run = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_ssf"))
            .args(args)
            .output()
            .expect("run ssf")
    };
    let state_s = state.to_str().expect("utf-8 temp path");
    let edges_s = edges.to_str().expect("utf-8 temp path");

    let save = run(&["save", edges_s, "--dir", state_s, "--fsync", "never"]);
    assert!(
        save.status.success(),
        "save failed: {}",
        String::from_utf8_lossy(&save.stderr)
    );
    let restore = run(&["restore", "--dir", state_s, "--strict"]);
    assert!(
        restore.status.success(),
        "clean strict restore failed: {}",
        String::from_utf8_lossy(&restore.stderr)
    );
    let stdout = String::from_utf8_lossy(&restore.stdout);
    assert!(stdout.contains("restored snapshot"), "{stdout}");

    // One flipped byte in the snapshot.
    let snapshot = fs::read_dir(&state)
        .expect("read state dir")
        .map(|e| e.expect("dir entry").path())
        .find(|p| p.extension().is_some_and(|x| x == "ssf1"))
        .expect("snapshot file exists");
    let mut bytes = fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&snapshot, &bytes).expect("write corrupted snapshot");

    let strict = run(&["restore", "--dir", state_s, "--strict"]);
    let stderr = String::from_utf8_lossy(&strict.stderr);
    assert!(!strict.status.success(), "strict restore must fail");
    assert!(stderr.contains("error: "), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");

    let lossy = run(&["restore", "--dir", state_s]);
    let stderr = String::from_utf8_lossy(&lossy.stderr);
    assert!(
        lossy.status.success(),
        "lossy restore must degrade, not die: {stderr}"
    );
    assert!(stderr.contains("warning: "), "{stderr}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Save → load of a random predictor state round-trips every
    /// observable: graph queries through the `GraphView` trait, the
    /// revision counter, and the (possibly absent) model. Shrinking
    /// covers the empty-graph, single-event and unfitted-model edges.
    #[test]
    fn snapshot_round_trip_is_bit_identical(
        events in prop::collection::vec(
            (0..24u32, 0..24u32, 1..40u32)
                .prop_filter("no self-loops", |(u, v, _)| u != v),
            0..120,
        ),
    ) {
        let mut events = events;
        events.sort_by_key(|&(_, _, t)| t);
        let dir = scratch("prop-roundtrip");
        let mut p = OnlineLinkPredictor::with_durability(
            graph_only_config(),
            &dir,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        for &(u, v, t) in &events {
            p.observe(u, v, t);
        }
        p.checkpoint().expect("checkpoint");
        let revision = p.network().revision();
        let links = p.network().link_count();
        drop(p);

        let (recovered, report) =
            OnlineLinkPredictor::open(graph_only_config(), &dir)
                .expect("recovery of a clean checkpoint");
        prop_assert!(!report.is_lossy());
        prop_assert_eq!(report.records_replayed, 0u64);
        prop_assert_eq!(recovered.network().revision(), revision);
        prop_assert_eq!(recovered.network().link_count(), links);
        prop_assert!(!recovered.is_fitted(), "graph-only config never fits");
    }

    /// The raw graph codec round-trips every CSR query of a frozen
    /// random network, including the empty one.
    #[test]
    fn frozen_graph_codec_round_trips_all_queries(
        events in prop::collection::vec(
            (0..16u32, 0..16u32, 1..30u32)
                .prop_filter("no self-loops", |(u, v, _)| u != v),
            0..80,
        ),
    ) {
        let mut events = events;
        events.sort_by_key(|&(_, _, t)| t);
        let mut g = DynamicNetwork::new();
        for &(u, v, t) in &events {
            g.add_link(u, v, t);
        }
        let frozen = FrozenGraph::from_view(&g);
        let mut w = SnapshotWriter::new();
        encode_graph(&frozen, &mut w);
        let bytes = w.to_bytes();
        let r = ssf_repro::ssf_persist::SnapshotReader::from_bytes(&bytes)
            .expect("container round trip");
        let back = decode_graph(&r).expect("graph decode");

        prop_assert_eq!(back.revision(), frozen.revision());
        prop_assert_eq!(back.node_count(), frozen.node_count());
        prop_assert_eq!(back.link_count(), frozen.link_count());
        prop_assert_eq!(back.max_timestamp(), frozen.max_timestamp());
        for u in 0..frozen.node_count() as u32 {
            prop_assert_eq!(back.degree(u), frozen.degree(u));
            prop_assert_eq!(
                back.neighbors(u), frozen.neighbors(u),
                "neighbors diverged at node {}", u
            );
        }
    }

    /// Recovery over arbitrarily mangled WAL bytes — truncated at any
    /// offset, bit-flipped, or with duplicated record bytes — either
    /// recovers a valid prefix or fails with a typed error. It never
    /// panics, and what it recovers is bit-identical to an
    /// uninterrupted run over the surviving prefix.
    #[test]
    fn mangled_wal_recovers_a_prefix_or_fails_typed(
        n_events in 10..200usize,
        mode in 0..3usize,
        fault_seed in 0..u64::MAX,
    ) {
        use std::io::Read as _;
        let events = clean_events();
        let events = &events[..n_events];
        let master = scratch("prop-wal-master");
        let mut p = OnlineLinkPredictor::with_durability(
            graph_only_config(),
            &master,
            fast_policy(),
        )
        .expect("fresh durable predictor");
        for &(u, v, t) in events {
            p.observe(u, v, t);
        }
        p.sync_wal().expect("sync");
        drop(p);

        let seg = live_segment(&master);
        let clean = fs::read(&seg).expect("read segment");
        let mangled = match mode {
            // Torn tail at an arbitrary byte.
            0 => {
                let cut = (fault_seed % (clean.len() as u64 + 1)) as usize;
                clean[..cut].to_vec()
            }
            // Sparse bit flips over the whole file.
            1 => {
                let mut out = Vec::new();
                FaultyReader::new(
                    clean.as_slice(),
                    FaultConfig {
                        bit_flip_rate: 0.002,
                        seed: fault_seed,
                        ..FaultConfig::default()
                    },
                )
                .read_to_end(&mut out)
                .expect("in-memory fault injection");
                out
            }
            // Duplicated record bytes appended at the tail.
            _ => {
                let mut out = clean.clone();
                let tail = clean.len().saturating_sub(29);
                out.extend_from_slice(&clean[tail..]);
                out
            }
        };
        fs::write(&seg, &mangled).expect("write mangled segment");

        match OnlineLinkPredictor::open(graph_only_config(), &master) {
            Ok((recovered, report)) => {
                let h = recovered.health();
                let survived = (h.accepted + h.quarantined) as usize;
                prop_assert!(survived <= events.len());
                prop_assert_eq!(
                    report.records_replayed as usize, survived
                );
                let mut twin =
                    OnlineLinkPredictor::new(graph_only_config());
                for &(u, v, t) in &events[..survived] {
                    twin.observe(u, v, t);
                }
                prop_assert_eq!(
                    recovered.network().revision(),
                    twin.network().revision()
                );
                let n = (twin.network().node_count() as NodeId).min(10);
                for u in 0..n {
                    for v in (u + 1)..n {
                        prop_assert_eq!(
                            recovered.score(u, v).map(f64::to_bits),
                            twin.score(u, v).map(f64::to_bits)
                        );
                    }
                }
            }
            Err(e) => prop_assert!(
                matches!(e, SsfError::Corrupt { .. }),
                "recovery must fail typed, got: {}", e
            ),
        }
    }
}
