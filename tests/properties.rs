//! Property-based tests over randomly generated dynamic networks: the
//! cross-crate invariants the whole reproduction rests on.

use proptest::prelude::*;
use ssf_repro::dyngraph::{DynamicNetwork, NodeId, Timestamp};
use ssf_repro::ssf_core::{
    palette::palette_wl, EntryEncoding, HopSubgraph, SsfConfig, SsfExtractor,
    StructureSubgraph,
};
use ssf_repro::ssf_eval::{Split, SplitConfig};

/// Strategy: a connected-ish random multigraph on up to `n` nodes.
fn network(
    n: NodeId,
    max_links: usize,
) -> impl Strategy<Value = DynamicNetwork> {
    prop::collection::vec(
        (0..n, 0..n, 1..20u32).prop_filter("no self-loops", |(u, v, _)| u != v),
        2..max_links,
    )
    .prop_map(move |links| {
        let mut g = DynamicNetwork::new();
        // A spanning chain guarantees the endpoints are in one component
        // often enough to exercise the deep pipeline.
        for i in 0..n - 1 {
            g.add_link(i, i + 1, 1);
        }
        for (u, v, t) in links {
            g.add_link(u, v, t);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The structure combination is a partition: every hop node appears in
    /// exactly one structure node, endpoints stay singleton.
    #[test]
    fn structure_combination_is_a_partition(
        g in network(12, 40),
        h in 1..3u32,
    ) {
        let hop = HopSubgraph::extract(&g, 0, 1, h);
        let s = StructureSubgraph::combine(&hop);
        let mut seen = vec![false; hop.node_count()];
        for x in 0..s.node_count() {
            for &i in s.members(x) {
                prop_assert!(!seen[i], "node {i} in two structure nodes");
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        prop_assert_eq!(s.members(0), &[0][..]);
        prop_assert_eq!(s.members(1), &[1][..]);
    }

    /// Merged nodes really have identical neighbor sets in the hop
    /// subgraph (Definition 4, checked against the final partition).
    #[test]
    fn merged_nodes_share_neighborhoods(
        g in network(12, 40),
    ) {
        let hop = HopSubgraph::extract(&g, 0, 1, 2);
        let s = StructureSubgraph::combine(&hop);
        // group id per hop node
        let mut group = vec![usize::MAX; hop.node_count()];
        for x in 0..s.node_count() {
            for &i in s.members(x) {
                group[i] = x;
            }
        }
        for x in 0..s.node_count() {
            let members = s.members(x);
            let sig = |i: usize| -> Vec<usize> {
                let mut v: Vec<usize> =
                    hop.neighbors(i).iter().map(|&j| group[j as usize]).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let first = sig(members[0]);
            for &i in members {
                prop_assert_eq!(
                    sig(i),
                    first.clone(),
                    "members of structure node {} disagree", x
                );
            }
        }
    }

    /// Palette-WL returns a permutation of 1..=n with endpoints at 1, 2.
    #[test]
    fn palette_is_a_pinned_permutation(
        g in network(14, 50),
    ) {
        let hop = HopSubgraph::extract(&g, 0, 1, 2);
        let s = StructureSubgraph::combine(&hop);
        let adj: Vec<Vec<usize>> =
            (0..s.node_count()).map(|x| s.neighbors(x).to_vec()).collect();
        let dist: Vec<u32> =
            (0..s.node_count()).map(|x| s.distance(x)).collect();
        let tiebreak: Vec<u64> =
            (0..s.node_count()).map(|x| s.members(x)[0] as u64).collect();
        let order = palette_wl(&adj, &dist, (0, 1), &tiebreak);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (1..=s.node_count()).collect::<Vec<_>>());
        prop_assert_eq!(order[0], 1);
        prop_assert_eq!(order[1], 2);
    }

    /// SSF extraction: fixed dimension, finite non-negative values,
    /// deterministic.
    #[test]
    fn ssf_feature_well_formed(
        g in network(14, 60),
        k in 3..8usize,
        l_t in 20..40u32,
    ) {
        for encoding in [
            EntryEncoding::NormalizedInfluence,
            EntryEncoding::LogInfluence,
            EntryEncoding::ReciprocalDistance,
            EntryEncoding::InfluenceAndStructure,
            EntryEncoding::LinkCount,
            EntryEncoding::Binary,
        ] {
            let cfg = SsfConfig::new(k).with_encoding(encoding);
            let ex = SsfExtractor::new(cfg);
            let f = ex.extract(&g, 0, 1, l_t);
            prop_assert_eq!(f.values().len(), cfg.feature_dim());
            prop_assert!(f.values().iter().all(|v| v.is_finite() && *v >= 0.0));
            let f2 = ex.extract(&g, 0, 1, l_t);
            prop_assert_eq!(f, f2);
        }
    }

    /// The feature never peeks at target-pair history: adding direct (u,v)
    /// links to the history changes nothing.
    #[test]
    fn target_history_never_leaks(
        g in network(10, 30),
        extra in prop::collection::vec(1..19u32, 1..4),
    ) {
        let ex = SsfExtractor::new(SsfConfig::new(5));
        let clean = ex.extract(&g, 0, 1, 20);
        let mut leaky = g.clone();
        for t in extra {
            leaky.add_link(0, 1, t);
        }
        let leaked = ex.extract(&leaky, 0, 1, 20);
        prop_assert_eq!(clean.values(), leaked.values());
    }

    /// Splits are balanced, disjoint, and leak-free for any network that
    /// splits at all.
    #[test]
    fn split_invariants(
        g in network(20, 120),
        seed in 0..50u64,
    ) {
        let Ok(split) = Split::new(&g, &SplitConfig { seed, ..SplitConfig::default() })
        else {
            return Ok(()); // tiny/degenerate networks may not split
        };
        let all: Vec<_> = split.train.iter().chain(&split.test).collect();
        for s in &all {
            prop_assert!(s.u < s.v);
            if s.label {
                prop_assert!(g.has_link(s.u, s.v));
                prop_assert!(!split.history.has_link(s.u, s.v));
            } else {
                prop_assert!(!g.has_link(s.u, s.v));
            }
        }
        // Balanced within each side.
        let balance = |v: &[ssf_repro::ssf_eval::LinkSample]| {
            let pos = v.iter().filter(|s| s.label).count();
            (pos, v.len() - pos)
        };
        let (tp, tn) = balance(&split.train);
        let (ep, en) = balance(&split.test);
        prop_assert_eq!(tp, tn);
        prop_assert_eq!(ep, en);
        // No duplicate pairs across train+test with conflicting labels.
        let mut seen = std::collections::HashMap::new();
        for s in &all {
            if let Some(prev) = seen.insert((s.u, s.v), s.label) {
                prop_assert_eq!(prev, s.label);
            }
        }
    }

    /// The cached batch path is invisible: for any network, any pair list
    /// (valid, degenerate or out-of-range) and any prior cache state,
    /// `extract_batch`'s cached rows equal the uncached per-sample
    /// extraction bit for bit, at every thread count.
    #[test]
    fn extract_batch_is_thread_count_invariant(
        g in network(14, 60),
        seed in 0..20u64,
    ) {
        use ssf_repro::methods::{Method, MethodOptions};
        let Ok(split) = Split::new(
            &g,
            &SplitConfig { seed, ..SplitConfig::default() },
        ) else {
            return Ok(()); // tiny/degenerate networks may not split
        };
        let opts = MethodOptions::default();
        // ≥ 64 samples so the parallel path actually spawns workers.
        let n = split.history.node_count() as NodeId;
        let samples: Vec<ssf_repro::ssf_eval::LinkSample> = (0..72u32)
            .map(|i| ssf_repro::ssf_eval::LinkSample {
                u: (i * 7 + seed as u32) % n,
                v: (i * 11 + 1) % n,
                label: i % 2 == 0,
            })
            .collect();
        let threads = std::thread::available_parallelism()
            .map_or(4, std::num::NonZeroUsize::get);
        let m = Method::Ssfnm;
        let base = m.extract_batch(&split, &opts, &samples, 1);
        for t in [2, threads] {
            let rows = m.extract_batch(&split, &opts, &samples, t);
            prop_assert_eq!(rows.len(), base.len());
            for (i, (a, b)) in rows.iter().zip(&base).enumerate() {
                let (a, b): (Vec<u64>, Vec<u64>) = (
                    a.iter().map(|x| x.to_bits()).collect(),
                    b.iter().map(|x| x.to_bits()).collect(),
                );
                prop_assert_eq!(
                    a, b,
                    "row {} diverged at {} threads", i, t
                );
            }
        }
    }

    /// Influence decay: normalized influence is monotone in every
    /// timestamp (more recent → larger) and additive in multiplicity.
    #[test]
    fn influence_monotone_and_additive(
        ts in prop::collection::vec(1..100u32, 1..10),
        l_t in 100..120u32,
    ) {
        use ssf_repro::ssf_core::{normalized_influence, ExponentialDecay};
        let d = ExponentialDecay::new(0.5);
        let base = normalized_influence(&ts, l_t, d);
        let newer: Vec<Timestamp> = ts.iter().map(|&t| t + 1).collect();
        prop_assert!(normalized_influence(&newer, l_t, d) >= base);
        let mut more = ts.clone();
        more.push(50);
        prop_assert!(normalized_influence(&more, l_t, d) > base);
    }
}

proptest! {
    // Each case may fit several MLPs, so this block runs fewer cases
    // than the structural properties above.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole determinism contract, end to end: interleaving
    /// `observe` with `score_batch` over a seeded random stream, every
    /// batch slot is bit-identical to the uncached per-pair `score` —
    /// including `None` for degenerate or out-of-range pairs, and
    /// across refits and cache invalidations.
    #[test]
    fn score_batch_matches_score_across_interleaved_streams(
        events in prop::collection::vec(
            (0..14u32, 0..14u32).prop_filter("no self-loops", |(u, v)| u != v),
            30..90,
        ),
        seed in 0..10u64,
    ) {
        use ssf_repro::methods::MethodOptions;
        use ssf_repro::{OnlineLinkPredictor, OnlinePredictorConfig};
        let config = OnlinePredictorConfig::builder()
            .method(MethodOptions {
                nm_epochs: 10,
                seed,
                ..MethodOptions::default()
            })
            .refit_every(8)
            .min_positives(6)
            .history_folds(0)
            .build()
            .expect("valid property configuration");
        let mut p = OnlineLinkPredictor::new(config);
        // Pairs probe in- and out-of-range ids plus a self pair.
        let pairs: Vec<(NodeId, NodeId)> = vec![
            (0, 1), (1, 0), (2, 7), (3, 3), (5, 40), (0, 13), (0, 1),
        ];
        for (i, &(u, v)) in events.iter().enumerate() {
            p.observe(u, v, 1 + i as Timestamp / 3);
            if i % 17 != 0 {
                continue;
            }
            // `score` first: it must not depend on cache state either.
            let individual: Vec<Option<f64>> =
                pairs.iter().map(|&(u, v)| p.score(u, v)).collect();
            let batch = p.score_batch(&pairs);
            for (j, (b, s)) in batch.iter().zip(&individual).enumerate() {
                let same = match (b, s) {
                    (Some(b), Some(s)) => b.to_bits() == s.to_bits(),
                    (None, None) => true,
                    _ => false,
                };
                prop_assert!(
                    same,
                    "pair {:?} diverged at event {}: {:?} vs {:?}",
                    pairs[j], i, b, s
                );
            }
        }
    }
}
