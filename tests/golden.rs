//! Golden-vector tests: byte-exact SSF features for the paper's worked
//! small network (fixture `tests/fixtures/figure3_k4.txt`) and for the
//! bounded-Dijkstra edge cases — disconnected endpoints, a degenerate
//! single-node ball, max-radius growth (`tests/fixtures/dijkstra_k4.txt`).
//!
//! Every expectation here was derived by hand from Definitions 3–10 —
//! the structure-node merge, the Palette-WL order, the slot-pair
//! timestamps and the final unfolded vectors — so a failure means the
//! pipeline's semantics moved, not that a tolerance was too tight.
//! Comparisons go through `f64::to_bits`: no epsilon anywhere.

use dyngraph::DynamicNetwork;
use ssf_core::{EntryEncoding, SsfConfig, SsfExtractor};

const FIXTURE: &str = include_str!("fixtures/figure3_k4.txt");
const K: usize = 4;
const L_T: u32 = 5;
const THETA: f64 = 0.5;

const DIJKSTRA_FIXTURE: &str = include_str!("fixtures/dijkstra_k4.txt");
const DIJKSTRA_L_T: u32 = 9;

/// Parses a fixture's edge list and expected-vector lines.
fn parse_fixture(text: &str) -> (DynamicNetwork, Vec<(String, Vec<f64>)>) {
    let mut g = DynamicNetwork::new();
    let mut expected = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, values)) = line.split_once(':') {
            let v: Vec<f64> = values
                .split_whitespace()
                .map(|x| {
                    x.parse().unwrap_or_else(|_| {
                        panic!("bad fixture vector entry {x:?}")
                    })
                })
                .collect();
            expected.push((name.trim().to_string(), v));
        } else {
            let mut it = line.split_whitespace().map(str::parse::<u32>);
            match (it.next(), it.next(), it.next()) {
                (Some(Ok(u)), Some(Ok(v)), Some(Ok(t))) => {
                    g.add_link(u, v, t);
                }
                _ => panic!("malformed fixture edge line {line:?}"),
            }
        }
    }
    (g, expected)
}

fn load_fixture() -> (DynamicNetwork, Vec<(String, Vec<f64>)>) {
    parse_fixture(FIXTURE)
}

fn extractor(encoding: EntryEncoding) -> SsfExtractor {
    SsfExtractor::new(
        SsfConfig::new(K).with_theta(THETA).with_encoding(encoding),
    )
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Influence of one link of age `dt`, mirroring
/// `ExponentialDecay::influence` exactly.
fn infl(dt: f64) -> f64 {
    (-THETA * dt).exp()
}

/// Log-influence entry, mirroring `EntryEncoding::LogInfluence` exactly.
fn log_infl(raw: f64) -> f64 {
    (1.0 + raw.ln() / 30.0).max(0.0)
}

/// The hand-derived normalized influences per unfold position.
/// Timestamps are stored sorted, and `normalized_influence` folds
/// left-to-right from 0.0 — the sums below replay that exact order.
fn influence_vector() -> Vec<f64> {
    let a02 = 0.0 + infl(2.0); // slot pair (0,2): link 0-7 @ t=3
    let a12 = 0.0 + infl(1.0); // slot pair (1,2): link 1-7 @ t=4
    let a03 = 0.0 + infl(4.0) + infl(4.0) + infl(3.0); // 0-{2,3,4} @ 1,1,2
    vec![a02, a12, a03, 0.0, 0.0]
}

#[test]
fn pipeline_intermediates_match_hand_derivation() {
    let (g, _) = load_fixture();
    let ex = extractor(EntryEncoding::Binary);
    let (ks, h_used, structure_nodes) = ex.k_structure(&g, 0, 1);
    assert_eq!(h_used, 1, "1 hop already yields 5 >= K structure nodes");
    assert_eq!(structure_nodes, 5, "{{0}} {{1}} {{2,3,4}} {{5,6}} {{7}}");
    assert_eq!(ks.occupied_count(), K, "{{5,6}} is order 5 and dropped");
    // Slot-pair timestamps pin both the Palette-WL order and the merge:
    // slot 2 must be {7} (links to both endpoints at t=3, 4) and slot 3
    // must be {2,3,4} (three links to endpoint 0 at t=1, 1, 2).
    assert_eq!(ks.timestamps_between(0, 2), &[3]);
    assert_eq!(ks.timestamps_between(1, 2), &[4]);
    assert_eq!(ks.timestamps_between(0, 3), &[1, 1, 2]);
    assert!(!ks.has_link(1, 3), "{{2,3,4}} never touches endpoint 1");
    assert!(!ks.has_link(2, 3), "7 never links to 2, 3 or 4");
    assert!(!ks.has_link(0, 1), "target history must stay excluded");
}

#[test]
fn exact_encodings_match_fixture_vectors() {
    let (g, expected) = load_fixture();
    assert_eq!(expected.len(), 3, "fixture lists three exact encodings");
    for (name, want) in &expected {
        let enc = EntryEncoding::parse(name).expect("fixture encoding name");
        let f = extractor(enc).extract(&g, 0, 1, L_T);
        assert_eq!(
            bits(f.values()),
            bits(want),
            "{name} diverged from the hand-computed vector"
        );
    }
}

#[test]
fn influence_encodings_match_hand_computation() {
    let (g, _) = load_fixture();
    let raw = influence_vector();
    let f =
        extractor(EntryEncoding::NormalizedInfluence).extract(&g, 0, 1, L_T);
    assert_eq!(bits(f.values()), bits(&raw));

    let logv: Vec<f64> = raw
        .iter()
        .map(|&x| if x > 0.0 { log_infl(x) } else { 0.0 })
        .collect();
    let f = extractor(EntryEncoding::LogInfluence).extract(&g, 0, 1, L_T);
    assert_eq!(bits(f.values()), bits(&logv));

    // The default concatenated encoding is log-influence ++ binary.
    let mut both = logv;
    both.extend([1.0, 1.0, 1.0, 0.0, 0.0]);
    let f =
        extractor(EntryEncoding::InfluenceAndStructure).extract(&g, 0, 1, L_T);
    assert_eq!(bits(f.values()), bits(&both));
    assert_eq!(f.values().len(), 2 * (K * (K - 1) / 2 - 1));
}

/// The Dijkstra fixture's pipeline intermediates: the isolated endpoint
/// keeps a single-node ball at every radius, growth stops the moment
/// `K` structure nodes exist, and the slot links carry the doubled
/// same-timestamp multisets the hand derivation assumes.
#[test]
fn dijkstra_fixture_intermediates_match_hand_derivation() {
    let (g, _) = parse_fixture(DIJKSTRA_FIXTURE);
    let ex = extractor(EntryEncoding::ReciprocalDistance);
    let (ks, h_used, structure_nodes) = ex.k_structure(&g, 0, 1);
    assert_eq!(h_used, 2, "h = 1 yields only 3 structure nodes");
    assert_eq!(structure_nodes, 4, "{{0}} {{1}} {{2,3}} {{4}}");
    assert_eq!(ks.occupied_count(), K);
    assert_eq!(ks.timestamps_between(0, 2), &[9, 9]);
    assert_eq!(ks.timestamps_between(2, 3), &[9, 9]);
    for n in 1..K {
        assert!(!ks.has_link(1, n), "isolated endpoint 1 has no links");
    }
    assert!(!ks.has_link(0, 3), "{{0}} never touches {{4}} directly");
}

/// Byte-exact vectors for the Dijkstra fixture: the unreachable slot-1
/// distances, the exactly-dyadic weights and the 1/1.5 entry all come
/// out bit-identical to the hand derivation, through both the plain and
/// the cached path.
#[test]
fn dijkstra_fixture_matches_hand_vectors() {
    let (g, expected) = parse_fixture(DIJKSTRA_FIXTURE);
    assert_eq!(expected.len(), 4, "fixture lists four exact encodings");
    let mut cache = ssf_core::ExtractionCache::new();
    for (name, want) in &expected {
        let enc = EntryEncoding::parse(name).expect("fixture encoding name");
        let f = extractor(enc).extract(&g, 0, 1, DIJKSTRA_L_T);
        assert_eq!(
            bits(f.values()),
            bits(want),
            "{name} diverged from the hand-computed vector"
        );
        let cached = extractor(enc)
            .try_extract_cached(&g, 0, 1, DIJKSTRA_L_T, &mut cache)
            .expect("valid target");
        assert_eq!(bits(cached.values()), bits(want), "{name} cached");
    }
}

/// The transcendental encodings of the Dijkstra fixture, derived from
/// the exact raw influences (both slot links sum to exactly 2.0).
#[test]
fn dijkstra_fixture_influence_encodings_match() {
    let (g, _) = parse_fixture(DIJKSTRA_FIXTURE);
    let logv: Vec<f64> = [2.0, 0.0, 0.0, 0.0, 2.0]
        .iter()
        .map(|&x| if x > 0.0 { log_infl(x) } else { 0.0 })
        .collect();
    let f =
        extractor(EntryEncoding::LogInfluence).extract(&g, 0, 1, DIJKSTRA_L_T);
    assert_eq!(bits(f.values()), bits(&logv));
    let mut both = logv;
    both.extend([1.0, 0.0, 0.0, 0.0, 1.0]);
    let f = extractor(EntryEncoding::InfluenceAndStructure).extract(
        &g,
        0,
        1,
        DIJKSTRA_L_T,
    );
    assert_eq!(bits(f.values()), bits(&both));
}

/// Max-radius growth: with `K = 10` the chain component can never
/// produce enough structure nodes, so `h` stops exactly at the
/// configured cap and the remaining slots stay zero-padded.
#[test]
fn dijkstra_fixture_max_radius_pair_caps_growth() {
    let (g, _) = parse_fixture(DIJKSTRA_FIXTURE);
    let config = SsfConfig::new(10)
        .with_theta(THETA)
        .with_encoding(EntryEncoding::ReciprocalDistance)
        .with_max_h(2);
    let ex = SsfExtractor::new(config);
    // Target (7, 1): both ends far from the 0-side fan; radius 2 reaches
    // only {7,6,5} ∪ {1} = 4 structure nodes, far short of K = 10.
    let (ks, h_used, structure_nodes) = ex.k_structure(&g, 7, 1);
    assert_eq!(h_used, 2, "growth must stop at max_h");
    assert_eq!(structure_nodes, 4);
    assert_eq!(ks.occupied_count(), 4, "6 of 10 slots stay padded");
    let f = ex.extract(&g, 7, 1, DIJKSTRA_L_T);
    // Chain 7-6-5 with unit influences: slot pairs (0,2)=[9] and
    // (2,3)=[9], weights exactly 1.0, so the entries are 1/(1+0) and
    // 1/(1+1); everything else (44 − 2 entries) is padding.
    let nonzero: Vec<(usize, f64)> = f
        .values()
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, v)| v != 0.0)
        .collect();
    assert_eq!(
        nonzero
            .iter()
            .map(|&(_, v)| v.to_bits())
            .collect::<Vec<_>>(),
        vec![1.0f64.to_bits(), 0.5f64.to_bits()]
    );
}

/// The golden vectors hold under the cache too — same bits through
/// `try_extract_cached`, cold and warm.
#[test]
fn cached_extraction_reproduces_golden_vectors() {
    let (g, _) = load_fixture();
    let ex = extractor(EntryEncoding::InfluenceAndStructure);
    let plain = ex.extract(&g, 0, 1, L_T);
    let mut cache = ssf_core::ExtractionCache::new();
    for _ in 0..2 {
        let cached = ex
            .try_extract_cached(&g, 0, 1, L_T, &mut cache)
            .expect("valid target");
        assert_eq!(bits(cached.values()), bits(plain.values()));
    }
    assert!(cache.stats().pair_hits >= 1);
}
