//! Qualitative claims from the paper, checked as executable assertions.

use ssf_repro::baselines::{local, WlfConfig, WlfExtractor};
use ssf_repro::dyngraph::DynamicNetwork;
use ssf_repro::ssf_core::{
    EntryEncoding, HopSubgraph, SsfConfig, SsfExtractor, StructureSubgraph,
};

/// Figure 1's celebrity network: A, B, C celebrities; X, Y fans of C.
fn celebrity_network() -> (DynamicNetwork, (u32, u32), (u32, u32)) {
    let (a, b, c, x, y) = (0u32, 1, 2, 3, 4);
    let mut g = DynamicNetwork::new();
    for t in [6, 7, 8, 9] {
        g.add_link(a, c, t);
        g.add_link(b, c, t);
    }
    for t in [1, 2, 3, 4] {
        g.add_link(x, c, t);
        g.add_link(y, c, t);
    }
    let mut fan = 5u32;
    for celeb in [a, b, c] {
        for _ in 0..8 {
            g.add_link(celeb, fan, 1 + fan % 9);
            fan += 1;
        }
    }
    (g, (a, b), (x, y))
}

/// Table I / Figure 1(b): CN, AA, RA and rWRA assign identical scores to
/// the celebrity pair and the fan pair.
#[test]
fn local_indices_cannot_separate_celebrities_from_fans() {
    let (g, (a, b), (x, y)) = celebrity_network();
    let stat = g.to_static();
    assert_eq!(
        local::common_neighbors(&stat, a, b),
        local::common_neighbors(&stat, x, y)
    );
    assert_eq!(
        local::adamic_adar(&stat, a, b),
        local::adamic_adar(&stat, x, y)
    );
    assert_eq!(
        local::resource_allocation(&stat, a, b),
        local::resource_allocation(&stat, x, y)
    );
    assert_eq!(local::rwra(&stat, a, b), local::rwra(&stat, x, y));
}

/// Figure 1(d): the SSF vectors of the two pairs differ — for every entry
/// encoding.
#[test]
fn ssf_separates_celebrities_from_fans() {
    let (g, (a, b), (x, y)) = celebrity_network();
    for encoding in [
        EntryEncoding::NormalizedInfluence,
        EntryEncoding::LogInfluence,
        EntryEncoding::ReciprocalDistance,
        EntryEncoding::InfluenceAndStructure,
        EntryEncoding::LinkCount,
        EntryEncoding::Binary,
    ] {
        let ex = SsfExtractor::new(SsfConfig::new(6).with_encoding(encoding));
        let fab = ex.extract(&g, a, b, 10);
        let fxy = ex.extract(&g, x, y, 10);
        assert_ne!(
            fab.values(),
            fxy.values(),
            "{encoding:?} must separate the pairs"
        );
    }
}

/// §IV-A: the structure subgraph is an equivalent but *smaller*
/// representation — fan crowds collapse into single structure nodes.
#[test]
fn structure_subgraph_compresses_fan_crowds() {
    let (g, (a, b), _) = celebrity_network();
    let hop = HopSubgraph::extract(&g, a, b, 1);
    let s = StructureSubgraph::combine(&hop);
    assert!(
        s.node_count() < hop.node_count() / 2,
        "structure subgraph ({}) should be much smaller than the hop \
         subgraph ({})",
        s.node_count(),
        hop.node_count()
    );
    // All hop nodes are accounted for exactly once.
    let total: usize = (0..s.node_count()).map(|x| s.members(x).len()).sum();
    assert_eq!(total, hop.node_count());
}

/// §I / Table I: WLF with a small K cannot see what SSF sees — adding more
/// same-structure fans changes nothing for WLF at K=3 but SSF's structure
/// node aggregation keeps the information in the influence magnitudes.
#[test]
fn wlf_window_saturates_but_ssf_aggregates() {
    let few: DynamicNetwork =
        [(0, 2, 9), (1, 2, 9), (0, 3, 9)].into_iter().collect();
    let many: DynamicNetwork = [
        (0, 2, 9),
        (1, 2, 9),
        (0, 3, 9),
        (0, 4, 9),
        (0, 5, 9),
        (0, 6, 9),
    ]
    .into_iter()
    .collect();
    let wlf = WlfExtractor::new(WlfConfig::new(4));
    assert_eq!(
        wlf.extract(&few.to_static(), 0, 1),
        wlf.extract(&many.to_static(), 0, 1),
        "WLF at K=4 sees one arbitrary fan either way"
    );
    let ssf = SsfExtractor::new(
        SsfConfig::new(4).with_encoding(EntryEncoding::LinkCount),
    );
    assert_ne!(
        ssf.extract(&few, 0, 1, 10).values(),
        ssf.extract(&many, 0, 1, 10).values(),
        "SSF's merged fan cluster carries the aggregate count"
    );
}

/// §V-A: recent links influence the feature more than old links.
#[test]
fn normalized_influence_prefers_recent_links() {
    let recent: DynamicNetwork = [(0, 2, 9), (1, 2, 9)].into_iter().collect();
    let old: DynamicNetwork = [(0, 2, 1), (1, 2, 1)].into_iter().collect();
    let ex = SsfExtractor::new(
        SsfConfig::new(3).with_encoding(EntryEncoding::NormalizedInfluence),
    );
    let sum = |g: &DynamicNetwork| -> f64 {
        ex.extract(g, 0, 1, 10).values().iter().sum()
    };
    assert!(sum(&recent) > sum(&old));
}

/// SSF-W ignores timestamps entirely: shifting every timestamp leaves the
/// feature unchanged, while the temporal SSF changes.
#[test]
fn ssf_w_is_timestamp_blind() {
    let now: DynamicNetwork =
        [(0, 2, 9), (1, 2, 8), (2, 3, 9)].into_iter().collect();
    let shifted: DynamicNetwork =
        [(0, 2, 2), (1, 2, 1), (2, 3, 2)].into_iter().collect();
    let w = SsfExtractor::new(
        SsfConfig::new(4).with_encoding(EntryEncoding::LinkCount),
    );
    assert_eq!(
        w.extract(&now, 0, 1, 10).values(),
        w.extract(&shifted, 0, 1, 10).values()
    );
    let temporal = SsfExtractor::new(
        SsfConfig::new(4).with_encoding(EntryEncoding::NormalizedInfluence),
    );
    assert_ne!(
        temporal.extract(&now, 0, 1, 10).values(),
        temporal.extract(&shifted, 0, 1, 10).values()
    );
}
