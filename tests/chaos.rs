//! Chaos suite: corrupted traces through the full serving path.
//!
//! The fault model matches what production link streams actually do:
//! self-loops, exact replays, hours-late timestamps, mangled lines.
//! Every test asserts the same contract — no panic, quarantine counts
//! visible, and degradation bounded: the surviving (healthy) events must
//! produce *exactly* the model the clean trace produces, so accuracy on
//! survivors is identical by construction, not merely "within noise".

use std::collections::BTreeSet;
use std::process::Command;

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::io::{
    read_edge_list_lossy, write_edge_list, FaultConfig, FaultyReader,
};
use ssf_repro::dyngraph::{DynamicNetwork, NodeId, Timestamp};
use ssf_repro::prelude::*;

#[allow(clippy::expect_used)] // test helper
fn chaos_config() -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
        .quarantine_duplicates(true)
        .max_lag(Some(5))
        .build()
        .expect("valid chaos configuration")
}

/// The clean trace: deduplicated, time-ordered events of a synthetic
/// coauthor network.
fn clean_events() -> Vec<(NodeId, NodeId, Timestamp)> {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let ordered: BTreeSet<(Timestamp, NodeId, NodeId)> =
        g.links().map(|l| (l.t, l.u, l.v)).collect();
    ordered.into_iter().map(|(t, u, v)| (u, v, t)).collect()
}

#[test]
fn predictor_survives_hostile_stream_with_bounded_degradation() {
    let events = clean_events();

    let mut clean = OnlineLinkPredictor::new(chaos_config());
    for &(u, v, t) in &events {
        assert!(clean.observe(u, v, t).is_accepted());
    }

    // Hostile replay: after every 6th healthy event (>16% junk ratio),
    // inject a self-loop, an exact duplicate, or a stale event. All junk
    // reuses existing node ids and timestamps, so the surviving stream is
    // the clean stream exactly.
    let mut hostile = OnlineLinkPredictor::new(chaos_config());
    let mut injected = 0u64;
    for (i, &(u, v, t)) in events.iter().enumerate() {
        assert!(hostile.observe(u, v, t).is_accepted());
        if i % 6 == 5 {
            let head = hostile.network().max_timestamp().unwrap_or(0);
            let outcome = match injected % 3 {
                0 => hostile.observe(u, u, t), // self-loop
                1 => hostile.observe(u, v, t), // exact replay
                _ if head > 5 => {
                    let (u0, v0, _) = events[0];
                    hostile.observe(u0, v0, 0) // hopelessly late
                }
                _ => hostile.observe(v, v, t), // self-loop until time moves
            };
            assert!(!outcome.is_accepted(), "junk event {i} was accepted");
            injected += 1;
        }
    }
    assert_eq!(injected, (events.len() / 6) as u64);
    assert!(injected > 0);

    // No panic happened (we are here), the junk was quarantined and
    // counted, and the healthy events all made it in.
    let health = hostile.health();
    assert_eq!(health.quarantined, injected);
    assert_eq!(health.accepted, events.len() as u64);
    assert_eq!(clean.health().quarantined, 0);

    // Bounded degradation: the surviving stream equals the clean stream,
    // so the networks and the fitted models must agree exactly.
    assert_eq!(clean.network().link_count(), hostile.network().link_count());
    assert_eq!(clean.network().node_count(), hostile.network().node_count());
    assert!(clean.is_fitted());
    assert!(hostile.is_fitted());
    for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 7), (5, 11)] {
        assert_eq!(
            clean.score(a, b),
            hostile.score(a, b),
            "scores diverged on ({a}, {b})"
        );
    }
}

/// Writes `contents` to a fresh temp file and returns its path.
#[allow(clippy::expect_used)] // test helper
fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
    let path = std::env::temp_dir()
        .join(format!("ssf-chaos-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp file");
    path
}

#[allow(clippy::expect_used)] // test helper
fn clean_edge_list() -> (DynamicNetwork, Vec<u8>) {
    let g = DatasetSpec::coauthor().scaled(0.1).generate(7);
    let mut buf = Vec::new();
    write_edge_list(&g, &mut buf).expect("write to memory");
    (g, buf)
}

#[test]
fn cli_evaluate_survives_corrupted_trace_with_identical_results() {
    let (g, clean_bytes) = clean_edge_list();
    let clean_lines = g.link_count();

    // ≥10% junk: self-loops on real ids, garbage, and bad timestamps.
    let mut corrupted = clean_bytes.clone();
    let n_junk = clean_lines / 6;
    for i in 0..n_junk {
        let line = match i % 3 {
            0 => format!("{0} {0} 3\n", i % 40),
            1 => "@@ chaos #! ??\n".to_string(),
            _ => format!("{} {} not-a-time\n", i, i + 1),
        };
        corrupted.extend_from_slice(line.as_bytes());
    }
    let clean_path = temp_file("clean.txt", &clean_bytes);
    let dirty_path = temp_file("dirty.txt", &corrupted);

    let run = |path: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_ssf"))
            .args(["evaluate"])
            .arg(path)
            .args(["--methods", "cn,aa", "--seed", "7"])
            .output()
            .expect("run ssf evaluate")
    };
    let clean_out = run(&clean_path);
    let dirty_out = run(&dirty_path);
    let _ = std::fs::remove_file(&clean_path);
    let _ = std::fs::remove_file(&dirty_path);

    let dirty_stderr = String::from_utf8_lossy(&dirty_out.stderr).into_owned();
    assert!(clean_out.status.success(), "clean run failed");
    assert!(
        dirty_out.status.success(),
        "corrupted run must degrade, not die: {dirty_stderr}"
    );
    // The quarantine is visible and counted on stderr; no backtraces.
    assert!(
        dirty_stderr.contains(&format!("quarantined {n_junk} of")),
        "stderr missing quarantine summary: {dirty_stderr}"
    );
    assert!(!dirty_stderr.contains("panicked"), "{dirty_stderr}");
    assert!(!dirty_stderr.contains("RUST_BACKTRACE"), "{dirty_stderr}");
    assert!(String::from_utf8_lossy(&clean_out.stderr).is_empty());
    // Junk only reuses known ids, so the surviving network is the clean
    // network and the metrics agree exactly — degradation is bounded.
    assert_eq!(
        String::from_utf8_lossy(&clean_out.stdout),
        String::from_utf8_lossy(&dirty_out.stdout)
    );
}

#[test]
fn cli_survives_fault_injected_reader_mangling() {
    let (_, clean_bytes) = clean_edge_list();
    let mangled = {
        use std::io::Read as _;
        let mut out = Vec::new();
        FaultyReader::new(
            clean_bytes.as_slice(),
            FaultConfig {
                corrupt_rate: 0.15,
                truncate_rate: 0.05,
                garbage_rate: 0.1,
                seed: 42,
                ..FaultConfig::default()
            },
        )
        .read_to_end(&mut out)
        .expect("fault injection over memory");
        out
    };
    // Sanity: the mangled bytes still parse leniently with losses.
    let report = read_edge_list_lossy(mangled.as_slice());
    assert!(!report.rejected.is_empty(), "faults should reject lines");
    assert!(report.accepted > 0, "most lines should survive");

    let path = temp_file("mangled.txt", &mangled);
    let out = Command::new(env!("CARGO_BIN_EXE_ssf"))
        .arg("stats")
        .arg(&path)
        .output()
        .expect("run ssf stats");
    let _ = std::fs::remove_file(&path);
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "stats must serve survivors: {stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn cli_fatal_errors_use_the_error_contract() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssf"))
        .args(["stats", "/nonexistent/ssf-chaos-input.txt"])
        .output()
        .expect("run ssf stats");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(!stderr.contains("RUST_BACKTRACE"), "{stderr}");
}
