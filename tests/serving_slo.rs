//! Serving-SLO suite: the request-coalescing front-end under a mock
//! clock.
//!
//! Coalescing reorders *work* — requests queue, batch, and flush on
//! three policies — so the headline obligation is that it never
//! reorders *values*: every score delivered through the [`Coalescer`]
//! must be bit-identical to [`ScoringSnapshot::score_batch`] on the
//! same pairs, at every batch boundary and worker-thread count. The
//! batching policies themselves (`max_batch`, `max_delay`,
//! snapshot-epoch change) are pinned with an injected [`MockClock`]:
//! no wall-clock sleeps, every close decision is exact.
//!
//! The admission contract rides along: a full queue rejects with
//! [`Rejection::Overloaded`] without blocking the submitter, a spent
//! deadline rejects *before* any extraction work, and the counters
//! reconcile exactly (`accepted + rejected == submitted`) under
//! multi-threaded stress — mirroring the `tests/observability.rs`
//! invariant style.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, OnceLock};

use proptest::prelude::*;
use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::{GraphView, NodeId};
use ssf_repro::methods::MethodOptions;
use ssf_repro::obs::{ObsHandle, Registry};
use ssf_repro::{
    BatchScorer, CoalesceConfig, Coalescer, MockClock, OnlineLinkPredictor,
    OnlinePredictorConfig, Rejection, ScoringSnapshot, ShardedPredictor,
    SsfError,
};

#[allow(clippy::expect_used)] // test helper
fn quick_config() -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(5)
        .min_positives(10)
        .history_folds(1)
        .build()
        .expect("valid quick configuration")
}

fn fitted_predictor() -> OnlineLinkPredictor {
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    let mut p = OnlineLinkPredictor::new(quick_config());
    for l in links {
        p.observe(l.u, l.v, l.t);
    }
    assert!(p.is_fitted(), "stream must support a fit");
    p
}

/// One fitted snapshot shared by the whole suite (fitting is the
/// expensive part; snapshots are immutable values, so sharing cannot
/// couple tests).
fn shared_snapshot() -> &'static ScoringSnapshot {
    static SNAP: OnceLock<ScoringSnapshot> = OnceLock::new();
    SNAP.get_or_init(|| fitted_predictor().snapshot())
}

fn bits(scores: &[Option<f64>]) -> Vec<Option<u64>> {
    scores.iter().map(|s| s.map(f64::to_bits)).collect()
}

/// A coalescer over the shared snapshot with an injected mock clock.
fn mock_coalescer(
    config: CoalesceConfig,
) -> (Coalescer<ScoringSnapshot>, Arc<MockClock>) {
    let clock = Arc::new(MockClock::new());
    let c = Coalescer::with_clock(
        shared_snapshot().clone(),
        config,
        Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
    );
    (c, clock)
}

// ---------------------------------------------------------------------
// Batch-close policies under the mock clock
// ---------------------------------------------------------------------

#[test]
fn batch_closes_on_max_batch() {
    let config = CoalesceConfig::builder()
        .max_batch(3)
        .max_delay_ns(u64::MAX >> 1)
        .build()
        .expect("valid");
    let (c, _clock) = mock_coalescer(config);
    let pairs = [(0u32, 1u32), (2, 5), (1, 4)];
    let t0 = c.submit(pairs[0].0, pairs[0].1).expect("admitted");
    let t1 = c.submit(pairs[1].0, pairs[1].1).expect("admitted");
    assert_eq!(c.step().scored, 0, "2 of 3: no close policy fires");
    let t2 = c.submit(pairs[2].0, pairs[2].1).expect("admitted");
    let report = c.step();
    assert_eq!(report.scored, 3, "full batch closes immediately");
    assert_eq!(report.remaining, 0);
    let direct = shared_snapshot().score_batch(&pairs);
    let got = [t0, t1, t2].map(|t| t.wait().expect("scored"));
    assert_eq!(bits(&got), bits(&direct));
}

#[test]
fn batch_closes_on_max_delay_exactly() {
    let config = CoalesceConfig::builder()
        .max_batch(100)
        .max_delay_ns(1_000)
        .build()
        .expect("valid");
    let (c, clock) = mock_coalescer(config);
    let t = c.submit(0, 1).expect("admitted");
    clock.advance(999);
    assert_eq!(c.step().scored, 0, "one tick early: batch stays open");
    clock.advance(1);
    let report = c.step();
    assert_eq!(report.scored, 1, "age == max_delay closes the batch");
    assert_eq!(
        bits(&[t.wait().expect("scored")]),
        bits(&shared_snapshot().score_batch(&[(0, 1)]))
    );
}

#[test]
fn batch_closes_on_snapshot_epoch_change() {
    let mut p = fitted_predictor();
    let snap1 = p.snapshot();
    let t = p.network().max_timestamp().unwrap_or(0) + 1;
    assert!(p.observe(0, 7, t).is_accepted());
    assert!(p.observe(3, 11, t + 1).is_accepted());
    let snap2 = p.snapshot();
    assert_ne!(snap1.epoch_key(), snap2.epoch_key());

    let config = CoalesceConfig::builder()
        .max_batch(100)
        .max_delay_ns(u64::MAX >> 1)
        .build()
        .expect("valid");
    let clock = Arc::new(MockClock::new());
    let c = Coalescer::with_clock(
        snap1.clone(),
        config,
        Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
    );
    let pairs = [(0u32, 5u32), (2, 9)];
    let t0 = c.submit(pairs[0].0, pairs[0].1).expect("admitted");
    let t1 = c.submit(pairs[1].0, pairs[1].1).expect("admitted");
    assert_eq!(c.step().scored, 0, "no policy fires yet");

    c.set_snapshot(snap2.clone());
    let report = c.step();
    assert_eq!(report.scored, 2, "staging a new epoch flushes the queue");
    assert!(
        report.snapshot_installed,
        "swap lands once the queue drains"
    );
    // The flushed batch scored against the epoch it was admitted under.
    let old = [t0, t1].map(|t| t.wait().expect("scored"));
    assert_eq!(bits(&old), bits(&snap1.score_batch(&pairs)));
    assert_eq!(c.current_epoch_key(), snap2.epoch_key());

    // Requests after the swap score against the new epoch.
    let t2 = c.submit(0, 7).expect("admitted");
    assert_eq!(c.flush().scored, 1);
    assert_eq!(
        bits(&[t2.wait().expect("scored")]),
        bits(&snap2.score_batch(&[(0, 7)]))
    );
}

#[test]
fn step_on_empty_queue_is_a_noop() {
    let (c, _clock) = mock_coalescer(CoalesceConfig::default());
    for report in [c.step(), c.flush()] {
        assert_eq!(report.scored, 0);
        assert_eq!(report.expired, 0);
        assert_eq!(report.remaining, 0);
    }
    let stats = c.stats();
    assert_eq!(stats.batches, 0, "empty batches are never dispatched");
    assert_eq!(stats.submitted, 0);
}

#[test]
fn duplicate_pairs_in_one_batch_score_identically() {
    let config = CoalesceConfig::builder()
        .max_batch(4)
        .build()
        .expect("valid");
    let (c, _clock) = mock_coalescer(config);
    let pairs = [(2u32, 5u32), (2, 5), (5, 2), (2, 5)];
    let tickets: Vec<_> = pairs
        .iter()
        .map(|&(u, v)| c.submit(u, v).expect("admitted"))
        .collect();
    assert_eq!(c.step().scored, 4);
    let got: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("scored"))
        .collect();
    let direct = shared_snapshot().score_batch(&pairs);
    assert_eq!(bits(&got), bits(&direct));
    assert_eq!(
        got[0].map(f64::to_bits),
        got[1].map(f64::to_bits),
        "the same pair in one batch must score once and agree"
    );
}

// ---------------------------------------------------------------------
// Backpressure and deadlines
// ---------------------------------------------------------------------

#[test]
fn full_queue_rejects_overloaded_with_depth_and_capacity() {
    let config = CoalesceConfig::builder()
        .queue_capacity(2)
        .max_batch(100)
        .max_delay_ns(u64::MAX >> 1)
        .build()
        .expect("valid");
    let (c, _clock) = mock_coalescer(config);
    let _t0 = c.submit(0, 1).expect("admitted");
    let _t1 = c.submit(1, 2).expect("admitted");
    match c.submit(2, 3) {
        Err(Rejection::Overloaded { depth, capacity }) => {
            assert_eq!(depth, 2);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = c.stats();
    assert_eq!(stats.rejected_overload, 1);
    assert_eq!(stats.accepted + stats.rejected(), stats.submitted);
}

/// A [`BatchScorer`] that blocks inside scoring until released, and
/// counts every pair that reaches it — the probe for both "admission
/// never blocks behind a dispatch" and "expired requests never reach
/// extraction".
struct GatedScorer {
    inner: ScoringSnapshot,
    pairs_scored: Arc<AtomicU64>,
    entered: std::sync::Mutex<mpsc::Sender<()>>,
    release: std::sync::Mutex<mpsc::Receiver<()>>,
}

impl BatchScorer for GatedScorer {
    fn epoch_key(&self) -> u64 {
        self.inner.epoch_key()
    }

    fn score_batch_threads(
        &self,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Vec<Option<f64>> {
        use std::sync::PoisonError;
        self.pairs_scored
            .fetch_add(pairs.len() as u64, Ordering::SeqCst);
        let _ = self
            .entered
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .send(());
        let _ = self
            .release
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        self.inner.score_batch_threads(pairs, threads)
    }
}

#[test]
fn admission_does_not_block_behind_an_in_flight_dispatch() {
    let (entered_tx, entered_rx) = mpsc::channel();
    let (release_tx, release_rx) = mpsc::channel();
    let scorer = GatedScorer {
        inner: shared_snapshot().clone(),
        pairs_scored: Arc::new(AtomicU64::new(0)),
        entered: std::sync::Mutex::new(entered_tx),
        release: std::sync::Mutex::new(release_rx),
    };
    let config = CoalesceConfig::builder()
        .queue_capacity(1)
        .max_batch(1)
        .build()
        .expect("valid");
    let c = Coalescer::new(scorer, config);
    let t0 = c.submit(0, 1).expect("admitted");
    let stepper = {
        let c = c.clone();
        std::thread::spawn(move || c.step())
    };
    // The dispatch is now parked inside scoring, holding the step lock.
    entered_rx.recv().expect("dispatch entered the scorer");
    // Admission still runs: one slot free (the batch left the queue)...
    let t1 = c.submit(1, 2).expect("admission must not block");
    // ...and the slot after it sheds with Overloaded, immediately.
    match c.submit(2, 3) {
        Err(Rejection::Overloaded { .. }) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    release_tx.send(()).expect("release dispatch");
    let report = stepper.join().expect("stepper thread");
    assert_eq!(report.scored, 1);
    assert!(t0.wait().is_ok());
    // Drain the second request (its dispatch parks too).
    let drainer = {
        let c = c.clone();
        std::thread::spawn(move || c.flush())
    };
    entered_rx.recv().expect("second dispatch");
    release_tx.send(()).expect("release second dispatch");
    drainer.join().expect("drainer thread");
    assert!(t1.wait().is_ok());
}

#[test]
fn expired_deadline_is_rejected_before_extraction() {
    let registry = Arc::new(Registry::new());
    let (_entered_tx, entered_rx) = mpsc::channel::<()>();
    drop(entered_rx); // unused gate: sends/recvs become no-ops
    let (release_tx, release_rx) = mpsc::channel();
    release_tx.send(()).expect("pre-release"); // never park
    let pairs_scored = Arc::new(AtomicU64::new(0));
    let scorer = GatedScorer {
        inner: shared_snapshot().clone(),
        pairs_scored: Arc::clone(&pairs_scored),
        entered: std::sync::Mutex::new(_entered_tx),
        release: std::sync::Mutex::new(release_rx),
    };
    let clock = Arc::new(MockClock::new());
    let config = CoalesceConfig::builder()
        .max_batch(100)
        .max_delay_ns(10_000)
        .build()
        .expect("valid");
    let c = Coalescer::with_clock_and_recorder(
        scorer,
        config,
        Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
        ObsHandle::of_registry(Arc::clone(&registry)),
    );
    let doomed = c.submit_with_budget(0, 1, 100).expect("admitted live");
    clock.advance(200);
    let report = c.step();
    assert_eq!(report.expired, 1);
    assert_eq!(report.scored, 0);
    assert_eq!(doomed.wait(), Err(Rejection::DeadlineExceeded));
    assert_eq!(
        pairs_scored.load(Ordering::SeqCst),
        0,
        "an expired request must be rejected before extraction starts"
    );

    let stats = c.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.deadline_misses(), 1);
    assert_eq!(
        registry.snapshot().counter("ssf.serve.deadline_miss"),
        1,
        "in-queue expiry must increment ssf.serve.deadline_miss"
    );

    // The batch that eventually dispatches carries only live requests;
    // the expired pair never reached the scorer.
    let live = c.submit(2, 5).expect("admitted");
    release_tx.send(()).expect("pre-release second dispatch");
    clock.advance(10_000);
    assert_eq!(c.step().scored, 1);
    assert!(live.wait().is_ok());
    let c_stats = c.stats();
    assert_eq!(c_stats.completed, 1);
    assert_eq!(
        pairs_scored.load(Ordering::SeqCst),
        1,
        "only the live pair may reach the scorer"
    );
}

#[test]
fn spent_deadline_is_rejected_at_admission() {
    let registry = Arc::new(Registry::new());
    let clock = Arc::new(MockClock::new());
    let c = Coalescer::with_clock_and_recorder(
        shared_snapshot().clone(),
        CoalesceConfig::default(),
        Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
        ObsHandle::of_registry(Arc::clone(&registry)),
    );
    clock.advance(1_000);
    // An absolute deadline at or before "now" never takes a queue slot.
    match c.submit_with_deadline(0, 1, 500) {
        Err(Rejection::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // A zero budget is spent on arrival by definition.
    match c.submit_with_budget(0, 1, 0) {
        Err(Rejection::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = c.stats();
    assert_eq!(stats.rejected_deadline, 2);
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.accepted + stats.rejected(), stats.submitted);
    assert_eq!(registry.snapshot().counter("ssf.serve.deadline_miss"), 2);
}

#[test]
fn counters_reconcile_under_multithreaded_stress() {
    const SUBMITTERS: usize = 4;
    const PER_THREAD: usize = 120;
    let registry = Arc::new(Registry::new());
    let config = CoalesceConfig::builder()
        .queue_capacity(8) // small: forces Overloaded under the burst
        .max_batch(4)
        .max_delay_ns(50_000)
        .build()
        .expect("valid");
    let c = Coalescer::with_clock_and_recorder(
        shared_snapshot().clone(),
        config,
        Arc::new(ssf_repro::SystemClock::new()),
        ObsHandle::of_registry(Arc::clone(&registry)),
    );
    let worker = {
        let c = c.clone();
        std::thread::spawn(move || c.run_worker())
    };
    let n = shared_snapshot().graph().node_count() as u32;
    let handles: Vec<_> = (0..SUBMITTERS)
        .map(|who| {
            let c = c.clone();
            std::thread::spawn(move || {
                let mut tickets = Vec::new();
                for i in 0..PER_THREAD {
                    let u = (who as u32 * 31 + i as u32 * 7) % n;
                    let v = (i as u32 * 13 + 1) % n;
                    // Every 5th request carries a 1µs budget that may
                    // expire in queue; the rest never expire.
                    let r = if i % 5 == 0 {
                        c.submit_with_budget(u, v, 1_000)
                    } else {
                        c.submit(u, v)
                    };
                    if let Ok(t) = r {
                        tickets.push(t);
                    }
                }
                tickets
            })
        })
        .collect();
    let mut tickets = Vec::new();
    for h in handles {
        tickets.extend(h.join().expect("submitter panicked"));
    }
    c.shutdown();
    worker.join().expect("worker panicked");

    let stats = c.stats();
    assert_eq!(
        stats.submitted,
        (SUBMITTERS * PER_THREAD) as u64,
        "every submission attempt is counted"
    );
    assert_eq!(
        stats.accepted + stats.rejected(),
        stats.submitted,
        "admission accounts every request exactly once"
    );
    assert_eq!(stats.queue_depth, 0, "worker drains before exiting");
    assert_eq!(
        stats.completed + stats.expired,
        stats.accepted,
        "every admitted request is scored or expired, never lost"
    );
    assert_eq!(stats.accepted as usize, tickets.len());

    // Every ticket resolved, and the outcome split matches the stats.
    let (mut ok, mut missed) = (0u64, 0u64);
    for t in tickets {
        match t.wait() {
            Ok(_) => ok += 1,
            Err(Rejection::DeadlineExceeded) => missed += 1,
            Err(other) => panic!("queued request rejected with {other:?}"),
        }
    }
    assert_eq!(ok, stats.completed);
    assert_eq!(missed, stats.expired);

    // The obs counters agree with the ground-truth stats.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ssf.serve.rejected"), stats.rejected_overload);
    assert_eq!(
        snap.counter("ssf.serve.deadline_miss"),
        stats.deadline_misses()
    );
    assert_eq!(snap.counter("ssf.serve.coalesced"), stats.completed);
    let batch_sizes = snap
        .histogram("ssf.serve.batch_size")
        .expect("batch sizes recorded");
    assert_eq!(batch_sizes.count(), stats.batches);
    assert_eq!(batch_sizes.sum(), stats.completed);
}

// ---------------------------------------------------------------------
// Sharded path and serve-layer degenerate inputs
// ---------------------------------------------------------------------

#[test]
fn coalesced_sharded_scoring_matches_direct_including_cross_shard_pairs() {
    let mut sharded =
        ShardedPredictor::new(quick_config(), 2).expect("valid config");
    let g = DatasetSpec::coauthor().scaled(0.15).generate(9);
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    sharded.observe_batch_parallel(&events);
    let _ = sharded.try_refit_all();
    let snap = sharded.snapshot();
    // (0, 1) and (2, 3) span both shards (endpoints have different
    // owners); routing must pick min(u, v) % 2 in either order.
    let pairs = [(0u32, 1u32), (1, 0), (2, 3), (4, 4), (1, 7), (0, 1), (5, 2)];
    let direct = snap.score_batch(&pairs);

    let config = CoalesceConfig::builder()
        .max_batch(pairs.len())
        .worker_threads(2)
        .build()
        .expect("valid");
    let clock = Arc::new(MockClock::new());
    let c = Coalescer::with_clock(
        snap,
        config,
        Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
    );
    let tickets: Vec<_> = pairs
        .iter()
        .map(|&(u, v)| c.submit(u, v).expect("admitted"))
        .collect();
    assert_eq!(c.step().scored, pairs.len());
    let got: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("scored"))
        .collect();
    assert_eq!(bits(&got), bits(&direct));
}

#[test]
fn parallel_batch_paths_handle_degenerate_inputs_uniformly() {
    let snap = shared_snapshot();
    assert!(snap.score_batch_parallel(&[], 0).is_empty());
    assert!(snap.score_batch_parallel(&[], 8).is_empty());
    let pairs = [(0u32, 1u32), (3, 3), (2, 5)];
    // threads == 0 is clamped to 1, bit-identical to the serial path.
    assert_eq!(
        bits(&snap.score_batch_parallel(&pairs, 0)),
        bits(&snap.score_batch(&pairs))
    );

    let mut sharded =
        ShardedPredictor::new(quick_config(), 2).expect("valid config");
    sharded.observe(0, 1, 1);
    sharded.observe(2, 3, 2);
    let ssnap = sharded.snapshot();
    assert!(ssnap.score_batch_parallel(&[], 0).is_empty());
    assert_eq!(
        bits(&ssnap.score_batch_parallel(&pairs, 0)),
        bits(&ssnap.score_batch(&pairs))
    );
}

#[test]
fn coalesce_config_rejects_zero_worker_threads_as_config_error() {
    let err = CoalesceConfig::builder().worker_threads(0).build();
    match err {
        Err(SsfError::Config(e)) => {
            assert!(e.to_string().contains("worker_threads"), "{e}");
        }
        other => panic!("expected ConfigError, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Bit-identity under arbitrary interleavings (the tentpole contract)
// ---------------------------------------------------------------------

proptest! {
    // Each case replays one interleaving at three worker-thread counts
    // against a shared fitted snapshot.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of submissions, clock advances and worker steps
    /// produces scores byte-equal to `score_batch` on the same pairs in
    /// submission order — at 1, 2 and 8 dispatch threads, across every
    /// batch boundary the interleaving induces.
    #[test]
    fn coalesced_scores_are_bit_identical_to_score_batch(
        ops in prop::collection::vec(
            (0..6u8, 0..40u32, 0..40u32, 1..2_000u64),
            1..40,
        ),
        max_batch in 1..6usize,
        max_delay_us in 1..300u64,
    ) {
        let snap = shared_snapshot().clone();
        let n = snap.graph().node_count() as u32;
        for worker_threads in [1usize, 2, 8] {
            let config = CoalesceConfig::builder()
                .max_batch(max_batch)
                .max_delay_ns(max_delay_us * 1_000)
                .worker_threads(worker_threads)
                .queue_capacity(4096)
                .build()
                .expect("valid");
            let clock = Arc::new(MockClock::new());
            let c = Coalescer::with_clock(
                snap.clone(),
                config,
                Arc::<MockClock>::clone(&clock) as Arc<dyn ssf_repro::Clock>,
            );
            let mut submitted: Vec<(u32, u32)> = Vec::new();
            let mut tickets = Vec::new();
            for &(op, a, b, ns) in &ops {
                match op {
                    // Submissions dominate the op mix; out-of-range and
                    // degenerate pairs ride along deliberately.
                    0..=2 => {
                        let (u, v) = (a % (n + 3), b % (n + 3));
                        let t = c.submit(u, v).expect("queue is unbounded");
                        submitted.push((u, v));
                        tickets.push(t);
                    }
                    3 => clock.advance(ns * 1_000),
                    _ => {
                        let _ = c.step();
                    }
                }
            }
            // Drain: flush closes pending batches regardless of policy.
            while c.flush().remaining > 0 {}
            let direct = snap.score_batch(&submitted);
            for (i, (t, want)) in
                tickets.into_iter().zip(&direct).enumerate()
            {
                let got = t.wait();
                prop_assert_eq!(
                    got.map(|s| s.map(f64::to_bits)),
                    Ok(want.map(f64::to_bits)),
                    "pair {} {:?} diverged at {} threads",
                    i,
                    submitted[i],
                    worker_threads
                );
            }
            let stats = c.stats();
            prop_assert_eq!(stats.completed, submitted.len() as u64);
            prop_assert_eq!(stats.accepted + stats.rejected(),
                stats.submitted);
        }
    }
}
