//! End-to-end integration tests: dataset generation → splitting → every
//! Table III method → metric sanity, plus determinism across the whole
//! pipeline.

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_eval::{ResultsTable, Split, SplitConfig};

fn quick_opts() -> MethodOptions {
    MethodOptions {
        nm_epochs: 15,
        ..MethodOptions::default()
    }
}

#[allow(clippy::expect_used)] // test helper
fn small_split(spec: &DatasetSpec, seed: u64) -> Split {
    let g = spec.generate(seed);
    Split::with_min_positives(
        &g,
        &SplitConfig {
            seed,
            max_positives: Some(60),
            ..SplitConfig::default()
        },
        30,
    )
    .expect("generated dataset must split")
}

#[test]
fn every_method_runs_on_every_topology_class() {
    let specs = [
        DatasetSpec::contact().scaled(0.12), // RepeatedContact
        DatasetSpec::digg().scaled(0.08),    // HubDominated
        DatasetSpec::coauthor().scaled(0.15), // Community
    ];
    let opts = quick_opts();
    for (i, spec) in specs.iter().enumerate() {
        let split = small_split(spec, 100 + i as u64);
        for method in Method::all() {
            let r = method.evaluate(&split, &opts);
            assert!(
                (0.0..=1.0).contains(&r.auc) && r.auc.is_finite(),
                "{} AUC out of range on {}: {}",
                r.name,
                spec.name,
                r.auc
            );
            assert!(
                (0.0..=1.0).contains(&r.f1) && r.f1.is_finite(),
                "{} F1 out of range on {}",
                r.name,
                spec.name
            );
        }
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let spec = DatasetSpec::coauthor().scaled(0.12);
    let opts = quick_opts();
    let run = || {
        let split = small_split(&spec, 7);
        let r1 = Method::Ssfnm.evaluate(&split, &opts);
        let r2 = Method::Cn.evaluate(&split, &opts);
        (r1.auc, r1.f1, r2.auc, r2.f1)
    };
    assert_eq!(run(), run());
}

#[test]
fn results_table_collects_full_grid() {
    let spec = DatasetSpec::digg().scaled(0.08);
    let split = small_split(&spec, 3);
    let opts = quick_opts();
    let mut table = ResultsTable::new();
    for m in [Method::Cn, Method::Pa, Method::Ssflr] {
        table.record(spec.name, &m.evaluate(&split, &opts));
    }
    assert_eq!(table.methods().len(), 3);
    assert_eq!(table.datasets().len(), 1);
    assert!(table.best_by_auc(spec.name).is_some());
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 4); // header + 3 rows
    assert!(table.to_string().contains("Digg"));
}

#[test]
fn split_has_no_label_leakage_into_history() {
    let spec = DatasetSpec::facebook().scaled(0.08);
    let split = small_split(&spec, 5);
    for s in split.train.iter().chain(&split.test) {
        assert!(
            !split.history.has_link(s.u, s.v),
            "candidate pair ({}, {}) must be absent from history",
            s.u,
            s.v
        );
    }
}

#[test]
fn supervised_and_ranking_agree_on_obvious_signal() {
    // A network where positives always close triangles: every reasonable
    // method must beat chance comfortably.
    let spec = DatasetSpec::coauthor().scaled(0.2);
    let split = small_split(&spec, 7);
    let opts = MethodOptions {
        nm_epochs: 80,
        ..MethodOptions::default()
    };
    for m in [Method::Cn, Method::Ssflr, Method::Ssfnm] {
        let r = m.evaluate(&split, &opts);
        assert!(
            r.auc > 0.55,
            "{} should beat chance on community data: {}",
            r.name,
            r.auc
        );
    }
}
