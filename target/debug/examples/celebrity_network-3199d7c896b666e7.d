/root/repo/target/debug/examples/celebrity_network-3199d7c896b666e7.d: examples/celebrity_network.rs

/root/repo/target/debug/examples/celebrity_network-3199d7c896b666e7: examples/celebrity_network.rs

examples/celebrity_network.rs:
