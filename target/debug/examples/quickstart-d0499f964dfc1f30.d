/root/repo/target/debug/examples/quickstart-d0499f964dfc1f30.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d0499f964dfc1f30.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
