/root/repo/target/debug/examples/backtesting-eb30905409b4d40d.d: examples/backtesting.rs

/root/repo/target/debug/examples/backtesting-eb30905409b4d40d: examples/backtesting.rs

examples/backtesting.rs:
