/root/repo/target/debug/examples/backtesting-4969f7017a9721c2.d: examples/backtesting.rs

/root/repo/target/debug/examples/backtesting-4969f7017a9721c2: examples/backtesting.rs

examples/backtesting.rs:
