/root/repo/target/debug/examples/reply_recommendation-f372336d2b9d1f2d.d: examples/reply_recommendation.rs

/root/repo/target/debug/examples/reply_recommendation-f372336d2b9d1f2d: examples/reply_recommendation.rs

examples/reply_recommendation.rs:
