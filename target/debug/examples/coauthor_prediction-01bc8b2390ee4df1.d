/root/repo/target/debug/examples/coauthor_prediction-01bc8b2390ee4df1.d: examples/coauthor_prediction.rs

/root/repo/target/debug/examples/coauthor_prediction-01bc8b2390ee4df1: examples/coauthor_prediction.rs

examples/coauthor_prediction.rs:
