/root/repo/target/debug/examples/quickstart-838b9775b64fd577.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-838b9775b64fd577: examples/quickstart.rs

examples/quickstart.rs:
