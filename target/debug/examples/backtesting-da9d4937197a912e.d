/root/repo/target/debug/examples/backtesting-da9d4937197a912e.d: /root/repo/clippy.toml examples/backtesting.rs Cargo.toml

/root/repo/target/debug/examples/libbacktesting-da9d4937197a912e.rmeta: /root/repo/clippy.toml examples/backtesting.rs Cargo.toml

/root/repo/clippy.toml:
examples/backtesting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
