/root/repo/target/debug/examples/reply_recommendation-4d0106d2c5521ec4.d: /root/repo/clippy.toml examples/reply_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libreply_recommendation-4d0106d2c5521ec4.rmeta: /root/repo/clippy.toml examples/reply_recommendation.rs Cargo.toml

/root/repo/clippy.toml:
examples/reply_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
