/root/repo/target/debug/examples/coauthor_prediction-09375ddbaf5f9630.d: /root/repo/clippy.toml examples/coauthor_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libcoauthor_prediction-09375ddbaf5f9630.rmeta: /root/repo/clippy.toml examples/coauthor_prediction.rs Cargo.toml

/root/repo/clippy.toml:
examples/coauthor_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
