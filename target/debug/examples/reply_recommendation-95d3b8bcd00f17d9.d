/root/repo/target/debug/examples/reply_recommendation-95d3b8bcd00f17d9.d: examples/reply_recommendation.rs

/root/repo/target/debug/examples/reply_recommendation-95d3b8bcd00f17d9: examples/reply_recommendation.rs

examples/reply_recommendation.rs:
