/root/repo/target/debug/examples/coauthor_prediction-6a3719b67d01fa3b.d: examples/coauthor_prediction.rs

/root/repo/target/debug/examples/coauthor_prediction-6a3719b67d01fa3b: examples/coauthor_prediction.rs

examples/coauthor_prediction.rs:
