/root/repo/target/debug/examples/celebrity_network-4b52ea95c873b92a.d: /root/repo/clippy.toml examples/celebrity_network.rs Cargo.toml

/root/repo/target/debug/examples/libcelebrity_network-4b52ea95c873b92a.rmeta: /root/repo/clippy.toml examples/celebrity_network.rs Cargo.toml

/root/repo/clippy.toml:
examples/celebrity_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
