/root/repo/target/debug/examples/backtesting-7ac58e8cb10b1005.d: /root/repo/clippy.toml examples/backtesting.rs Cargo.toml

/root/repo/target/debug/examples/libbacktesting-7ac58e8cb10b1005.rmeta: /root/repo/clippy.toml examples/backtesting.rs Cargo.toml

/root/repo/clippy.toml:
examples/backtesting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
