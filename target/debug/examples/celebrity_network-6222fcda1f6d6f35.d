/root/repo/target/debug/examples/celebrity_network-6222fcda1f6d6f35.d: /root/repo/clippy.toml examples/celebrity_network.rs Cargo.toml

/root/repo/target/debug/examples/libcelebrity_network-6222fcda1f6d6f35.rmeta: /root/repo/clippy.toml examples/celebrity_network.rs Cargo.toml

/root/repo/clippy.toml:
examples/celebrity_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
