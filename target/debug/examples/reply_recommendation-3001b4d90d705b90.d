/root/repo/target/debug/examples/reply_recommendation-3001b4d90d705b90.d: /root/repo/clippy.toml examples/reply_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libreply_recommendation-3001b4d90d705b90.rmeta: /root/repo/clippy.toml examples/reply_recommendation.rs Cargo.toml

/root/repo/clippy.toml:
examples/reply_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
