/root/repo/target/debug/examples/coauthor_prediction-3f2d5c8243495a97.d: /root/repo/clippy.toml examples/coauthor_prediction.rs Cargo.toml

/root/repo/target/debug/examples/libcoauthor_prediction-3f2d5c8243495a97.rmeta: /root/repo/clippy.toml examples/coauthor_prediction.rs Cargo.toml

/root/repo/clippy.toml:
examples/coauthor_prediction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
