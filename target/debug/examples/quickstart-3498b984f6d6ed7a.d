/root/repo/target/debug/examples/quickstart-3498b984f6d6ed7a.d: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3498b984f6d6ed7a.rmeta: /root/repo/clippy.toml examples/quickstart.rs Cargo.toml

/root/repo/clippy.toml:
examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
