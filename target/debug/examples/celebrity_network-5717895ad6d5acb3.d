/root/repo/target/debug/examples/celebrity_network-5717895ad6d5acb3.d: examples/celebrity_network.rs

/root/repo/target/debug/examples/celebrity_network-5717895ad6d5acb3: examples/celebrity_network.rs

examples/celebrity_network.rs:
