/root/repo/target/debug/examples/quickstart-4b19753b78cf1e1a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4b19753b78cf1e1a: examples/quickstart.rs

examples/quickstart.rs:
