/root/repo/target/debug/deps/obs-7e7895435e58a701.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/obs-7e7895435e58a701: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
