/root/repo/target/debug/deps/ssf_repro-2d841adb52328af9.d: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libssf_repro-2d841adb52328af9.rmeta: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
