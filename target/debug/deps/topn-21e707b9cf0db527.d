/root/repo/target/debug/deps/topn-21e707b9cf0db527.d: crates/bench/src/bin/topn.rs

/root/repo/target/debug/deps/topn-21e707b9cf0db527: crates/bench/src/bin/topn.rs

crates/bench/src/bin/topn.rs:
