/root/repo/target/debug/deps/ablation-255cee8f915d6ad4.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-255cee8f915d6ad4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
