/root/repo/target/debug/deps/ssf_bench-b9794c543a5953b5.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssf_bench-b9794c543a5953b5.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
