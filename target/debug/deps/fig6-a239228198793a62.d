/root/repo/target/debug/deps/fig6-a239228198793a62.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-a239228198793a62.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
