/root/repo/target/debug/deps/ssf_repro-06e8a54bae666010.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/debug/deps/libssf_repro-06e8a54bae666010.rmeta: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/prelude.rs:
src/serve.rs:
src/stream.rs:
