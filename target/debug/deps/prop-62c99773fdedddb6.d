/root/repo/target/debug/deps/prop-62c99773fdedddb6.d: crates/datasets/tests/prop.rs

/root/repo/target/debug/deps/prop-62c99773fdedddb6: crates/datasets/tests/prop.rs

crates/datasets/tests/prop.rs:
