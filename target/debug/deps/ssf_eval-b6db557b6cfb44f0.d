/root/repo/target/debug/deps/ssf_eval-b6db557b6cfb44f0.d: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libssf_eval-b6db557b6cfb44f0.rmeta: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/backtest.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/split.rs:
