/root/repo/target/debug/deps/ssf_ml-dd437822f30de242.d: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/debug/deps/libssf_ml-dd437822f30de242.rlib: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/debug/deps/libssf_ml-dd437822f30de242.rmeta: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
