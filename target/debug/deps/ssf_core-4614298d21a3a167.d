/root/repo/target/debug/deps/ssf_core-4614298d21a3a167.d: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

/root/repo/target/debug/deps/libssf_core-4614298d21a3a167.rmeta: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

crates/ssf-core/src/lib.rs:
crates/ssf-core/src/cache.rs:
crates/ssf-core/src/error.rs:
crates/ssf-core/src/feature.rs:
crates/ssf-core/src/hop.rs:
crates/ssf-core/src/influence.rs:
crates/ssf-core/src/kstructure.rs:
crates/ssf-core/src/palette.rs:
crates/ssf-core/src/pattern.rs:
crates/ssf-core/src/roles.rs:
crates/ssf-core/src/structure.rs:
crates/ssf-core/src/viz.rs:
