/root/repo/target/debug/deps/ssf_bench-401d796d3f9c3415.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ssf_bench-401d796d3f9c3415: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
