/root/repo/target/debug/deps/prop-42103a679ac53306.d: /root/repo/clippy.toml crates/dyngraph/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-42103a679ac53306.rmeta: /root/repo/clippy.toml crates/dyngraph/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/dyngraph/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
