/root/repo/target/debug/deps/datasets-ada567e9a0aa230d.d: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/debug/deps/libdatasets-ada567e9a0aa230d.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
