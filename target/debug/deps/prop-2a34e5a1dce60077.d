/root/repo/target/debug/deps/prop-2a34e5a1dce60077.d: crates/ml/tests/prop.rs

/root/repo/target/debug/deps/prop-2a34e5a1dce60077: crates/ml/tests/prop.rs

crates/ml/tests/prop.rs:
