/root/repo/target/debug/deps/prop-95f7de16c3b19ad1.d: /root/repo/clippy.toml crates/eval/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-95f7de16c3b19ad1.rmeta: /root/repo/clippy.toml crates/eval/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/eval/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
