/root/repo/target/debug/deps/ssf_ml-eab94442565721a1.d: /root/repo/clippy.toml crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs Cargo.toml

/root/repo/target/debug/deps/libssf_ml-eab94442565721a1.rmeta: /root/repo/clippy.toml crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs Cargo.toml

/root/repo/clippy.toml:
crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
