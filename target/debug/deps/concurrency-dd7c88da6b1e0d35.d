/root/repo/target/debug/deps/concurrency-dd7c88da6b1e0d35.d: tests/concurrency.rs

/root/repo/target/debug/deps/concurrency-dd7c88da6b1e0d35: tests/concurrency.rs

tests/concurrency.rs:
