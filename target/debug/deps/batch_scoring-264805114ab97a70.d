/root/repo/target/debug/deps/batch_scoring-264805114ab97a70.d: crates/bench/src/bin/batch_scoring.rs

/root/repo/target/debug/deps/batch_scoring-264805114ab97a70: crates/bench/src/bin/batch_scoring.rs

crates/bench/src/bin/batch_scoring.rs:
