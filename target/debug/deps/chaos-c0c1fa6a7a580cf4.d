/root/repo/target/debug/deps/chaos-c0c1fa6a7a580cf4.d: /root/repo/clippy.toml tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-c0c1fa6a7a580cf4.rmeta: /root/repo/clippy.toml tests/chaos.rs Cargo.toml

/root/repo/clippy.toml:
tests/chaos.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_ssf=placeholder:ssf
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
