/root/repo/target/debug/deps/edge_cases-94b2ca6c6790aa0f.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-94b2ca6c6790aa0f: tests/edge_cases.rs

tests/edge_cases.rs:
