/root/repo/target/debug/deps/ssf-a1e97d2818e602ad.d: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/target/debug/deps/libssf-a1e97d2818e602ad.rmeta: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/ssf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
