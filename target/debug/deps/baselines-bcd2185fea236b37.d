/root/repo/target/debug/deps/baselines-bcd2185fea236b37.d: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/debug/deps/libbaselines-bcd2185fea236b37.rlib: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/debug/deps/libbaselines-bcd2185fea236b37.rmeta: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
