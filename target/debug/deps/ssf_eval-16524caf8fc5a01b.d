/root/repo/target/debug/deps/ssf_eval-16524caf8fc5a01b.d: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libssf_eval-16524caf8fc5a01b.rlib: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/libssf_eval-16524caf8fc5a01b.rmeta: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/backtest.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/split.rs:
