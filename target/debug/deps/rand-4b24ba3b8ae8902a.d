/root/repo/target/debug/deps/rand-4b24ba3b8ae8902a.d: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-4b24ba3b8ae8902a.rmeta: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
