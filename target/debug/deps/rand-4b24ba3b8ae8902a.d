/root/repo/target/debug/deps/rand-4b24ba3b8ae8902a.d: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-4b24ba3b8ae8902a.rmeta: /root/repo/clippy.toml vendor/rand/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
