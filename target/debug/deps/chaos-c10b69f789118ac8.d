/root/repo/target/debug/deps/chaos-c10b69f789118ac8.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-c10b69f789118ac8: tests/chaos.rs

tests/chaos.rs:

# env-dep:CARGO_BIN_EXE_ssf=/root/repo/target/debug/ssf
