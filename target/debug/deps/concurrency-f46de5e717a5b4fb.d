/root/repo/target/debug/deps/concurrency-f46de5e717a5b4fb.d: /root/repo/clippy.toml tests/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-f46de5e717a5b4fb.rmeta: /root/repo/clippy.toml tests/concurrency.rs Cargo.toml

/root/repo/clippy.toml:
tests/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
