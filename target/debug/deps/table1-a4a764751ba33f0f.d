/root/repo/target/debug/deps/table1-a4a764751ba33f0f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-a4a764751ba33f0f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
