/root/repo/target/debug/deps/ssf_eval-02404197dcf73e29.d: /root/repo/clippy.toml crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs Cargo.toml

/root/repo/target/debug/deps/libssf_eval-02404197dcf73e29.rmeta: /root/repo/clippy.toml crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs Cargo.toml

/root/repo/clippy.toml:
crates/eval/src/lib.rs:
crates/eval/src/backtest.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/split.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
