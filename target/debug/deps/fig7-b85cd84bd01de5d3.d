/root/repo/target/debug/deps/fig7-b85cd84bd01de5d3.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b85cd84bd01de5d3: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
