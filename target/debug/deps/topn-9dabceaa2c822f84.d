/root/repo/target/debug/deps/topn-9dabceaa2c822f84.d: /root/repo/clippy.toml crates/bench/src/bin/topn.rs Cargo.toml

/root/repo/target/debug/deps/libtopn-9dabceaa2c822f84.rmeta: /root/repo/clippy.toml crates/bench/src/bin/topn.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/topn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
