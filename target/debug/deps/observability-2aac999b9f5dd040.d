/root/repo/target/debug/deps/observability-2aac999b9f5dd040.d: /root/repo/clippy.toml tests/observability.rs tests/fixtures/metrics_snapshot.json Cargo.toml

/root/repo/target/debug/deps/libobservability-2aac999b9f5dd040.rmeta: /root/repo/clippy.toml tests/observability.rs tests/fixtures/metrics_snapshot.json Cargo.toml

/root/repo/clippy.toml:
tests/observability.rs:
tests/fixtures/metrics_snapshot.json:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
