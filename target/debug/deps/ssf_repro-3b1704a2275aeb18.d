/root/repo/target/debug/deps/ssf_repro-3b1704a2275aeb18.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/debug/deps/libssf_repro-3b1704a2275aeb18.rlib: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/debug/deps/libssf_repro-3b1704a2275aeb18.rmeta: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
