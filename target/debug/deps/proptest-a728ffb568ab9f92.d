/root/repo/target/debug/deps/proptest-a728ffb568ab9f92.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-a728ffb568ab9f92: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
