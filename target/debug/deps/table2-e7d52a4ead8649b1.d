/root/repo/target/debug/deps/table2-e7d52a4ead8649b1.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-e7d52a4ead8649b1: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
