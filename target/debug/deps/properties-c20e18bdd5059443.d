/root/repo/target/debug/deps/properties-c20e18bdd5059443.d: tests/properties.rs

/root/repo/target/debug/deps/properties-c20e18bdd5059443: tests/properties.rs

tests/properties.rs:
