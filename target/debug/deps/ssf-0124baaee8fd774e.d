/root/repo/target/debug/deps/ssf-0124baaee8fd774e.d: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/target/debug/deps/libssf-0124baaee8fd774e.rmeta: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/ssf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
