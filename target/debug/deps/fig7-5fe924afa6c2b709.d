/root/repo/target/debug/deps/fig7-5fe924afa6c2b709.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-5fe924afa6c2b709.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
