/root/repo/target/debug/deps/prop-e570f0dce8a1cf36.d: /root/repo/clippy.toml crates/baselines/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-e570f0dce8a1cf36.rmeta: /root/repo/clippy.toml crates/baselines/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/baselines/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
