/root/repo/target/debug/deps/fig6-d7daa23e440f4ab5.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-d7daa23e440f4ab5: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
