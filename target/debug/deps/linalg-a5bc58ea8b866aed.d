/root/repo/target/debug/deps/linalg-a5bc58ea8b866aed.d: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/liblinalg-a5bc58ea8b866aed.rmeta: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
