/root/repo/target/debug/deps/linalg-31f8b2c96310cce4.d: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/liblinalg-31f8b2c96310cce4.rmeta: /root/repo/clippy.toml crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
