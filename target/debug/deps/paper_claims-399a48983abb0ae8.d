/root/repo/target/debug/deps/paper_claims-399a48983abb0ae8.d: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-399a48983abb0ae8.rmeta: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/clippy.toml:
tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
