/root/repo/target/debug/deps/paper_claims-ffe7ca0ec952a370.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-ffe7ca0ec952a370: tests/paper_claims.rs

tests/paper_claims.rs:
