/root/repo/target/debug/deps/ssf_bench-97ededc971117cc9.d: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libssf_bench-97ededc971117cc9.rmeta: /root/repo/clippy.toml crates/bench/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
