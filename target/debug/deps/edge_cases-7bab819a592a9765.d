/root/repo/target/debug/deps/edge_cases-7bab819a592a9765.d: tests/edge_cases.rs

/root/repo/target/debug/deps/edge_cases-7bab819a592a9765: tests/edge_cases.rs

tests/edge_cases.rs:
