/root/repo/target/debug/deps/linalg-f8b3dc71c424719e.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/liblinalg-f8b3dc71c424719e.rlib: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/liblinalg-f8b3dc71c424719e.rmeta: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
