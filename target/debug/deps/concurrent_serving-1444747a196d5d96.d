/root/repo/target/debug/deps/concurrent_serving-1444747a196d5d96.d: crates/bench/src/bin/concurrent_serving.rs

/root/repo/target/debug/deps/concurrent_serving-1444747a196d5d96: crates/bench/src/bin/concurrent_serving.rs

crates/bench/src/bin/concurrent_serving.rs:
