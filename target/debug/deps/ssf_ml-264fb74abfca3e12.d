/root/repo/target/debug/deps/ssf_ml-264fb74abfca3e12.d: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/debug/deps/ssf_ml-264fb74abfca3e12: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
