/root/repo/target/debug/deps/pipeline-7b4ea908b388f73d.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-7b4ea908b388f73d: tests/pipeline.rs

tests/pipeline.rs:
