/root/repo/target/debug/deps/ssf-a1e835da0952c6c6.d: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/target/debug/deps/libssf-a1e835da0952c6c6.rmeta: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/ssf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
