/root/repo/target/debug/deps/pipeline-8232cd4b6bd35e71.d: /root/repo/clippy.toml tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-8232cd4b6bd35e71.rmeta: /root/repo/clippy.toml tests/pipeline.rs Cargo.toml

/root/repo/clippy.toml:
tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
