/root/repo/target/debug/deps/ssf_core-bb9f9bb6275fdb6d.d: /root/repo/clippy.toml crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs Cargo.toml

/root/repo/target/debug/deps/libssf_core-bb9f9bb6275fdb6d.rmeta: /root/repo/clippy.toml crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs Cargo.toml

/root/repo/clippy.toml:
crates/ssf-core/src/lib.rs:
crates/ssf-core/src/cache.rs:
crates/ssf-core/src/error.rs:
crates/ssf-core/src/feature.rs:
crates/ssf-core/src/hop.rs:
crates/ssf-core/src/influence.rs:
crates/ssf-core/src/kstructure.rs:
crates/ssf-core/src/palette.rs:
crates/ssf-core/src/pattern.rs:
crates/ssf-core/src/roles.rs:
crates/ssf-core/src/structure.rs:
crates/ssf-core/src/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
