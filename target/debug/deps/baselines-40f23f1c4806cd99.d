/root/repo/target/debug/deps/baselines-40f23f1c4806cd99.d: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-40f23f1c4806cd99.rmeta: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs Cargo.toml

/root/repo/clippy.toml:
crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
