/root/repo/target/debug/deps/ssf_repro-97ce2c190a676c45.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/debug/deps/libssf_repro-97ce2c190a676c45.rlib: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/debug/deps/libssf_repro-97ce2c190a676c45.rmeta: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/prelude.rs:
src/serve.rs:
src/stream.rs:
