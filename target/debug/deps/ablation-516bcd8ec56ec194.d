/root/repo/target/debug/deps/ablation-516bcd8ec56ec194.d: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-516bcd8ec56ec194.rmeta: /root/repo/clippy.toml crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
