/root/repo/target/debug/deps/obs-aa01564f7a000669.d: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs Cargo.toml

/root/repo/target/debug/deps/libobs-aa01564f7a000669.rmeta: /root/repo/clippy.toml crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs Cargo.toml

/root/repo/clippy.toml:
crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
