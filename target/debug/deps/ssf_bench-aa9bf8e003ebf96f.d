/root/repo/target/debug/deps/ssf_bench-aa9bf8e003ebf96f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libssf_bench-aa9bf8e003ebf96f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
