/root/repo/target/debug/deps/datasets-59468aa465e72769.d: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/debug/deps/libdatasets-59468aa465e72769.rlib: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/debug/deps/libdatasets-59468aa465e72769.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
