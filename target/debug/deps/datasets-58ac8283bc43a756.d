/root/repo/target/debug/deps/datasets-58ac8283bc43a756.d: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/debug/deps/datasets-58ac8283bc43a756: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
