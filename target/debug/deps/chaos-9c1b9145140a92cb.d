/root/repo/target/debug/deps/chaos-9c1b9145140a92cb.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-9c1b9145140a92cb: tests/chaos.rs

tests/chaos.rs:

# env-dep:CARGO_BIN_EXE_ssf=/root/repo/target/debug/ssf
