/root/repo/target/debug/deps/table1-a4243cb8514f1b52.d: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-a4243cb8514f1b52.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
