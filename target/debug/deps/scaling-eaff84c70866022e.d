/root/repo/target/debug/deps/scaling-eaff84c70866022e.d: /root/repo/clippy.toml crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-eaff84c70866022e.rmeta: /root/repo/clippy.toml crates/bench/benches/scaling.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
