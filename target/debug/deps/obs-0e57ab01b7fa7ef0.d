/root/repo/target/debug/deps/obs-0e57ab01b7fa7ef0.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libobs-0e57ab01b7fa7ef0.rlib: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libobs-0e57ab01b7fa7ef0.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
