/root/repo/target/debug/deps/baselines-9bd1bc47a9dccad7.d: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-9bd1bc47a9dccad7.rmeta: /root/repo/clippy.toml crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs Cargo.toml

/root/repo/clippy.toml:
crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
