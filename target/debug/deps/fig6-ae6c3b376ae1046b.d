/root/repo/target/debug/deps/fig6-ae6c3b376ae1046b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-ae6c3b376ae1046b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
