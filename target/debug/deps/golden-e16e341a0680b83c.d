/root/repo/target/debug/deps/golden-e16e341a0680b83c.d: tests/golden.rs tests/fixtures/figure3_k4.txt

/root/repo/target/debug/deps/golden-e16e341a0680b83c: tests/golden.rs tests/fixtures/figure3_k4.txt

tests/golden.rs:
tests/fixtures/figure3_k4.txt:
