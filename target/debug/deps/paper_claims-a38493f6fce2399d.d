/root/repo/target/debug/deps/paper_claims-a38493f6fce2399d.d: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-a38493f6fce2399d.rmeta: /root/repo/clippy.toml tests/paper_claims.rs Cargo.toml

/root/repo/clippy.toml:
tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
