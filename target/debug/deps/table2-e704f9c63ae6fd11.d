/root/repo/target/debug/deps/table2-e704f9c63ae6fd11.d: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e704f9c63ae6fd11.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
