/root/repo/target/debug/deps/ssf_repro-ba8435a6103366c9.d: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libssf_repro-ba8435a6103366c9.rmeta: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/prelude.rs:
src/serve.rs:
src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
