/root/repo/target/debug/deps/datasets-2dc2f3b31ad64c6e.d: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-2dc2f3b31ad64c6e.rmeta: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/clippy.toml:
crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
