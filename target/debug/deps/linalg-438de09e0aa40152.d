/root/repo/target/debug/deps/linalg-438de09e0aa40152.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/linalg-438de09e0aa40152: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
