/root/repo/target/debug/deps/extraction-2827973dfeaf7f49.d: /root/repo/clippy.toml crates/bench/benches/extraction.rs Cargo.toml

/root/repo/target/debug/deps/libextraction-2827973dfeaf7f49.rmeta: /root/repo/clippy.toml crates/bench/benches/extraction.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/extraction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
