/root/repo/target/debug/deps/edge_cases-d5efab1b10666110.d: /root/repo/clippy.toml tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-d5efab1b10666110.rmeta: /root/repo/clippy.toml tests/edge_cases.rs Cargo.toml

/root/repo/clippy.toml:
tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
