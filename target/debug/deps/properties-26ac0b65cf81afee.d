/root/repo/target/debug/deps/properties-26ac0b65cf81afee.d: tests/properties.rs

/root/repo/target/debug/deps/properties-26ac0b65cf81afee: tests/properties.rs

tests/properties.rs:
