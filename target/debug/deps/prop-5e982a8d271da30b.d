/root/repo/target/debug/deps/prop-5e982a8d271da30b.d: crates/baselines/tests/prop.rs

/root/repo/target/debug/deps/prop-5e982a8d271da30b: crates/baselines/tests/prop.rs

crates/baselines/tests/prop.rs:
