/root/repo/target/debug/deps/dyngraph-eec7e54a5e618c49.d: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

/root/repo/target/debug/deps/libdyngraph-eec7e54a5e618c49.rmeta: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

crates/dyngraph/src/lib.rs:
crates/dyngraph/src/error.rs:
crates/dyngraph/src/io.rs:
crates/dyngraph/src/metrics.rs:
crates/dyngraph/src/network.rs:
crates/dyngraph/src/static_graph.rs:
crates/dyngraph/src/stats.rs:
crates/dyngraph/src/traversal.rs:
