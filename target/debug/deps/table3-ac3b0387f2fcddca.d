/root/repo/target/debug/deps/table3-ac3b0387f2fcddca.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ac3b0387f2fcddca: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
