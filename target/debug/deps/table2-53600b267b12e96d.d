/root/repo/target/debug/deps/table2-53600b267b12e96d.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-53600b267b12e96d: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
