/root/repo/target/debug/deps/ssf_repro-8474d8a281b797f7.d: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libssf_repro-8474d8a281b797f7.rmeta: /root/repo/clippy.toml src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs Cargo.toml

/root/repo/clippy.toml:
src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
