/root/repo/target/debug/deps/ablation-6016ddc581d747e6.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-6016ddc581d747e6: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
