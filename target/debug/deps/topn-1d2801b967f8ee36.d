/root/repo/target/debug/deps/topn-1d2801b967f8ee36.d: crates/bench/src/bin/topn.rs

/root/repo/target/debug/deps/topn-1d2801b967f8ee36: crates/bench/src/bin/topn.rs

crates/bench/src/bin/topn.rs:
