/root/repo/target/debug/deps/datasets-e88b64c479dee92f.d: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-e88b64c479dee92f.rmeta: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/clippy.toml:
crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
