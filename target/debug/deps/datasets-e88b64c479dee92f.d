/root/repo/target/debug/deps/datasets-e88b64c479dee92f.d: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libdatasets-e88b64c479dee92f.rmeta: /root/repo/clippy.toml crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs Cargo.toml

/root/repo/clippy.toml:
crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
