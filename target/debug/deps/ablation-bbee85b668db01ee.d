/root/repo/target/debug/deps/ablation-bbee85b668db01ee.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-bbee85b668db01ee: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
