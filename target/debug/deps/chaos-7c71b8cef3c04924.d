/root/repo/target/debug/deps/chaos-7c71b8cef3c04924.d: /root/repo/clippy.toml tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-7c71b8cef3c04924.rmeta: /root/repo/clippy.toml tests/chaos.rs Cargo.toml

/root/repo/clippy.toml:
tests/chaos.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_ssf=placeholder:ssf
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
