/root/repo/target/debug/deps/prop-30272b0fd8ad87cf.d: crates/dyngraph/tests/prop.rs

/root/repo/target/debug/deps/prop-30272b0fd8ad87cf: crates/dyngraph/tests/prop.rs

crates/dyngraph/tests/prop.rs:
