/root/repo/target/debug/deps/prop-8831eba8ae2ceadb.d: crates/linalg/tests/prop.rs

/root/repo/target/debug/deps/prop-8831eba8ae2ceadb: crates/linalg/tests/prop.rs

crates/linalg/tests/prop.rs:
