/root/repo/target/debug/deps/linalg-4f0753949baa8e79.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/debug/deps/liblinalg-4f0753949baa8e79.rmeta: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
