/root/repo/target/debug/deps/prop-6a220fd993dfa6cf.d: crates/baselines/tests/prop.rs

/root/repo/target/debug/deps/prop-6a220fd993dfa6cf: crates/baselines/tests/prop.rs

crates/baselines/tests/prop.rs:
