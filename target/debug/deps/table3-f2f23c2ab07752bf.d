/root/repo/target/debug/deps/table3-f2f23c2ab07752bf.d: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-f2f23c2ab07752bf.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
