/root/repo/target/debug/deps/golden-f5c9991bdb2d0c5f.d: /root/repo/clippy.toml tests/golden.rs tests/fixtures/figure3_k4.txt Cargo.toml

/root/repo/target/debug/deps/libgolden-f5c9991bdb2d0c5f.rmeta: /root/repo/clippy.toml tests/golden.rs tests/fixtures/figure3_k4.txt Cargo.toml

/root/repo/clippy.toml:
tests/golden.rs:
tests/fixtures/figure3_k4.txt:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
