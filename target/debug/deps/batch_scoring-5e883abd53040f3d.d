/root/repo/target/debug/deps/batch_scoring-5e883abd53040f3d.d: crates/bench/src/bin/batch_scoring.rs

/root/repo/target/debug/deps/batch_scoring-5e883abd53040f3d: crates/bench/src/bin/batch_scoring.rs

crates/bench/src/bin/batch_scoring.rs:
