/root/repo/target/debug/deps/ssf_bench-5015541c92ae7d28.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libssf_bench-5015541c92ae7d28.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libssf_bench-5015541c92ae7d28.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
