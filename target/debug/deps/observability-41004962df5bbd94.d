/root/repo/target/debug/deps/observability-41004962df5bbd94.d: tests/observability.rs tests/fixtures/metrics_snapshot.json

/root/repo/target/debug/deps/observability-41004962df5bbd94: tests/observability.rs tests/fixtures/metrics_snapshot.json

tests/observability.rs:
tests/fixtures/metrics_snapshot.json:
