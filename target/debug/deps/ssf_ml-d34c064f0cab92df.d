/root/repo/target/debug/deps/ssf_ml-d34c064f0cab92df.d: /root/repo/clippy.toml crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs Cargo.toml

/root/repo/target/debug/deps/libssf_ml-d34c064f0cab92df.rmeta: /root/repo/clippy.toml crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs Cargo.toml

/root/repo/clippy.toml:
crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
