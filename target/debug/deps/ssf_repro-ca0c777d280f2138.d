/root/repo/target/debug/deps/ssf_repro-ca0c777d280f2138.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/debug/deps/ssf_repro-ca0c777d280f2138: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
