/root/repo/target/debug/deps/fig6-83cb0983a6b910d6.d: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-83cb0983a6b910d6.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
