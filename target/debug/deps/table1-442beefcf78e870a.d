/root/repo/target/debug/deps/table1-442beefcf78e870a.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-442beefcf78e870a: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
