/root/repo/target/debug/deps/edge_cases-af72fd67d4c685af.d: /root/repo/clippy.toml tests/edge_cases.rs Cargo.toml

/root/repo/target/debug/deps/libedge_cases-af72fd67d4c685af.rmeta: /root/repo/clippy.toml tests/edge_cases.rs Cargo.toml

/root/repo/clippy.toml:
tests/edge_cases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
