/root/repo/target/debug/deps/prop-4afb37ec6904407b.d: crates/eval/tests/prop.rs

/root/repo/target/debug/deps/prop-4afb37ec6904407b: crates/eval/tests/prop.rs

crates/eval/tests/prop.rs:
