/root/repo/target/debug/deps/proptest-258135d67142cbab.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-258135d67142cbab.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
