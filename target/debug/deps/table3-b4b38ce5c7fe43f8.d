/root/repo/target/debug/deps/table3-b4b38ce5c7fe43f8.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-b4b38ce5c7fe43f8: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
