/root/repo/target/debug/deps/ssf_repro-295f47c4091687bd.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/debug/deps/ssf_repro-295f47c4091687bd: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/prelude.rs:
src/serve.rs:
src/stream.rs:
