/root/repo/target/debug/deps/table1-51368ccdd7cb91ba.d: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-51368ccdd7cb91ba.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
