/root/repo/target/debug/deps/fig7-fa36389f74aa0f06.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-fa36389f74aa0f06: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
