/root/repo/target/debug/deps/ssf_bench-bc9348a504afa4a0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ssf_bench-bc9348a504afa4a0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
