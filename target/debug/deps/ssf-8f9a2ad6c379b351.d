/root/repo/target/debug/deps/ssf-8f9a2ad6c379b351.d: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/target/debug/deps/libssf-8f9a2ad6c379b351.rmeta: /root/repo/clippy.toml src/bin/ssf.rs Cargo.toml

/root/repo/clippy.toml:
src/bin/ssf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
