/root/repo/target/debug/deps/batch_scoring-6a86f8c4e3594e1a.d: /root/repo/clippy.toml crates/bench/src/bin/batch_scoring.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_scoring-6a86f8c4e3594e1a.rmeta: /root/repo/clippy.toml crates/bench/src/bin/batch_scoring.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/batch_scoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
