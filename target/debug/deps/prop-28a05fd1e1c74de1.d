/root/repo/target/debug/deps/prop-28a05fd1e1c74de1.d: /root/repo/clippy.toml crates/ml/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-28a05fd1e1c74de1.rmeta: /root/repo/clippy.toml crates/ml/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/ml/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
