/root/repo/target/debug/deps/ssf_eval-9221f248dabafb26.d: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/debug/deps/ssf_eval-9221f248dabafb26: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/backtest.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/split.rs:
