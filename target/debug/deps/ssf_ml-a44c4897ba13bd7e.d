/root/repo/target/debug/deps/ssf_ml-a44c4897ba13bd7e.d: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/debug/deps/libssf_ml-a44c4897ba13bd7e.rmeta: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
