/root/repo/target/debug/deps/dyngraph-bd7f300b9d142c1f.d: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

/root/repo/target/debug/deps/libdyngraph-bd7f300b9d142c1f.rlib: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

/root/repo/target/debug/deps/libdyngraph-bd7f300b9d142c1f.rmeta: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

crates/dyngraph/src/lib.rs:
crates/dyngraph/src/error.rs:
crates/dyngraph/src/io.rs:
crates/dyngraph/src/metrics.rs:
crates/dyngraph/src/network.rs:
crates/dyngraph/src/static_graph.rs:
crates/dyngraph/src/stats.rs:
crates/dyngraph/src/traversal.rs:
