/root/repo/target/debug/deps/proptest-334e5efc0e0d18d2.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-334e5efc0e0d18d2.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
