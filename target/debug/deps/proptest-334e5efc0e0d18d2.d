/root/repo/target/debug/deps/proptest-334e5efc0e0d18d2.d: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-334e5efc0e0d18d2.rmeta: /root/repo/clippy.toml vendor/proptest/src/lib.rs Cargo.toml

/root/repo/clippy.toml:
vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
