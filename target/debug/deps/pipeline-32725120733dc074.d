/root/repo/target/debug/deps/pipeline-32725120733dc074.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-32725120733dc074: tests/pipeline.rs

tests/pipeline.rs:
