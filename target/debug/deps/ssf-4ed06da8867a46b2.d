/root/repo/target/debug/deps/ssf-4ed06da8867a46b2.d: src/bin/ssf.rs

/root/repo/target/debug/deps/ssf-4ed06da8867a46b2: src/bin/ssf.rs

src/bin/ssf.rs:
