/root/repo/target/debug/deps/golden-6f1525cc76391a26.d: tests/golden.rs tests/fixtures/figure3_k4.txt

/root/repo/target/debug/deps/golden-6f1525cc76391a26: tests/golden.rs tests/fixtures/figure3_k4.txt

tests/golden.rs:
tests/fixtures/figure3_k4.txt:
