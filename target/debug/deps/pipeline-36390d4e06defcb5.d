/root/repo/target/debug/deps/pipeline-36390d4e06defcb5.d: /root/repo/clippy.toml tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-36390d4e06defcb5.rmeta: /root/repo/clippy.toml tests/pipeline.rs Cargo.toml

/root/repo/clippy.toml:
tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
