/root/repo/target/debug/deps/baselines-99c986f251aafa0c.d: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/debug/deps/libbaselines-99c986f251aafa0c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
