/root/repo/target/debug/deps/prop-821db6a2c0d19966.d: crates/ml/tests/prop.rs

/root/repo/target/debug/deps/prop-821db6a2c0d19966: crates/ml/tests/prop.rs

crates/ml/tests/prop.rs:
