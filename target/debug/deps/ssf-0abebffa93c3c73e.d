/root/repo/target/debug/deps/ssf-0abebffa93c3c73e.d: src/bin/ssf.rs

/root/repo/target/debug/deps/ssf-0abebffa93c3c73e: src/bin/ssf.rs

src/bin/ssf.rs:
