/root/repo/target/debug/deps/fig7-6f91691a2a876bd4.d: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-6f91691a2a876bd4.rmeta: /root/repo/clippy.toml crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
