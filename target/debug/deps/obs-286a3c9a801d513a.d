/root/repo/target/debug/deps/obs-286a3c9a801d513a.d: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

/root/repo/target/debug/deps/libobs-286a3c9a801d513a.rmeta: crates/obs/src/lib.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/registry.rs

crates/obs/src/lib.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/registry.rs:
