/root/repo/target/debug/deps/table3-a4dc6936f5f2d21c.d: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-a4dc6936f5f2d21c.rmeta: /root/repo/clippy.toml crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
