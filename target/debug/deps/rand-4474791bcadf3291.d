/root/repo/target/debug/deps/rand-4474791bcadf3291.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4474791bcadf3291.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
