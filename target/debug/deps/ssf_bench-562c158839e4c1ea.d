/root/repo/target/debug/deps/ssf_bench-562c158839e4c1ea.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libssf_bench-562c158839e4c1ea.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libssf_bench-562c158839e4c1ea.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
