/root/repo/target/debug/deps/properties-26b8f08af0562759.d: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-26b8f08af0562759.rmeta: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
