/root/repo/target/debug/deps/properties-26b8f08af0562759.d: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-26b8f08af0562759.rmeta: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
