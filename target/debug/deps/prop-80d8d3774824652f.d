/root/repo/target/debug/deps/prop-80d8d3774824652f.d: crates/obs/tests/prop.rs

/root/repo/target/debug/deps/prop-80d8d3774824652f: crates/obs/tests/prop.rs

crates/obs/tests/prop.rs:
