/root/repo/target/debug/deps/properties-17e2c5ef9c8bd80d.d: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-17e2c5ef9c8bd80d.rmeta: /root/repo/clippy.toml tests/properties.rs Cargo.toml

/root/repo/clippy.toml:
tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
