/root/repo/target/debug/deps/golden-4e4cac6b7a50471b.d: /root/repo/clippy.toml tests/golden.rs tests/fixtures/figure3_k4.txt Cargo.toml

/root/repo/target/debug/deps/libgolden-4e4cac6b7a50471b.rmeta: /root/repo/clippy.toml tests/golden.rs tests/fixtures/figure3_k4.txt Cargo.toml

/root/repo/clippy.toml:
tests/golden.rs:
tests/fixtures/figure3_k4.txt:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
