/root/repo/target/debug/deps/ssf-c54c1913ef0bbce3.d: src/bin/ssf.rs

/root/repo/target/debug/deps/ssf-c54c1913ef0bbce3: src/bin/ssf.rs

src/bin/ssf.rs:
