/root/repo/target/debug/deps/prop-bde378f95b2e3bcb.d: /root/repo/clippy.toml crates/obs/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-bde378f95b2e3bcb.rmeta: /root/repo/clippy.toml crates/obs/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/obs/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
