/root/repo/target/debug/deps/ssf_core-94a178837f2c4a69.d: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

/root/repo/target/debug/deps/libssf_core-94a178837f2c4a69.rlib: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

/root/repo/target/debug/deps/libssf_core-94a178837f2c4a69.rmeta: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

crates/ssf-core/src/lib.rs:
crates/ssf-core/src/cache.rs:
crates/ssf-core/src/error.rs:
crates/ssf-core/src/feature.rs:
crates/ssf-core/src/hop.rs:
crates/ssf-core/src/influence.rs:
crates/ssf-core/src/kstructure.rs:
crates/ssf-core/src/palette.rs:
crates/ssf-core/src/pattern.rs:
crates/ssf-core/src/roles.rs:
crates/ssf-core/src/structure.rs:
crates/ssf-core/src/viz.rs:
