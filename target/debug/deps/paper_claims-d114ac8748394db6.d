/root/repo/target/debug/deps/paper_claims-d114ac8748394db6.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-d114ac8748394db6: tests/paper_claims.rs

tests/paper_claims.rs:
