/root/repo/target/debug/deps/proptest-9f4f9f2b16005b49.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9f4f9f2b16005b49.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-9f4f9f2b16005b49.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
