/root/repo/target/debug/deps/models-4473caa393400225.d: /root/repo/clippy.toml crates/bench/benches/models.rs Cargo.toml

/root/repo/target/debug/deps/libmodels-4473caa393400225.rmeta: /root/repo/clippy.toml crates/bench/benches/models.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/benches/models.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
