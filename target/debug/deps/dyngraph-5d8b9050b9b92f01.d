/root/repo/target/debug/deps/dyngraph-5d8b9050b9b92f01.d: /root/repo/clippy.toml crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs Cargo.toml

/root/repo/target/debug/deps/libdyngraph-5d8b9050b9b92f01.rmeta: /root/repo/clippy.toml crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs Cargo.toml

/root/repo/clippy.toml:
crates/dyngraph/src/lib.rs:
crates/dyngraph/src/error.rs:
crates/dyngraph/src/io.rs:
crates/dyngraph/src/metrics.rs:
crates/dyngraph/src/network.rs:
crates/dyngraph/src/static_graph.rs:
crates/dyngraph/src/stats.rs:
crates/dyngraph/src/traversal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::unwrap_used__CLIPPY_HACKERY__-D__CLIPPY_HACKERY__clippy::expect_used__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
