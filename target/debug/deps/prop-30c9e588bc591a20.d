/root/repo/target/debug/deps/prop-30c9e588bc591a20.d: /root/repo/clippy.toml crates/linalg/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-30c9e588bc591a20.rmeta: /root/repo/clippy.toml crates/linalg/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/linalg/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
