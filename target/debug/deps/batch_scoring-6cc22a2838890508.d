/root/repo/target/debug/deps/batch_scoring-6cc22a2838890508.d: /root/repo/clippy.toml crates/bench/src/bin/batch_scoring.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_scoring-6cc22a2838890508.rmeta: /root/repo/clippy.toml crates/bench/src/bin/batch_scoring.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/batch_scoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
