/root/repo/target/debug/deps/ssf-711e06e41a322ecb.d: src/bin/ssf.rs

/root/repo/target/debug/deps/ssf-711e06e41a322ecb: src/bin/ssf.rs

src/bin/ssf.rs:
