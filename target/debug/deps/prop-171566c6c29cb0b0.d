/root/repo/target/debug/deps/prop-171566c6c29cb0b0.d: /root/repo/clippy.toml crates/datasets/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-171566c6c29cb0b0.rmeta: /root/repo/clippy.toml crates/datasets/tests/prop.rs Cargo.toml

/root/repo/clippy.toml:
crates/datasets/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
