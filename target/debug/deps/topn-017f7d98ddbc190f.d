/root/repo/target/debug/deps/topn-017f7d98ddbc190f.d: /root/repo/clippy.toml crates/bench/src/bin/topn.rs Cargo.toml

/root/repo/target/debug/deps/libtopn-017f7d98ddbc190f.rmeta: /root/repo/clippy.toml crates/bench/src/bin/topn.rs Cargo.toml

/root/repo/clippy.toml:
crates/bench/src/bin/topn.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
