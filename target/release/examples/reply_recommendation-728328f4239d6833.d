/root/repo/target/release/examples/reply_recommendation-728328f4239d6833.d: examples/reply_recommendation.rs

/root/repo/target/release/examples/reply_recommendation-728328f4239d6833: examples/reply_recommendation.rs

examples/reply_recommendation.rs:
