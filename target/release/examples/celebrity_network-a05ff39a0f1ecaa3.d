/root/repo/target/release/examples/celebrity_network-a05ff39a0f1ecaa3.d: examples/celebrity_network.rs

/root/repo/target/release/examples/celebrity_network-a05ff39a0f1ecaa3: examples/celebrity_network.rs

examples/celebrity_network.rs:
