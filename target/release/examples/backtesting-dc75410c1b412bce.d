/root/repo/target/release/examples/backtesting-dc75410c1b412bce.d: examples/backtesting.rs

/root/repo/target/release/examples/backtesting-dc75410c1b412bce: examples/backtesting.rs

examples/backtesting.rs:
