/root/repo/target/release/examples/coauthor_prediction-c77073172d6b2fac.d: examples/coauthor_prediction.rs

/root/repo/target/release/examples/coauthor_prediction-c77073172d6b2fac: examples/coauthor_prediction.rs

examples/coauthor_prediction.rs:
