/root/repo/target/release/examples/quickstart-71d69e2ff5550ed7.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-71d69e2ff5550ed7: examples/quickstart.rs

examples/quickstart.rs:
