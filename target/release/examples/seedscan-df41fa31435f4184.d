/root/repo/target/release/examples/seedscan-df41fa31435f4184.d: examples/seedscan.rs

/root/repo/target/release/examples/seedscan-df41fa31435f4184: examples/seedscan.rs

examples/seedscan.rs:
