/root/repo/target/release/examples/dbg_backoff-246a5312dba23028.d: examples/dbg_backoff.rs

/root/repo/target/release/examples/dbg_backoff-246a5312dba23028: examples/dbg_backoff.rs

examples/dbg_backoff.rs:
