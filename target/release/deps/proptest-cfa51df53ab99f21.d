/root/repo/target/release/deps/proptest-cfa51df53ab99f21.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cfa51df53ab99f21.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-cfa51df53ab99f21.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
