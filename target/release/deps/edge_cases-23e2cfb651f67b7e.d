/root/repo/target/release/deps/edge_cases-23e2cfb651f67b7e.d: tests/edge_cases.rs

/root/repo/target/release/deps/edge_cases-23e2cfb651f67b7e: tests/edge_cases.rs

tests/edge_cases.rs:
