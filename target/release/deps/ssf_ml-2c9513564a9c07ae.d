/root/repo/target/release/deps/ssf_ml-2c9513564a9c07ae.d: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/release/deps/libssf_ml-2c9513564a9c07ae.rlib: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/release/deps/libssf_ml-2c9513564a9c07ae.rmeta: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
