/root/repo/target/release/deps/ssf-b11926fa89548e98.d: src/bin/ssf.rs

/root/repo/target/release/deps/ssf-b11926fa89548e98: src/bin/ssf.rs

src/bin/ssf.rs:
