/root/repo/target/release/deps/pipeline-6facbd6b9c8a9f5a.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-6facbd6b9c8a9f5a: tests/pipeline.rs

tests/pipeline.rs:
