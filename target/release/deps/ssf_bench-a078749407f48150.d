/root/repo/target/release/deps/ssf_bench-a078749407f48150.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libssf_bench-a078749407f48150.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libssf_bench-a078749407f48150.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
