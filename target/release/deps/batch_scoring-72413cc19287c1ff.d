/root/repo/target/release/deps/batch_scoring-72413cc19287c1ff.d: crates/bench/src/bin/batch_scoring.rs

/root/repo/target/release/deps/batch_scoring-72413cc19287c1ff: crates/bench/src/bin/batch_scoring.rs

crates/bench/src/bin/batch_scoring.rs:
