/root/repo/target/release/deps/baselines-8b59bdd49cce8a43.d: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/release/deps/libbaselines-8b59bdd49cce8a43.rlib: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/release/deps/libbaselines-8b59bdd49cce8a43.rmeta: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
