/root/repo/target/release/deps/paper_claims-b786b5f51df5a043.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-b786b5f51df5a043: tests/paper_claims.rs

tests/paper_claims.rs:
