/root/repo/target/release/deps/ssf_core-b57e1b8d58006094.d: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

/root/repo/target/release/deps/libssf_core-b57e1b8d58006094.rlib: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

/root/repo/target/release/deps/libssf_core-b57e1b8d58006094.rmeta: crates/ssf-core/src/lib.rs crates/ssf-core/src/cache.rs crates/ssf-core/src/error.rs crates/ssf-core/src/feature.rs crates/ssf-core/src/hop.rs crates/ssf-core/src/influence.rs crates/ssf-core/src/kstructure.rs crates/ssf-core/src/palette.rs crates/ssf-core/src/pattern.rs crates/ssf-core/src/roles.rs crates/ssf-core/src/structure.rs crates/ssf-core/src/viz.rs

crates/ssf-core/src/lib.rs:
crates/ssf-core/src/cache.rs:
crates/ssf-core/src/error.rs:
crates/ssf-core/src/feature.rs:
crates/ssf-core/src/hop.rs:
crates/ssf-core/src/influence.rs:
crates/ssf-core/src/kstructure.rs:
crates/ssf-core/src/palette.rs:
crates/ssf-core/src/pattern.rs:
crates/ssf-core/src/roles.rs:
crates/ssf-core/src/structure.rs:
crates/ssf-core/src/viz.rs:
