/root/repo/target/release/deps/ssf-2caa9137724bf84b.d: src/bin/ssf.rs

/root/repo/target/release/deps/ssf-2caa9137724bf84b: src/bin/ssf.rs

src/bin/ssf.rs:
