/root/repo/target/release/deps/ssf-91786edead5f9a82.d: src/bin/ssf.rs

/root/repo/target/release/deps/ssf-91786edead5f9a82: src/bin/ssf.rs

src/bin/ssf.rs:
