/root/repo/target/release/deps/dyngraph-7c91a77f9d107d57.d: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

/root/repo/target/release/deps/libdyngraph-7c91a77f9d107d57.rlib: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

/root/repo/target/release/deps/libdyngraph-7c91a77f9d107d57.rmeta: crates/dyngraph/src/lib.rs crates/dyngraph/src/error.rs crates/dyngraph/src/io.rs crates/dyngraph/src/metrics.rs crates/dyngraph/src/network.rs crates/dyngraph/src/static_graph.rs crates/dyngraph/src/stats.rs crates/dyngraph/src/traversal.rs

crates/dyngraph/src/lib.rs:
crates/dyngraph/src/error.rs:
crates/dyngraph/src/io.rs:
crates/dyngraph/src/metrics.rs:
crates/dyngraph/src/network.rs:
crates/dyngraph/src/static_graph.rs:
crates/dyngraph/src/stats.rs:
crates/dyngraph/src/traversal.rs:
