/root/repo/target/release/deps/linalg-e2a78035623d6748.d: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/liblinalg-e2a78035623d6748.rlib: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

/root/repo/target/release/deps/liblinalg-e2a78035623d6748.rmeta: crates/linalg/src/lib.rs crates/linalg/src/matrix.rs crates/linalg/src/solve.rs crates/linalg/src/vector.rs

crates/linalg/src/lib.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/solve.rs:
crates/linalg/src/vector.rs:
