/root/repo/target/release/deps/batch_scoring-77e7264028dbecde.d: crates/bench/src/bin/batch_scoring.rs

/root/repo/target/release/deps/batch_scoring-77e7264028dbecde: crates/bench/src/bin/batch_scoring.rs

crates/bench/src/bin/batch_scoring.rs:
