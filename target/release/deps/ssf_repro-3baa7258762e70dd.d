/root/repo/target/release/deps/ssf_repro-3baa7258762e70dd.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/release/deps/libssf_repro-3baa7258762e70dd.rlib: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/release/deps/libssf_repro-3baa7258762e70dd.rmeta: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
