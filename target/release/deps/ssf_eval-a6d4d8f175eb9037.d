/root/repo/target/release/deps/ssf_eval-a6d4d8f175eb9037.d: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libssf_eval-a6d4d8f175eb9037.rlib: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

/root/repo/target/release/deps/libssf_eval-a6d4d8f175eb9037.rmeta: crates/eval/src/lib.rs crates/eval/src/backtest.rs crates/eval/src/metrics.rs crates/eval/src/report.rs crates/eval/src/runner.rs crates/eval/src/split.rs

crates/eval/src/lib.rs:
crates/eval/src/backtest.rs:
crates/eval/src/metrics.rs:
crates/eval/src/report.rs:
crates/eval/src/runner.rs:
crates/eval/src/split.rs:
