/root/repo/target/release/deps/concurrent_serving-be9113ce61902c52.d: crates/bench/src/bin/concurrent_serving.rs

/root/repo/target/release/deps/concurrent_serving-be9113ce61902c52: crates/bench/src/bin/concurrent_serving.rs

crates/bench/src/bin/concurrent_serving.rs:
