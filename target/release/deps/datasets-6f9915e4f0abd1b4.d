/root/repo/target/release/deps/datasets-6f9915e4f0abd1b4.d: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/release/deps/libdatasets-6f9915e4f0abd1b4.rlib: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

/root/repo/target/release/deps/libdatasets-6f9915e4f0abd1b4.rmeta: crates/datasets/src/lib.rs crates/datasets/src/generators.rs crates/datasets/src/io.rs crates/datasets/src/spec.rs

crates/datasets/src/lib.rs:
crates/datasets/src/generators.rs:
crates/datasets/src/io.rs:
crates/datasets/src/spec.rs:
