/root/repo/target/release/deps/ssf_ml-9e9cd4ce992695a6.d: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/release/deps/libssf_ml-9e9cd4ce992695a6.rlib: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

/root/repo/target/release/deps/libssf_ml-9e9cd4ce992695a6.rmeta: crates/ml/src/lib.rs crates/ml/src/error.rs crates/ml/src/linreg.rs crates/ml/src/nn.rs crates/ml/src/persist.rs crates/ml/src/scaler.rs

crates/ml/src/lib.rs:
crates/ml/src/error.rs:
crates/ml/src/linreg.rs:
crates/ml/src/nn.rs:
crates/ml/src/persist.rs:
crates/ml/src/scaler.rs:
