/root/repo/target/release/deps/ssf_bench-f69f2c1ab188f99a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libssf_bench-f69f2c1ab188f99a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libssf_bench-f69f2c1ab188f99a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
