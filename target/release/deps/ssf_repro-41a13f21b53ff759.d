/root/repo/target/release/deps/ssf_repro-41a13f21b53ff759.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/release/deps/libssf_repro-41a13f21b53ff759.rlib: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

/root/repo/target/release/deps/libssf_repro-41a13f21b53ff759.rmeta: src/lib.rs src/error.rs src/methods.rs src/model.rs src/prelude.rs src/serve.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/prelude.rs:
src/serve.rs:
src/stream.rs:
