/root/repo/target/release/deps/ssf_repro-c0afce0b4968d570.d: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

/root/repo/target/release/deps/ssf_repro-c0afce0b4968d570: src/lib.rs src/error.rs src/methods.rs src/model.rs src/stream.rs

src/lib.rs:
src/error.rs:
src/methods.rs:
src/model.rs:
src/stream.rs:
