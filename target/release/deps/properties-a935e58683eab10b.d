/root/repo/target/release/deps/properties-a935e58683eab10b.d: tests/properties.rs

/root/repo/target/release/deps/properties-a935e58683eab10b: tests/properties.rs

tests/properties.rs:
