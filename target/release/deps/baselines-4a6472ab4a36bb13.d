/root/repo/target/release/deps/baselines-4a6472ab4a36bb13.d: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/release/deps/libbaselines-4a6472ab4a36bb13.rlib: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

/root/repo/target/release/deps/libbaselines-4a6472ab4a36bb13.rmeta: crates/baselines/src/lib.rs crates/baselines/src/katz.rs crates/baselines/src/local.rs crates/baselines/src/lp.rs crates/baselines/src/nmf.rs crates/baselines/src/rw.rs crates/baselines/src/tmf.rs crates/baselines/src/wlf.rs

crates/baselines/src/lib.rs:
crates/baselines/src/katz.rs:
crates/baselines/src/local.rs:
crates/baselines/src/lp.rs:
crates/baselines/src/nmf.rs:
crates/baselines/src/rw.rs:
crates/baselines/src/tmf.rs:
crates/baselines/src/wlf.rs:
