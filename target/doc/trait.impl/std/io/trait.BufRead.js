(function() {
    const implementors = Object.fromEntries([["dyngraph",[["impl&lt;R: <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/std/io/trait.BufRead.html\" title=\"trait std::io::BufRead\">BufRead</a>&gt; <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/std/io/trait.BufRead.html\" title=\"trait std::io::BufRead\">BufRead</a> for <a class=\"struct\" href=\"dyngraph/io/struct.FaultyReader.html\" title=\"struct dyngraph::io::FaultyReader\">FaultyReader</a>&lt;R&gt;",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[439]}