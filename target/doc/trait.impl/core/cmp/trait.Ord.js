(function() {
    const implementors = Object.fromEntries([["dyngraph",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/cmp/trait.Ord.html\" title=\"trait core::cmp::Ord\">Ord</a> for <a class=\"struct\" href=\"dyngraph/struct.Link.html\" title=\"struct dyngraph::Link\">Link</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[249]}