(function() {
    const implementors = Object.fromEntries([["dyngraph",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/iter/traits/collect/trait.FromIterator.html\" title=\"trait core::iter::traits::collect::FromIterator\">FromIterator</a>&lt;(<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u32.html\">u32</a>, <a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u32.html\">u32</a>, <a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u32.html\">u32</a>)&gt; for <a class=\"struct\" href=\"dyngraph/struct.DynamicNetwork.html\" title=\"struct dyngraph::DynamicNetwork\">DynamicNetwork</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[639]}