//! The paper's Figure 1 celebrity argument, step by step.
//!
//! Builds the Twitter-like comment network where celebrities A and B both
//! interact with celebrity C while fans X and Y merely follow C, and shows
//! why only the structure-subgraph view can tell the pairs apart.
//!
//! Run: `cargo run --release --example celebrity_network`

use ssf_repro::baselines::local;
use ssf_repro::dyngraph::DynamicNetwork;
use ssf_repro::ssf_core::{
    HopSubgraph, PatternSignature, SsfConfig, SsfExtractor, StructureSubgraph,
};

fn main() {
    let (a, b, c, x, y) = (0u32, 1, 2, 3, 4);
    let mut g = DynamicNetwork::new();
    // Celebrities comment on each other repeatedly and recently.
    for t in [6, 7, 8, 9] {
        g.add_link(a, c, t);
        g.add_link(b, c, t);
    }
    // Fans X, Y commented on C a few times, earlier.
    for t in [1, 2, 3, 4] {
        g.add_link(x, c, t);
        g.add_link(y, c, t);
    }
    // Fan crowds around each celebrity.
    let mut fan = 5u32;
    for celeb in [a, b, c] {
        for _ in 0..8 {
            g.add_link(celeb, fan, 1 + fan % 9);
            fan += 1;
        }
    }
    let stat = g.to_static();

    println!("Will A-B emerge? Will X-Y? The local indices cannot tell:");
    for (name, f) in local::ALL {
        println!(
            "  {:<5} A-B = {:>7.3}   X-Y = {:>7.3}",
            name,
            f(&stat, a, b),
            f(&stat, x, y)
        );
    }

    // Walk the SSF pipeline for A-B.
    println!("\nSSF pipeline for A-B:");
    let hop = HopSubgraph::extract(&g, a, b, 1);
    println!(
        "  1-hop subgraph: {} nodes, {} links",
        hop.node_count(),
        hop.link_count()
    );
    let s = StructureSubgraph::combine(&hop);
    println!(
        "  structure subgraph: {} structure nodes (fans merged)",
        s.node_count()
    );
    for sn in 0..s.node_count() {
        let members: Vec<u32> =
            s.members(sn).iter().map(|&i| hop.global_id(i)).collect();
        println!(
            "    N{} = {:?} (distance {})",
            sn + 1,
            members,
            s.distance(sn)
        );
    }

    let ex = SsfExtractor::new(SsfConfig::new(6));
    let fab = ex.extract(&g, a, b, 10);
    let fxy = ex.extract(&g, x, y, 10);
    println!("\nSSF(A-B) != SSF(X-Y): {}", fab.values() != fxy.values());

    let (ks_ab, _, _) = ex.k_structure(&g, a, b);
    let (ks_xy, _, _) = ex.k_structure(&g, x, y);
    println!("\nK-structure pattern around A-B:");
    println!("{}", PatternSignature::of(&ks_ab));
    println!("K-structure pattern around X-Y:");
    println!("{}", PatternSignature::of(&ks_xy));
}
