//! Co-authorship prediction — the paper's Figure 6(b) scenario.
//!
//! Generates a community-structured collaboration network (matched to the
//! paper's DBLP subset statistics, scaled down), evaluates the SSF methods
//! against classical baselines, and mines the most frequent K-structure
//! pattern to show the dense "research group" motif.
//!
//! Run: `cargo run --release --example coauthor_prediction`

// Example code: aborting on error is the right UX for a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ssf_repro::datasets::DatasetSpec;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_core::{PatternMiner, SsfConfig, SsfExtractor};
use ssf_repro::ssf_eval::{Split, SplitConfig};

fn main() {
    let spec = DatasetSpec::coauthor().scaled(0.4);
    let g = spec.generate(42);
    println!("generated {spec}");

    let split = Split::with_min_positives(
        &g,
        &SplitConfig {
            seed: 42,
            max_positives: Some(200),
            ..SplitConfig::default()
        },
        80,
    )
    .expect("co-author network splits");

    let opts = MethodOptions::default();
    println!("\nwho will co-author next? (AUC / F1 on held-out links)");
    for method in [
        Method::Cn,
        Method::Aa,
        Method::Katz,
        Method::Wlnm,
        Method::Ssflr,
        Method::Ssfnm,
    ] {
        let r = method.evaluate(&split, &opts);
        println!("  {:<6} {:.3} / {:.3}", r.name, r.auc, r.f1);
    }

    // Mine the dominant structural pattern around existing links (Fig. 6b).
    let mut pairs: Vec<(u32, u32)> =
        g.to_static().edges().map(|(u, v, _)| (u, v)).collect();
    pairs.shuffle(&mut StdRng::seed_from_u64(1));
    pairs.truncate(300);
    let ex = SsfExtractor::new(SsfConfig::new(10));
    let mut miner = PatternMiner::new();
    for &(u, v) in &pairs {
        let (ks, _, _) = ex.k_structure(&g, u, v);
        miner.observe(&ks);
    }
    let (top, count) = miner.most_frequent().expect("patterns observed");
    println!(
        "\nmost frequent K-structure pattern ({count}/{} links, {} structure links):",
        miner.observations(),
        top.link_count()
    );
    println!("{top}");
}
