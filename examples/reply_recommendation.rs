//! Interaction recommendation on a reply network — the paper's motivating
//! application ("personalized recommendation in social networks").
//!
//! Generates a Digg-like hub-dominated reply network, trains SSFNM on the
//! history, and prints the top-5 recommended new interaction partners for a
//! handful of users, ranked by the model's link score.
//!
//! Run: `cargo run --release --example reply_recommendation`

// Example code: aborting on error is the right UX for a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::dyngraph::NodeId;
use ssf_repro::linalg::Matrix;
use ssf_repro::ssf_core::{SsfConfig, SsfExtractor};
use ssf_repro::ssf_eval::{Split, SplitConfig};
use ssf_repro::ssf_ml::{MlpConfig, NeuralMachine, StandardScaler};

fn main() {
    let spec = DatasetSpec::digg().scaled(0.2);
    let g = spec.generate(11);
    println!("generated {spec}");

    let split = Split::with_min_positives(
        &g,
        &SplitConfig {
            seed: 11,
            max_positives: Some(250),
            ..SplitConfig::default()
        },
        80,
    )
    .expect("reply network splits");
    let present = split.history.max_timestamp().expect("history") + 1;

    // Train SSFNM on the split's training samples.
    let extractor = SsfExtractor::new(SsfConfig::new(10));
    let features = |samples: &[ssf_repro::ssf_eval::LinkSample]| -> Matrix {
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| {
                extractor
                    .extract(&split.history, s.u, s.v, present)
                    .into_values()
            })
            .collect();
        Matrix::from_fn(rows.len(), rows[0].len(), |i, j| rows[i][j].ln_1p())
    };
    let x_train = features(&split.train);
    let (x_train, scaler) = {
        let s = StandardScaler::fit(&x_train);
        (s.transform(&x_train), s)
    };
    let labels: Vec<usize> =
        split.train.iter().map(|s| usize::from(s.label)).collect();
    let model = NeuralMachine::train(
        &x_train,
        &labels,
        MlpConfig {
            epochs: 150,
            ..MlpConfig::default()
        },
    );
    println!("trained SSFNM on {} samples", split.train.len());

    // Recommend: for a few active users, rank non-connected candidates.
    let stat = split.history.to_static();
    let mut users: Vec<NodeId> = (0..stat.node_count() as NodeId).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(stat.degree(u)));
    for &user in users.iter().skip(5).take(3) {
        let mut scored: Vec<(NodeId, f64)> = Vec::new();
        for cand in 0..stat.node_count() as NodeId {
            if cand == user || stat.has_edge(user, cand) {
                continue;
            }
            // Score only plausibly-near candidates to keep the demo fast.
            if stat.common_neighbors(user, cand).is_empty() {
                continue;
            }
            let mut f = extractor
                .extract(&split.history, user, cand, present)
                .into_values();
            for v in &mut f {
                *v = v.ln_1p();
            }
            scaler.transform_row(&mut f);
            scored.push((cand, model.score(&f)));
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        let top: Vec<String> = scored
            .iter()
            .take(5)
            .map(|(c, s)| format!("{c} ({s:.2})"))
            .collect();
        println!(
            "user {user:>4} (degree {:>3}) → {}",
            stat.degree(user),
            top.join(", ")
        );
    }
}
