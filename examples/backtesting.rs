//! Temporal backtesting — evaluating a predictor the way it would be
//! deployed: at many points along the stream, not just the final tick.
//!
//! Slides the prediction time backwards through a generated Prosper-like
//! loan network and reports mean ± std AUC per method, plus the effect of
//! history-augmented training on the supervised methods.
//!
//! Run: `cargo run --release --example backtesting`

// Example code: aborting on error is the right UX for a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ssf_repro::datasets::DatasetSpec;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_eval::{
    aggregate, backtest_splits, BacktestConfig, SplitConfig,
};

fn main() {
    let spec = DatasetSpec::prosper().scaled(0.35);
    let g = spec.generate(5);
    println!("generated {spec}");

    let config = BacktestConfig {
        split: SplitConfig {
            seed: 5,
            max_positives: Some(150),
            ..SplitConfig::default()
        },
        folds: 5,
        stride: 3,
        min_positives: 40,
    };
    let splits = backtest_splits(&g, &config).expect("backtest folds");
    println!(
        "backtesting over {} folds (prediction times {:?})",
        splits.len(),
        splits.iter().map(|s| s.l_t).collect::<Vec<_>>()
    );

    let opts = MethodOptions::default();
    println!("\n{:<8} {:>14} {:>8}", "method", "AUC mean±std", "F1 mean");
    for method in [Method::Cn, Method::Katz, Method::Ssflr, Method::Ssfnm] {
        let folds: Vec<_> = splits
            .iter()
            .enumerate()
            .map(|(i, split)| {
                // Each fold trains on the folds *older* than itself.
                method.evaluate_augmented(split, &splits[i + 1..], &opts)
            })
            .collect();
        let agg = aggregate(folds);
        println!(
            "{:<8} {:>7.3} ±{:.3} {:>8.3}",
            agg.name, agg.mean_auc, agg.std_auc, agg.mean_f1
        );
    }
}
