//! Quickstart: build a small dynamic network, extract a Structure Subgraph
//! Feature, and train the two SSF-based predictors on a toy split.
//!
//! Run: `cargo run --release --example quickstart`

// Example code: aborting on error is the right UX for a demo binary.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ssf_repro::dyngraph::DynamicNetwork;
use ssf_repro::methods::{Method, MethodOptions};
use ssf_repro::ssf_core::{SsfConfig, SsfExtractor};
use ssf_repro::ssf_eval::{Split, SplitConfig};

fn main() {
    // A toy collaboration network: two groups that densify over time, with
    // fresh intra-group links at the final tick (t = 10).
    let mut g = DynamicNetwork::new();
    let groups: [&[u32]; 2] = [&[0, 1, 2, 3, 4, 5], &[6, 7, 8, 9, 10, 11]];
    let mut t = 1;
    for round in 0..2 {
        for group in groups {
            for (i, &u) in group.iter().enumerate() {
                let v = group[(i + 1 + round) % group.len()];
                g.add_link(u, v, t.min(9));
            }
        }
        t += 3;
    }
    // Bridges between the groups (sparse).
    g.add_link(0, 6, 3);
    g.add_link(3, 9, 5);
    // Fresh intra-group links to predict at t = 10 (the "diagonals" the
    // two densification rounds have not created yet).
    for (u, v) in [(0, 3), (1, 4), (2, 5), (6, 9), (7, 10), (8, 11)] {
        g.add_link(u, v, 10);
    }

    // 1. Extract one SSF vector by hand.
    let extractor = SsfExtractor::new(SsfConfig::new(6));
    let feature = extractor.extract(&g, 0, 4, 10);
    println!(
        "SSF(0-4): K={} dims={}",
        feature.k(),
        feature.values().len()
    );
    println!(
        "  radius h={} |V_S|={}",
        feature.radius(),
        feature.structure_node_count()
    );

    // 2. Run the full evaluation protocol (70/30 split at the last tick).
    let split =
        Split::new(&g, &SplitConfig::default()).expect("toy network splits");
    println!(
        "split: {} train / {} test samples, predicting t={}",
        split.train.len(),
        split.test.len(),
        split.l_t
    );
    let opts = MethodOptions::default();
    for method in [Method::Cn, Method::Ssflr, Method::Ssfnm] {
        let r = method.evaluate(&split, &opts);
        println!("{:<6} AUC={:.3} F1={:.3}", r.name, r.auc, r.f1);
    }
}
