//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendors the
//! subset of proptest's API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` / `boxed`,
//! range and tuple strategies, `prop::collection::vec`, `Just`, `any`,
//! the `proptest!` / `prop_oneof!` macros and the `prop_assert*` family.
//!
//! Differences from upstream, deliberately accepted:
//! * **No shrinking** — a failing case reports the case index and seed;
//!   inputs are re-derivable by rerunning the deterministic generator.
//! * **Deterministic seeding** — each test derives its stream from the
//!   test name, so failures reproduce across runs and machines.
//! * **`prop_assume!` skips** the case instead of resampling it.

// API-compatibility shim: mirror the upstream names verbatim, even where
// clippy would restyle them.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// `gen_value` returns `None` when a filter rejected the draw; the
    /// runner retries rejected draws a bounded number of times.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value, or `None` on filter rejection.
        fn gen_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`; `reason` is reported when the
        /// rejection budget is exhausted.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
            (**self).gen_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.gen_value(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)]
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            self.inner.gen_value(rng).filter(|v| (self.pred)(v))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> Option<V> {
            let i = rng.below(self.options.len());
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> Option<$t> {
                    debug_assert!(self.start < self.end);
                    let span = (self.end as u128) - (self.start as u128);
                    Some(self.start + ((rng.next() as u128 * span) >> 64) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> Option<f64> {
            Some(self.start + (self.end - self.start) * rng.unit_f64())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn gen_value(
                    &self,
                    rng: &mut TestRng,
                ) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.gen_value(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy (returned by [`any`]).
        fn arbitrary() -> ArbitraryStrategy<Self>;
    }

    /// Marker strategy for [`Arbitrary`] types.
    pub struct ArbitraryStrategy<T> {
        gen: fn(&mut TestRng) -> T,
    }

    impl<T> Strategy for ArbitraryStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> Option<T> {
            Some((self.gen)(rng))
        }
    }

    /// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
        T::arbitrary()
    }

    macro_rules! arbitrary_impl {
        ($t:ty, $gen:expr) => {
            impl Arbitrary for $t {
                fn arbitrary() -> ArbitraryStrategy<$t> {
                    ArbitraryStrategy { gen: $gen }
                }
            }
        };
    }

    arbitrary_impl!(bool, |rng| rng.next() & 1 == 1);
    arbitrary_impl!(u8, |rng| rng.next() as u8);
    arbitrary_impl!(u16, |rng| rng.next() as u16);
    arbitrary_impl!(u32, |rng| rng.next() as u32);
    arbitrary_impl!(u64, |rng| rng.next());
    arbitrary_impl!(usize, |rng| rng.next() as usize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Vector length specification: an exact `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for ::std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(
        element: S,
        len: L,
    ) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.pick(rng);
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                // Retry per element so sparse filters inside `vec` don't
                // reject whole collections.
                let v = (0..100).find_map(|_| self.element.gen_value(rng))?;
                out.push(v);
            }
            Some(out)
        }
    }
}

/// `prop::collection` / future `prop::*` namespaces, as re-exported by the
/// upstream prelude.
pub mod prop {
    pub use super::collection;
}

pub mod test_runner {
    use super::TestRng;

    /// Runner configuration (`cases` is the only knob the workspace uses).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property assertion.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }

        /// The failure message.
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    /// Per-test driver: owns the RNG stream and the case budget.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner whose stream is derived from the test name, so
        /// every run draws the same inputs.
        pub fn new(config: Config, name: &'static str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner {
                rng: TestRng::seed(seed),
                cases: config.cases,
                name,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Draws one input from `strategy`, retrying bounded rejections.
        pub fn generate<S: super::strategy::Strategy>(
            &mut self,
            strategy: &S,
        ) -> S::Value {
            for _ in 0..1000 {
                if let Some(v) = strategy.gen_value(&mut self.rng) {
                    return v;
                }
            }
            panic!("{}: strategy rejected 1000 consecutive draws", self.name);
        }
    }
}

/// The deterministic RNG behind all strategies.
pub struct TestRng(StdRng);

impl TestRng {
    fn seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next raw 64-bit draw.
    pub fn next(&mut self) -> u64 {
        self.0.gen_range(0..u64::MAX)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }

    /// Uniform index below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.0.gen_range(0..n)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest,
    };
}

/// Property-test entry point; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = {
                    let strategy = $strat;
                    runner.generate(&strategy)
                };)+
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        runner.cases(),
                        e.message(),
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), a, b
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{}\n  both: {:?}",
            format!($($fmt)+), a
        );
    }};
}

/// Skips the current case when the assumption fails (upstream resamples;
/// this stand-in counts the case as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_draw_in_bounds() {
        let mut runner = crate::test_runner::TestRunner::new(
            ProptestConfig::with_cases(10),
            "strategies_draw_in_bounds",
        );
        for _ in 0..200 {
            let x = runner.generate(&(3..9u32));
            assert!((3..9).contains(&x));
            let (a, b) = runner.generate(&(0..5u32, -1.0..1.0f64));
            assert!(a < 5 && (-1.0..1.0).contains(&b));
            let v = runner.generate(&prop::collection::vec(0..100usize, 2..6));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 100));
            let filtered = runner
                .generate(&(0..10u32).prop_filter("even", |n| n % 2 == 0));
            assert_eq!(filtered % 2, 0);
            let mapped =
                runner.generate(&(0..10u32).prop_map(|n| n as f64 + 0.5));
            assert!(mapped.fract() == 0.5);
            let chosen = runner
                .generate(&prop_oneof![Just(1u32), (5..7u32).prop_map(|x| x),]);
            assert!(chosen == 1 || (5..7).contains(&chosen));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The macro pipeline itself: args, filters, asserts, assume.
        #[test]
        fn macro_roundtrip(
            xs in prop::collection::vec(0..50u32, 1..10),
            flag in any::<bool>(),
        ) {
            prop_assume!(!xs.is_empty());
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(doubled.iter().all(|d| d % 2 == 0), "parity");
            if flag {
                prop_assert_ne!(doubled.len(), 0);
            }
        }
    }
}
