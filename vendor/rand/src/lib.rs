//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of rand 0.8's API it actually uses: a seedable
//! [`rngs::StdRng`], the [`Rng`] extension trait with `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for the
//! synthetic-data and sampling workloads here, but *not* the same stream
//! as upstream `StdRng` (ChaCha12), so seeds are only reproducible within
//! this workspace. No crypto claims whatsoever.

// API-compatibility shim: mirror the upstream names verbatim, even where
// clippy would restyle them.
#![allow(clippy::all)]

use std::ops::Range;

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but keep the guard local.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result =
                s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Multiply-shift keeps the draw uniform enough for
                // simulation purposes without rejection loops.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }
    )*};
}

int_sample_range!(u32, u64, usize, u8, u16);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Extension trait mirroring the `rand::Rng` surface the workspace uses.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` feature used here.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let differs = (0..100)
            .any(|_| a.gen_range(0..1000u32) != c.gen_range(0..1000u32));
        assert!(differs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(5..17u32);
            assert!((5..17).contains(&x));
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
