//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny subset of criterion's API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup plus a
//! fixed number of timed iterations and prints mean time per iteration —
//! enough to eyeball regressions, with none of upstream's statistics.

// API-compatibility shim: mirror the upstream names verbatim, even where
// clippy would restyle them.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter itself.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u32,
    last_nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f` over warmup + measured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup / fault-in
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_nanos_per_iter =
            start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn report(label: &str, nanos: f64) {
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("bench {label:<40} {value:10.2} {unit}/iter");
}

/// Benchmark registry and driver.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--test` (as passed by `cargo test --benches`) keeps runs short.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            last_nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.last_nanos_per_iter);
        self
    }

    /// Opens a named group of parameterized benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    iters: u32,
}

impl BenchmarkGroup {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: self.iters,
            last_nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.last_nanos_per_iter);
        self
    }

    /// Finishes the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("param");
        for n in [10u64, 100] {
            group.bench_with_input(
                BenchmarkId::from_parameter(n),
                &n,
                |b, &n| b.iter(|| (0..n).product::<u64>()),
            );
        }
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
    }
}
