//! Compact CSR storage for [`FrozenGraph`](crate::FrozenGraph).
//!
//! The wide representation spends two `usize` offset arrays and a raw
//! `u32` pair per incident slot. At million-node scale that layout is
//! dominated by redundancy: offsets never exceed `2 * link_count`
//! (which fits `u32`), an incident neighbor is always one of the node's
//! few distinct neighbors, and timestamps within a row are strongly
//! correlated. The compact layout exploits all three:
//!
//! * all four offset arrays are `u32`;
//! * the per-slot `(neighbor, timestamp)` pair is packed into a shared
//!   byte arena as two varints — the neighbor as an *index into the
//!   node's sorted distinct-neighbor row* (usually 1 byte) and the
//!   timestamp as a zigzag delta against the previous slot of the same
//!   row (usually 1-3 bytes);
//! * the distinct-neighbor rows stay raw `u32` slices, because
//!   [`GraphView::distinct_neighbors`](crate::GraphView::distinct_neighbors)
//!   returns `&[NodeId]` and BFS hot loops iterate it directly.
//!
//! Everything lives behind one `Arc`, so cloning a compact graph is a
//! single refcount bump. Decoding preserves insertion order bit for
//! bit; the property tests in `tests/frozen_prop.rs` hold the two
//! representations to full [`GraphView`](crate::GraphView) equality.
//!
//! Every count that lands in a `u32` offset array is checked against
//! [`CompactLimits`] at build time and reported as
//! [`GraphError::TooLarge`] — values are never truncated.

use crate::view::GraphView;
use crate::{GraphError, NodeId, Timestamp};

/// The arrays of a compact graph, shared behind one
/// `Arc<CompactData>`.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct CompactData {
    /// Incident-slot row bounds, `node_count + 1` entries: node `u`
    /// holds slots `slot_offsets[u]..slot_offsets[u + 1]`.
    pub slot_offsets: Box<[u32]>,
    /// Arena byte bounds per node, `node_count + 1` entries.
    pub byte_offsets: Box<[u32]>,
    /// Packed incident slots: per slot a varint local neighbor index
    /// followed by a zigzag-varint timestamp delta.
    pub arena: Box<[u8]>,
    /// Distinct-neighbor row bounds, `node_count + 1` entries.
    pub nbr_offsets: Box<[u32]>,
    /// Flat distinct neighbors, sorted ascending per row.
    pub nbr_ids: Box<[NodeId]>,
}

/// Ceilings on every count a compact graph stores in a `u32`. The
/// default is the full `u32` range; tests inject tiny limits to prove
/// overflow surfaces as a typed error instead of truncation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompactLimits {
    /// Largest admissible value for any `u32`-stored count (node count
    /// + 1, slot count, distinct-slot count, arena byte length).
    pub max_index: u64,
}

impl Default for CompactLimits {
    fn default() -> Self {
        CompactLimits {
            max_index: u32::MAX as u64,
        }
    }
}

fn too_large(what: &'static str, value: u64, limit: u64) -> GraphError {
    GraphError::TooLarge { what, value, limit }
}

/// Appends `x` as an LEB128 varint.
fn push_varint(buf: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint at `*pos`, advancing it. `None` on
/// truncated or oversized input.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return None;
        }
        x |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
    }
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

impl CompactData {
    /// Packs any [`GraphView`] into the compact layout, checking every
    /// `u32`-stored count against `limits`.
    pub fn build<G: GraphView + ?Sized>(
        g: &G,
        limits: &CompactLimits,
    ) -> Result<CompactData, GraphError> {
        let n = g.node_count();
        let limit = limits.max_index;
        if (n as u64).saturating_add(1) > limit {
            return Err(too_large("node count + 1", n as u64 + 1, limit));
        }
        let slots = 2 * g.link_count() as u64;
        if slots > limit {
            return Err(too_large("incident slot count", slots, limit));
        }
        let mut slot_offsets = Vec::with_capacity(n + 1);
        let mut byte_offsets = Vec::with_capacity(n + 1);
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        slot_offsets.push(0u32);
        byte_offsets.push(0u32);
        nbr_offsets.push(0u32);
        let mut arena: Vec<u8> = Vec::new();
        let mut nbr_ids: Vec<NodeId> = Vec::new();
        let mut slot_count: u64 = 0;
        for u in 0..n as NodeId {
            let distinct = g.distinct_neighbors(u);
            nbr_ids.extend_from_slice(distinct);
            if nbr_ids.len() as u64 > limit {
                return Err(too_large(
                    "distinct slot count",
                    nbr_ids.len() as u64,
                    limit,
                ));
            }
            let mut prev: i64 = 0;
            for (v, t) in g.incident_links(u) {
                let idx = match distinct.binary_search(&v) {
                    Ok(i) => i,
                    Err(_) => {
                        return Err(GraphError::InvalidCsr {
                            detail: format!(
                                "incident neighbor {v} of node {u} missing \
                                 from its distinct row"
                            ),
                        })
                    }
                };
                push_varint(&mut arena, idx as u64);
                push_varint(&mut arena, zigzag(i64::from(t) - prev));
                prev = i64::from(t);
                slot_count += 1;
            }
            if arena.len() as u64 > limit {
                return Err(too_large(
                    "arena byte length",
                    arena.len() as u64,
                    limit,
                ));
            }
            slot_offsets.push(slot_count as u32);
            byte_offsets.push(arena.len() as u32);
            nbr_offsets.push(nbr_ids.len() as u32);
        }
        if slot_count != slots {
            return Err(GraphError::InvalidCsr {
                detail: format!(
                    "incident slots {slot_count} != 2 * link count {}",
                    g.link_count()
                ),
            });
        }
        Ok(CompactData {
            slot_offsets: slot_offsets.into_boxed_slice(),
            byte_offsets: byte_offsets.into_boxed_slice(),
            arena: arena.into_boxed_slice(),
            nbr_offsets: nbr_offsets.into_boxed_slice(),
            nbr_ids: nbr_ids.into_boxed_slice(),
        })
    }

    pub fn node_count(&self) -> usize {
        self.slot_offsets.len() - 1
    }

    /// Distinct-neighbor row of `u` (sorted ascending).
    pub fn distinct_row(&self, u: usize) -> &[NodeId] {
        let lo = self.nbr_offsets[u] as usize;
        let hi = self.nbr_offsets[u + 1] as usize;
        &self.nbr_ids[lo..hi]
    }

    /// Incident-slot count of `u`.
    pub fn slot_count(&self, u: usize) -> usize {
        (self.slot_offsets[u + 1] - self.slot_offsets[u]) as usize
    }

    /// Decoding iterator over `u`'s packed incident row.
    pub fn packed_row(&self, u: usize) -> PackedLinks<'_> {
        let lo = self.byte_offsets[u] as usize;
        let hi = self.byte_offsets[u + 1] as usize;
        PackedLinks {
            row: self.distinct_row(u),
            bytes: &self.arena[lo..hi],
            pos: 0,
            remaining: self.slot_count(u),
            prev: 0,
        }
    }

    /// Logical heap footprint in bytes (lengths, not capacities).
    pub fn heap_bytes(&self) -> usize {
        self.slot_offsets.len() * 4
            + self.byte_offsets.len() * 4
            + self.arena.len()
            + self.nbr_offsets.len() * 4
            + self.nbr_ids.len() * 4
    }

    /// Structural validation of untrusted arrays (the deserialization
    /// path): offset arrays agree, start at 0, are monotone and close
    /// over their flat arrays; every packed row decodes to exactly its
    /// slot count with in-range local indices and timestamps, consuming
    /// exactly its byte range. Semantic invariants (sortedness,
    /// symmetry, bounds) are checked afterwards by expanding to
    /// [`crate::FrozenGraphParts`].
    pub fn validate_structure(
        &self,
        num_links: usize,
    ) -> Result<(), GraphError> {
        let fail = |detail: String| GraphError::InvalidCsr { detail };
        let n1 = self.slot_offsets.len();
        if n1 == 0
            || self.byte_offsets.len() != n1
            || self.nbr_offsets.len() != n1
        {
            return Err(fail(format!(
                "compact offset arrays disagree: {} / {} / {}",
                n1,
                self.byte_offsets.len(),
                self.nbr_offsets.len()
            )));
        }
        for (name, offs, flat_len) in [
            ("slot_offsets", &self.slot_offsets, 2 * num_links),
            ("byte_offsets", &self.byte_offsets, self.arena.len()),
            ("nbr_offsets", &self.nbr_offsets, self.nbr_ids.len()),
        ] {
            if offs.first() != Some(&0) {
                return Err(fail(format!("compact {name} must start at 0")));
            }
            if offs.windows(2).any(|w| w[0] > w[1]) {
                return Err(fail(format!("compact {name} not monotone")));
            }
            if offs.last().copied().map(|x| x as usize) != Some(flat_len) {
                return Err(fail(format!(
                    "compact {name} end {:?} != flat length {flat_len}",
                    offs.last()
                )));
            }
        }
        for u in 0..n1 - 1 {
            let row = self.distinct_row(u);
            let lo = self.byte_offsets[u] as usize;
            let hi = self.byte_offsets[u + 1] as usize;
            let bytes = &self.arena[lo..hi];
            let mut pos = 0usize;
            let mut prev: i64 = 0;
            for _ in 0..self.slot_count(u) {
                let idx = read_varint(bytes, &mut pos)
                    .ok_or_else(|| fail(format!("truncated row {u}")))?;
                if idx as usize >= row.len() {
                    return Err(fail(format!(
                        "row {u}: local index {idx} out of range {}",
                        row.len()
                    )));
                }
                let delta = read_varint(bytes, &mut pos)
                    .ok_or_else(|| fail(format!("truncated row {u}")))?;
                let t = prev + unzigzag(delta);
                if t < 0 || t > i64::from(u32::MAX) {
                    return Err(fail(format!(
                        "row {u}: decoded timestamp {t} outside u32"
                    )));
                }
                prev = t;
            }
            if pos != bytes.len() {
                return Err(fail(format!(
                    "row {u}: {} trailing arena bytes",
                    bytes.len() - pos
                )));
            }
        }
        Ok(())
    }
}

/// Iterator decoding one packed incident row on the fly, yielding
/// `(neighbor, timestamp)` in insertion order.
#[derive(Debug, Clone)]
pub struct PackedLinks<'a> {
    row: &'a [NodeId],
    bytes: &'a [u8],
    pos: usize,
    remaining: usize,
    prev: i64,
}

impl Iterator for PackedLinks<'_> {
    type Item = (NodeId, Timestamp);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        // The arena was validated at construction (build or
        // `validate_structure`), so these reads cannot fail; `?` keeps
        // the decoder panic-free all the same.
        let idx = read_varint(self.bytes, &mut self.pos)?;
        let &v = self.row.get(idx as usize)?;
        let delta = read_varint(self.bytes, &mut self.pos)?;
        let t = self.prev + unzigzag(delta);
        self.prev = t;
        self.remaining -= 1;
        Some((v, t as Timestamp))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PackedLinks<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicNetwork;

    #[test]
    fn varint_round_trips() {
        for x in [0u64, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64] {
            let mut buf = Vec::new();
            push_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(x));
            assert_eq!(pos, buf.len());
        }
        assert_eq!(read_varint(&[0x80], &mut 0), None, "truncated");
    }

    #[test]
    fn zigzag_round_trips() {
        for d in [0i64, 1, -1, 63, -64, i64::from(u32::MAX), -5_000_000] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn build_decodes_in_insertion_order() {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 2, 9);
        g.add_link(0, 1, 3);
        g.add_link(0, 2, 5); // timestamp decreases within the row
        let d = CompactData::build(&g, &CompactLimits::default()).unwrap();
        let got: Vec<_> = d.packed_row(0).collect();
        assert_eq!(got, vec![(2, 9), (1, 3), (2, 5)]);
        assert_eq!(d.slot_count(0), 3);
        assert_eq!(d.distinct_row(0), &[1, 2]);
        d.validate_structure(g.link_count()).unwrap();
    }

    #[test]
    fn tiny_limits_reject_without_truncating() {
        let mut g = DynamicNetwork::new();
        for i in 0..8u32 {
            g.add_link(i, i + 1, i);
        }
        let limits = CompactLimits { max_index: 4 };
        let err = CompactData::build(&g, &limits).unwrap_err();
        assert!(
            matches!(err, GraphError::TooLarge { limit: 4, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn validate_rejects_corrupt_arena() {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 5);
        g.add_link(1, 2, 7);
        let d = CompactData::build(&g, &CompactLimits::default()).unwrap();
        d.validate_structure(g.link_count()).unwrap();
        // Out-of-range local index.
        let mut bad = d.clone();
        let mut arena = bad.arena.to_vec();
        arena[0] = 0x7f;
        bad.arena = arena.into_boxed_slice();
        assert!(bad.validate_structure(g.link_count()).is_err());
        // Trailing bytes.
        let mut bad = d.clone();
        let mut offs = bad.byte_offsets.to_vec();
        let mut arena = bad.arena.to_vec();
        arena.push(0);
        let last = offs.len() - 1;
        offs[last] += 1;
        bad.byte_offsets = offs.into_boxed_slice();
        bad.arena = arena.into_boxed_slice();
        assert!(bad.validate_structure(g.link_count()).is_err());
    }
}
