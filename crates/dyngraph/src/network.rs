use crate::view::GraphView;
use crate::{GraphError, NodeId, StaticGraph, Timestamp};

/// A single timestamped link `(u, v, t)` of a [`DynamicNetwork`].
///
/// Links are undirected; iteration yields each link once with `u <= v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// Emerging time of the link.
    pub t: Timestamp,
}

impl Link {
    /// Creates a link, normalizing endpoint order so that `u <= v`.
    ///
    /// ```rust
    /// let l = dyngraph::Link::new(5, 2, 10);
    /// assert_eq!((l.u, l.v, l.t), (2, 5, 10));
    /// ```
    pub fn new(a: NodeId, b: NodeId, t: Timestamp) -> Self {
        Link {
            u: a.min(b),
            v: a.max(b),
            t,
        }
    }
}

/// A dynamic network: an undirected multigraph whose links carry timestamps
/// (Definition 1 of the paper).
///
/// Nodes are dense `u32` identifiers; adding a link automatically grows the
/// node set to cover both endpoints. Multiple links between the same pair of
/// nodes — including several at the same timestamp — are kept distinct.
///
/// # Example
///
/// ```rust
/// use dyngraph::DynamicNetwork;
///
/// let mut g = DynamicNetwork::new();
/// g.add_link(0, 1, 1);
/// g.add_link(1, 2, 2);
/// g.add_link(1, 2, 2); // duplicate at the same timestamp is allowed
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.link_count(), 3);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicNetwork {
    /// `adj[u]` holds `(neighbor, timestamp)` for every incident link; each
    /// undirected link appears in both endpoint lists.
    adj: Vec<Vec<(NodeId, Timestamp)>>,
    /// Distinct neighbors per node: sorted, deduplicated, maintained
    /// incrementally on every `add_link`.
    distinct: Vec<Vec<NodeId>>,
    num_links: usize,
    min_ts: Timestamp,
    max_ts: Timestamp,
    /// Monotone mutation counter: bumped whenever the node set grows or a
    /// link is accepted. Downstream caches key derived results on it (see
    /// `ssf-core`'s extraction cache); any bump invalidates them.
    revision: u64,
}

/// Equality compares graph *content* only; the [`DynamicNetwork::revision`]
/// counter is an implementation detail of cache invalidation and two
/// networks holding the same links are equal regardless of the mutation
/// history that produced them. Only source-of-truth fields participate:
/// `distinct` is derived from `adj` and is skipped.
impl PartialEq for DynamicNetwork {
    fn eq(&self, other: &Self) -> bool {
        self.adj == other.adj
            && self.num_links == other.num_links
            && self.min_ts == other.min_ts
            && self.max_ts == other.max_ts
    }
}

impl DynamicNetwork {
    /// Creates an empty dynamic network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with room for `nodes` nodes.
    pub fn with_node_capacity(nodes: usize) -> Self {
        DynamicNetwork {
            adj: Vec::with_capacity(nodes),
            distinct: Vec::with_capacity(nodes),
            ..Self::default()
        }
    }

    /// Reconstructs a mutable network from any [`GraphView`], restoring
    /// per-node incident-link rows (insertion order preserved), the
    /// derived distinct-neighbor cache, the timestamp bounds and the
    /// revision counter. O(V + E).
    ///
    /// This is the recovery inverse of [`FrozenGraph::from_view`]: the
    /// observable state of a `DynamicNetwork` is exactly its per-node
    /// rows plus the counters — the global link insertion order is not
    /// observable — so a round trip through a frozen CSR and back
    /// yields a network that compares equal and continues mutating
    /// (and bumping its revision) exactly like the original.
    ///
    /// [`FrozenGraph::from_view`]: crate::FrozenGraph::from_view
    pub fn from_view<G: GraphView + ?Sized>(g: &G) -> Self {
        let n = g.node_count();
        let mut adj = Vec::with_capacity(n);
        let mut distinct = Vec::with_capacity(n);
        for u in 0..n as NodeId {
            adj.push(g.incident_links(u).collect());
            distinct.push(g.distinct_neighbors(u).to_vec());
        }
        DynamicNetwork {
            adj,
            distinct,
            num_links: g.link_count(),
            min_ts: g.min_timestamp().unwrap_or(0),
            max_ts: g.max_timestamp().unwrap_or(0),
            revision: g.revision(),
        }
    }

    /// Number of nodes (dense ids `0..node_count()`).
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Total number of timestamped links (multi-links counted separately).
    pub fn link_count(&self) -> usize {
        self.num_links
    }

    /// `true` if the network has no links.
    pub fn is_empty(&self) -> bool {
        self.num_links == 0
    }

    /// Smallest timestamp present, or `None` for an empty network.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(self.min_ts)
    }

    /// Largest timestamp present, or `None` for an empty network.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        (!self.is_empty()).then_some(self.max_ts)
    }

    /// The graph-version counter: strictly increases on every accepted
    /// mutation (node growth or link insertion) and never otherwise.
    ///
    /// Extraction caches memoize per-pair results keyed on this value; a
    /// stale revision means every cached subgraph may be invalid.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Ensures node `id` exists, growing the node set if needed.
    pub fn ensure_node(&mut self, id: NodeId) {
        let want = id as usize + 1;
        if self.adj.len() < want {
            self.adj.resize_with(want, Vec::new);
            self.distinct.resize_with(want, Vec::new);
            self.revision += 1;
        }
    }

    /// Adds an undirected link between `u` and `v` at timestamp `t`.
    ///
    /// Endpoints are created on demand. Multi-links are allowed.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the paper's networks have no self-loops. Use
    /// [`DynamicNetwork::try_add_link`] for a fallible variant.
    #[allow(clippy::expect_used)] // documented panicking wrapper
    pub fn add_link(&mut self, u: NodeId, v: NodeId, t: Timestamp) {
        self.try_add_link(u, v, t)
            .expect("self-loops are not allowed in a DynamicNetwork");
    }

    /// Fallible variant of [`DynamicNetwork::add_link`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`.
    pub fn try_add_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.ensure_node(u.max(v));
        self.adj[u as usize].push((v, t));
        self.adj[v as usize].push((u, t));
        if let Err(i) = self.distinct[u as usize].binary_search(&v) {
            self.distinct[u as usize].insert(i, v);
        }
        if let Err(i) = self.distinct[v as usize].binary_search(&u) {
            self.distinct[v as usize].insert(i, u);
        }
        if self.num_links == 0 {
            self.min_ts = t;
            self.max_ts = t;
        } else {
            self.min_ts = self.min_ts.min(t);
            self.max_ts = self.max_ts.max(t);
        }
        self.num_links += 1;
        self.revision += 1;
        Ok(())
    }

    /// Like [`DynamicNetwork::try_add_link`], but places the link at its
    /// timestamp-sorted position within each endpoint row (stable: equal
    /// timestamps keep arrival order) instead of appending. The revision,
    /// counter and bound arithmetic is identical. Used by
    /// [`WindowedView`](crate::WindowedView), whose rows must stay
    /// time-sorted so expiry can drain a prefix; for monotone streams the
    /// sorted position *is* the end of the row, making this an O(1)
    /// append.
    pub(crate) fn insert_link_sorted(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.ensure_node(u.max(v));
        for (a, b) in [(u, v), (v, u)] {
            let row = &mut self.adj[a as usize];
            let i = row.partition_point(|&(_, ts)| ts <= t);
            row.insert(i, (b, t));
            if let Err(i) = self.distinct[a as usize].binary_search(&b) {
                self.distinct[a as usize].insert(i, b);
            }
        }
        if self.num_links == 0 {
            self.min_ts = t;
            self.max_ts = t;
        } else {
            self.min_ts = self.min_ts.min(t);
            self.max_ts = self.max_ts.max(t);
        }
        self.num_links += 1;
        self.revision += 1;
        Ok(())
    }

    /// Removes every link with timestamp `< cutoff` from `u`'s row and
    /// rebuilds `u`'s distinct-neighbor cache from the survivors.
    /// Returns the number of row entries removed (each undirected link
    /// occupies one entry in *each* endpoint row).
    ///
    /// Requires `u`'s row to be timestamp-sorted (the
    /// [`WindowedView`](crate::WindowedView) invariant): expired entries
    /// then form a prefix, so no rescan of the survivors is needed to
    /// find them. Counters and the revision are deliberately left
    /// untouched — the caller accounts for the mutation once via
    /// [`DynamicNetwork::finish_expiry`].
    pub(crate) fn expire_row_prefix(
        &mut self,
        u: NodeId,
        cutoff: Timestamp,
    ) -> usize {
        let row = &mut self.adj[u as usize];
        let idx = row.partition_point(|&(_, ts)| ts < cutoff);
        if idx == 0 {
            return 0;
        }
        row.drain(..idx);
        let mut d = std::mem::take(&mut self.distinct[u as usize]);
        d.clear();
        d.extend(self.adj[u as usize].iter().map(|&(v, _)| v));
        d.sort_unstable();
        d.dedup();
        self.distinct[u as usize] = d;
        idx
    }

    /// Books one window-expiry mutation: drops `removed` links from the
    /// link count, installs the authoritative post-expiry minimum
    /// timestamp (`(0, 0)` sentinel bounds when the graph emptied, as
    /// construction uses), and bumps the revision exactly once — an
    /// accepted `advance` is a mutation like any insert.
    pub(crate) fn finish_expiry(
        &mut self,
        removed: usize,
        new_min: Option<Timestamp>,
    ) {
        self.num_links -= removed;
        if self.num_links == 0 {
            self.min_ts = 0;
            self.max_ts = 0;
        } else if let Some(m) = new_min {
            self.min_ts = m;
        }
        self.revision += 1;
    }

    /// Stable-sorts every adjacency row by timestamp (arrival order kept
    /// among equal timestamps). A no-op on rows that are already sorted —
    /// notably any graph built through [`WindowedView`](crate::WindowedView)
    /// or restored from one. Counters, distinct rows and the revision are
    /// unaffected (row order within a node is not part of them).
    pub(crate) fn sort_rows_by_time(&mut self) {
        for row in &mut self.adj {
            if row.windows(2).any(|w| w[0].1 > w[1].1) {
                row.sort_by_key(|&(_, t)| t);
            }
        }
    }

    /// All `(neighbor, timestamp)` incidences of `u`, one per link.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn incident_links(&self, u: NodeId) -> &[(NodeId, Timestamp)] {
        &self.adj[u as usize]
    }

    /// Distinct neighbors of `u`, sorted ascending.
    ///
    /// Maintained incrementally, so this is always `O(1)` to serve.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.distinct[u as usize]
    }

    /// Number of distinct neighbors of `u` (the "static" degree).
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Number of incident links of `u` counting multi-links (the
    /// "multigraph" degree used for Table II's average degree).
    pub fn multi_degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// `true` if at least one link connects `u` and `v`.
    pub fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return false;
        }
        // Scan the smaller incidence list.
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len()
        {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].iter().any(|&(w, _)| w == b)
    }

    /// Number of links between `u` and `v` (0 if none).
    pub fn link_count_between(&self, u: NodeId, v: NodeId) -> usize {
        if (u as usize) >= self.adj.len() || (v as usize) >= self.adj.len() {
            return 0;
        }
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len()
        {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize]
            .iter()
            .filter(|&&(w, _)| w == b)
            .count()
    }

    /// Timestamps of every link between `u` and `v`, in insertion order.
    pub fn timestamps_between(&self, u: NodeId, v: NodeId) -> Vec<Timestamp> {
        if (u as usize) >= self.adj.len() {
            return Vec::new();
        }
        self.adj[u as usize]
            .iter()
            .filter(|&&(w, _)| w == v)
            .map(|&(_, t)| t)
            .collect()
    }

    /// Iterates every link once as a [`Link`] with `u <= v`.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, row)| {
            row.iter().filter_map(move |&(v, t)| {
                let u = u as NodeId;
                (u <= v).then_some(Link { u, v, t })
            })
        })
    }

    /// The period `G_{[t_p, t_q)}` (Definition 2): the sub-network containing
    /// exactly the links whose timestamp `l` satisfies `t_p <= l < t_q`.
    ///
    /// The node set is preserved (ids stay stable) even for isolated nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyPeriod`] if `t_p >= t_q`.
    pub fn period(
        &self,
        t_p: Timestamp,
        t_q: Timestamp,
    ) -> Result<DynamicNetwork, GraphError> {
        if t_p >= t_q {
            return Err(GraphError::EmptyPeriod {
                start: t_p,
                end: t_q,
            });
        }
        let mut g = DynamicNetwork::with_node_capacity(self.node_count());
        if self.node_count() > 0 {
            g.ensure_node(self.node_count() as NodeId - 1);
        }
        for link in self.links() {
            if link.t >= t_p && link.t < t_q {
                g.add_link(link.u, link.v, link.t);
            }
        }
        Ok(g)
    }

    /// Collapses the multigraph into a [`StaticGraph`]: one edge per distinct
    /// node pair, with the multi-link count kept as an integer weight.
    pub fn to_static(&self) -> StaticGraph {
        StaticGraph::from_dynamic(self)
    }
}

/// Builds a network from an iterator of `(u, v, t)` triples.
///
/// # Panics
///
/// Panics on self-loops, like [`DynamicNetwork::add_link`].
impl FromIterator<(NodeId, NodeId, Timestamp)> for DynamicNetwork {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId, Timestamp)>>(
        iter: I,
    ) -> Self {
        let mut g = DynamicNetwork::new();
        for (u, v, t) in iter {
            g.add_link(u, v, t);
        }
        g
    }
}

impl Extend<(NodeId, NodeId, Timestamp)> for DynamicNetwork {
    fn extend<I: IntoIterator<Item = (NodeId, NodeId, Timestamp)>>(
        &mut self,
        iter: I,
    ) {
        for (u, v, t) in iter {
            self.add_link(u, v, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DynamicNetwork {
        [(0, 1, 1), (1, 2, 2), (2, 0, 3)].into_iter().collect()
    }

    #[test]
    fn empty_network() {
        let g = DynamicNetwork::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.link_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.min_timestamp(), None);
        assert_eq!(g.max_timestamp(), None);
    }

    #[test]
    fn add_link_grows_nodes() {
        let mut g = DynamicNetwork::new();
        g.add_link(3, 7, 10);
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.link_count(), 1);
        assert!(g.has_link(3, 7));
        assert!(g.has_link(7, 3));
        assert!(!g.has_link(3, 4));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicNetwork::new();
        assert_eq!(
            g.try_add_link(2, 2, 1),
            Err(GraphError::SelfLoop { node: 2 })
        );
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn add_link_panics_on_self_loop() {
        let mut g = DynamicNetwork::new();
        g.add_link(1, 1, 1);
    }

    #[test]
    fn multi_links_counted() {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 1);
        g.add_link(0, 1, 1);
        g.add_link(0, 1, 5);
        assert_eq!(g.link_count(), 3);
        assert_eq!(g.link_count_between(0, 1), 3);
        assert_eq!(g.timestamps_between(0, 1), vec![1, 1, 5]);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.multi_degree(0), 3);
    }

    #[test]
    fn neighbors_sorted_dedup() {
        let mut g = DynamicNetwork::new();
        g.add_link(5, 0, 1);
        g.add_link(5, 3, 2);
        g.add_link(5, 0, 3);
        assert_eq!(g.neighbors(5), &[0, 3]);
    }

    #[test]
    fn neighbors_fresh_after_add_link() {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 1);
        assert_eq!(g.neighbors(0), &[1]);
        g.add_link(0, 2, 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn timestamp_range_tracked() {
        let g = triangle();
        assert_eq!(g.min_timestamp(), Some(1));
        assert_eq!(g.max_timestamp(), Some(3));
    }

    #[test]
    fn links_iterated_once_each() {
        let g = triangle();
        let links: Vec<Link> = g.links().collect();
        assert_eq!(links.len(), 3);
        for l in &links {
            assert!(l.u <= l.v);
        }
    }

    #[test]
    fn period_slices_by_timestamp() {
        let g = triangle();
        let p = g.period(1, 3).unwrap();
        assert_eq!(p.link_count(), 2);
        assert_eq!(p.node_count(), g.node_count());
        assert!(p.has_link(0, 1));
        assert!(p.has_link(1, 2));
        assert!(!p.has_link(0, 2));
    }

    #[test]
    fn period_rejects_empty_range() {
        let g = triangle();
        assert!(matches!(
            g.period(3, 3),
            Err(GraphError::EmptyPeriod { .. })
        ));
        assert!(g.period(4, 2).is_err());
    }

    #[test]
    fn link_new_normalizes_order() {
        let l = Link::new(9, 4, 2);
        assert_eq!((l.u, l.v), (4, 9));
    }

    #[test]
    fn extend_rebuilds_caches() {
        let mut g = triangle();
        g.extend([(0, 3, 4)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn revision_bumps_on_every_mutation_only() {
        let mut g = DynamicNetwork::new();
        assert_eq!(g.revision(), 0);
        g.add_link(0, 1, 1); // grows nodes + adds link
        let r1 = g.revision();
        assert!(r1 >= 2);
        g.add_link(0, 1, 2); // existing nodes: link bump only
        assert_eq!(g.revision(), r1 + 1);
        g.ensure_node(0); // already present: no bump
        assert_eq!(g.revision(), r1 + 1);
        g.ensure_node(9); // growth bump
        assert_eq!(g.revision(), r1 + 2);
        let r = g.revision();
        assert!(g.try_add_link(3, 3, 5).is_err()); // rejected: no bump
        assert_eq!(g.revision(), r);
    }

    #[test]
    fn equality_ignores_revision() {
        let a = triangle();
        let mut b = DynamicNetwork::new();
        b.ensure_node(2); // extra mutation shifts the revision
        b.extend([(0, 1, 1), (1, 2, 2), (2, 0, 3)]);
        assert_ne!(a.revision(), b.revision());
        assert_eq!(a, b);
    }

    #[test]
    fn from_view_round_trips_through_frozen() {
        let mut g = triangle();
        g.add_link(0, 1, 9); // multi-link
        g.ensure_node(6); // isolated tail nodes survive the round trip
        let frozen = crate::FrozenGraph::from_view(&g);
        let restored = DynamicNetwork::from_view(&frozen);
        assert_eq!(restored, g);
        assert_eq!(restored.revision(), g.revision());
        for u in 0..g.node_count() as NodeId {
            assert_eq!(restored.incident_links(u), g.incident_links(u));
            assert_eq!(restored.neighbors(u), g.neighbors(u));
        }
        // The restored network keeps mutating in lockstep.
        let mut twin = g.clone();
        let mut restored = restored;
        restored.add_link(4, 6, 11);
        twin.add_link(4, 6, 11);
        assert_eq!(restored, twin);
        assert_eq!(restored.revision(), twin.revision());
    }

    #[test]
    fn from_view_of_empty_graph() {
        let restored = DynamicNetwork::from_view(&crate::FrozenGraph::empty());
        assert_eq!(restored, DynamicNetwork::new());
        assert_eq!(restored.revision(), 0);
    }

    #[test]
    fn network_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DynamicNetwork>();
    }
}
