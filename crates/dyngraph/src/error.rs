use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A link's two endpoints are the same node; the paper's networks carry
    /// no self-loops and several algorithms (structure combination,
    /// Palette-WL) assume their absence.
    SelfLoop {
        /// The offending node.
        node: u32,
    },
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A period slice was requested with `t_p >= t_q`.
    EmptyPeriod {
        /// Inclusive start of the requested period.
        start: u32,
        /// Exclusive end of the requested period.
        end: u32,
    },
    /// Raw CSR arrays handed to [`FrozenGraph::try_from_parts`] are
    /// internally inconsistent (offsets not monotone, ids out of range,
    /// asymmetric rows, …). Deserialized graphs must never reach the
    /// scoring path, so reconstruction validates everything and refuses
    /// rather than serving silently-wrong structure.
    ///
    /// [`FrozenGraph::try_from_parts`]: crate::FrozenGraph::try_from_parts
    InvalidCsr {
        /// Which invariant failed, human-readable.
        detail: String,
    },
    /// A count overflowed the compact storage layout's `u32` indices
    /// while building a [`StorageMode::Compact`] graph. The offending
    /// value is reported and never silently truncated — a graph that
    /// does not fit must stay wide.
    ///
    /// [`StorageMode::Compact`]: crate::StorageMode::Compact
    TooLarge {
        /// Which count overflowed (`"node count + 1"`,
        /// `"incident slot count"`, `"arena byte length"`, …).
        what: &'static str,
        /// The offending value.
        value: u64,
        /// The layout's ceiling for that count.
        limit: u64,
    },
    /// A sliding-window horizon was asked to move backwards. Windows
    /// only slide forward — rewinding would resurrect expired links
    /// whose state is gone (see [`WindowedView::advance`]).
    ///
    /// [`WindowedView::advance`]: crate::WindowedView::advance
    HorizonRegressed {
        /// The current horizon.
        from: u32,
        /// The (smaller) horizon that was requested.
        to: u32,
    },
    /// A link's timestamp falls outside the current window
    /// `[cutoff, horizon]` — it expired before it arrived. Callers
    /// decide whether that is a quarantine condition (the streaming
    /// facade) or a hard error.
    OutOfWindow {
        /// The rejected link's timestamp.
        t: u32,
        /// Inclusive lower bound of the window (`horizon - width`,
        /// saturating at zero).
        cutoff: u32,
        /// Inclusive upper bound of the window.
        horizon: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error on line {line}: {reason}")
            }
            GraphError::EmptyPeriod { start, end } => {
                write!(f, "empty period [{start}, {end})")
            }
            GraphError::InvalidCsr { detail } => {
                write!(f, "invalid CSR graph: {detail}")
            }
            GraphError::TooLarge { what, value, limit } => {
                write!(
                    f,
                    "graph too large for compact storage: {what} {value} \
                     exceeds {limit}"
                )
            }
            GraphError::HorizonRegressed { from, to } => {
                write!(f, "window horizon cannot regress from {from} to {to}")
            }
            GraphError::OutOfWindow { t, cutoff, horizon } => {
                write!(
                    f,
                    "timestamp {t} is outside the window [{cutoff}, {horizon}]"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = GraphError::SelfLoop { node: 3 };
        assert_eq!(e.to_string(), "self-loop on node 3 is not allowed");
        let e = GraphError::Parse {
            line: 7,
            reason: "expected 3 fields".to_string(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = GraphError::EmptyPeriod { start: 5, end: 5 };
        assert!(e.to_string().contains("[5, 5)"));
        let e = GraphError::InvalidCsr {
            detail: "offsets not monotone".to_string(),
        };
        assert_eq!(e.to_string(), "invalid CSR graph: offsets not monotone");
        let e = GraphError::TooLarge {
            what: "incident slot count",
            value: 5_000_000_000,
            limit: u32::MAX as u64,
        };
        let text = e.to_string();
        assert!(text.contains("5000000000"), "{text}");
        assert!(text.contains("compact"), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
