//! Graph traversal: bounded BFS distance maps (used for h-hop subgraph
//! extraction, Eq. (1) of the paper) and Dijkstra shortest paths (used for
//! the reciprocal-distance entry encoding of §V-B).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{
    DynamicNetwork, FrozenGraph, GraphView, NodeId, OverlayView, StaticGraph,
};

/// Anything that can enumerate distinct neighbors of a node.
///
/// Implemented by both [`DynamicNetwork`] and [`StaticGraph`] so the BFS
/// routines work on either representation without conversion.
pub trait Adjacency {
    /// Number of nodes (ids are dense `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Calls `f` once per distinct neighbor of `u`.
    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId));
}

impl Adjacency for DynamicNetwork {
    fn node_count(&self) -> usize {
        DynamicNetwork::node_count(self)
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }
}

impl Adjacency for FrozenGraph {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in self.distinct_neighbors(u) {
            f(v);
        }
    }
}

impl Adjacency for OverlayView {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in self.distinct_neighbors(u) {
            f(v);
        }
    }
}

impl Adjacency for StaticGraph {
    fn node_count(&self) -> usize {
        StaticGraph::node_count(self)
    }

    fn for_each_neighbor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }
}

/// Multi-source BFS bounded at `max_depth`.
///
/// Returns every reachable `(node, distance)` with `distance <= max_depth`,
/// where the distance is the minimum hop count to any source — exactly
/// `d(n_i, e_t) = min(|P(n_i, n_a)|, |P(n_i, n_b)|)` (Eq. (1)) when the
/// sources are the two endpoints of the target link. Sources themselves are
/// reported with distance 0. The result is ordered by discovery (breadth
/// first, sources first).
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn bfs_bounded(
    graph: &dyn Adjacency,
    sources: &[NodeId],
    max_depth: u32,
) -> Vec<(NodeId, u32)> {
    let n = graph.node_count();
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    let mut order: Vec<(NodeId, u32)> = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in sources {
        assert!((s as usize) < n, "bfs source {s} out of range");
        if dist[s as usize] == u32::MAX {
            dist[s as usize] = 0;
            order.push((s, 0));
            frontier.push(s);
        }
    }
    let mut depth = 0;
    while !frontier.is_empty() && depth < max_depth {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            graph.for_each_neighbor(u, &mut |v| {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = depth;
                    order.push((v, depth));
                    next.push(v);
                }
            });
        }
        frontier = next;
    }
    order
}

/// Single-source Dijkstra over an explicit weighted adjacency list.
///
/// `adj[u]` lists `(v, w)` with `w >= 0`. Returns `dist[u]` for every node,
/// `f64::INFINITY` where unreachable. Used on the tiny normalized K-structure
/// subgraphs, where edge lengths are the reciprocal `1/l̃` of the normalized
/// influence (footnote of §V-B).
///
/// # Panics
///
/// Panics if `source` is out of range or any weight is negative or NaN.
pub fn dijkstra(adj: &[Vec<(usize, f64)>], source: usize) -> Vec<f64> {
    assert!(source < adj.len(), "dijkstra source out of range");
    let mut dist = vec![f64::INFINITY; adj.len()];
    dist[source] = 0.0;
    // BinaryHeap over ordered bit patterns of non-negative f64 keys.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    heap.push(Reverse((0, source)));
    while let Some(Reverse((dbits, u))) = heap.pop() {
        let d = f64::from_bits(dbits);
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &adj[u] {
            assert!(
                w >= 0.0 && !w.is_nan(),
                "dijkstra requires non-negative finite weights"
            );
            let nd = d + w;
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd.to_bits(), v)));
            }
        }
    }
    dist
}

/// Connected component of `start` (over distinct-neighbor adjacency),
/// returned as a sorted node list.
pub fn component(graph: &dyn Adjacency, start: NodeId) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = bfs_bounded(graph, &[start], u32::MAX)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    nodes.sort_unstable();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> DynamicNetwork {
        (0..n - 1).map(|i| (i, i + 1, 1)).collect()
    }

    #[test]
    fn bfs_single_source_distances() {
        let g = path_graph(6);
        let d = bfs_bounded(&g, &[0], 3);
        assert_eq!(d, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn bfs_multi_source_midpoint() {
        let g = path_graph(7);
        let d = bfs_bounded(&g, &[0, 6], 3);
        let map: std::collections::HashMap<_, _> = d.into_iter().collect();
        assert_eq!(map[&3], 3);
        assert_eq!(map[&1], 1);
        assert_eq!(map[&5], 1);
        assert_eq!(map[&0], 0);
        assert_eq!(map[&6], 0);
    }

    #[test]
    fn bfs_respects_bound() {
        let g = path_graph(10);
        let d = bfs_bounded(&g, &[0], 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn bfs_duplicate_sources_collapse() {
        let g = path_graph(3);
        let d = bfs_bounded(&g, &[1, 1], 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn bfs_works_on_static_graph() {
        let g = path_graph(4).to_static();
        let d = bfs_bounded(&g, &[0], 10);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn dijkstra_weighted_path() {
        // 0 -1.0- 1 -0.5- 2,  0 -2.0- 2
        let adj = vec![
            vec![(1, 1.0), (2, 2.0)],
            vec![(0, 1.0), (2, 0.5)],
            vec![(0, 2.0), (1, 0.5)],
        ];
        let d = dijkstra(&adj, 0);
        assert_eq!(d, vec![0.0, 1.0, 1.5]);
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let adj = vec![vec![], vec![]];
        let d = dijkstra(&adj, 0);
        assert_eq!(d[0], 0.0);
        assert!(d[1].is_infinite());
    }

    #[test]
    fn component_collects_reachable() {
        let mut g = path_graph(4);
        g.extend([(10, 11, 1)]);
        assert_eq!(component(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(component(&g, 10), vec![10, 11]);
    }
}
