//! Network statistics in the shape of the paper's Table II.

use std::fmt;

use crate::DynamicNetwork;

/// Summary statistics of a dynamic network (Table II columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes that have at least one incident link.
    pub nodes: usize,
    /// Total number of timestamped links (multi-links counted).
    pub links: usize,
    /// Average multigraph degree `2|E| / |V|` over active nodes.
    pub avg_degree: f64,
    /// `max_timestamp - min_timestamp + 1`, i.e. the number of timestamp
    /// ticks spanned ("Time Span" in Table II, in dataset-specific units).
    pub time_span: u32,
}

impl NetworkStats {
    /// Computes statistics for a network.
    ///
    /// Isolated node ids (created by `ensure_node` or period slicing) are
    /// excluded from the node count, matching how dataset statistics are
    /// conventionally reported.
    ///
    /// # Example
    ///
    /// ```rust
    /// use dyngraph::{stats::NetworkStats, DynamicNetwork};
    ///
    /// let g: DynamicNetwork = [(0, 1, 1), (1, 2, 5)].into_iter().collect();
    /// let s = NetworkStats::of(&g);
    /// assert_eq!((s.nodes, s.links, s.time_span), (3, 2, 5));
    /// ```
    pub fn of(g: &DynamicNetwork) -> Self {
        let active = (0..g.node_count())
            .filter(|&u| g.multi_degree(u as u32) > 0)
            .count();
        let links = g.link_count();
        let avg_degree = if active == 0 {
            0.0
        } else {
            2.0 * links as f64 / active as f64
        };
        let time_span = match (g.min_timestamp(), g.max_timestamp()) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => 0,
        };
        NetworkStats {
            nodes: active,
            links,
            avg_degree,
            time_span,
        }
    }
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg_deg={:.2} span={}",
            self.nodes, self.links, self.avg_degree, self.time_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = NetworkStats::of(&DynamicNetwork::new());
        assert_eq!(s.nodes, 0);
        assert_eq!(s.links, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.time_span, 0);
    }

    #[test]
    fn multigraph_degree_counted() {
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 1, 2), (0, 1, 3)].into_iter().collect();
        let s = NetworkStats::of(&g);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.links, 3);
        assert!((s.avg_degree - 3.0).abs() < 1e-12);
        assert_eq!(s.time_span, 3);
    }

    #[test]
    fn isolated_ids_excluded() {
        let mut g: DynamicNetwork = [(0, 1, 1)].into_iter().collect();
        g.ensure_node(10);
        let s = NetworkStats::of(&g);
        assert_eq!(s.nodes, 2);
    }

    #[test]
    fn display_mentions_all_fields() {
        let g: DynamicNetwork = [(0, 1, 2)].into_iter().collect();
        let text = NetworkStats::of(&g).to_string();
        assert!(text.contains("|V|=2") && text.contains("span=1"));
    }
}
