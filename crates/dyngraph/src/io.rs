//! Edge-list text I/O.
//!
//! The format is the KONECT-style whitespace-separated `u v t` triple per
//! line (`%`- or `#`-prefixed comment lines are skipped), which is how the
//! paper's seven public datasets are distributed. A missing third column is
//! treated as timestamp 0 (a static network).

use std::io::{BufRead, Read, Write};

use crate::{DynamicNetwork, GraphError, NodeId, Timestamp};

/// One line that [`read_edge_list_lossy`] could not turn into a link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedLine {
    /// 1-based line number in the input stream.
    pub line: usize,
    /// Why the line was rejected, in [`GraphError`] display wording.
    pub reason: String,
}

/// Outcome of a lenient edge-list parse: every salvageable link plus an
/// audit trail of what was dropped and why.
#[derive(Debug, Default)]
pub struct LossyReadReport {
    /// The network built from all lines that parsed cleanly.
    pub network: DynamicNetwork,
    /// Lines that were dropped, in stream order.
    pub rejected: Vec<RejectedLine>,
    /// Number of links actually added to `network`.
    pub accepted: usize,
}

impl LossyReadReport {
    /// Fraction of data lines (accepted + rejected) that were dropped.
    /// Zero when the stream had no data lines at all.
    pub fn rejection_rate(&self) -> f64 {
        let total = self.accepted + self.rejected.len();
        if total == 0 {
            0.0
        } else {
            self.rejected.len() as f64 / total as f64
        }
    }
}

/// Parses an edge list from a reader.
///
/// Each non-comment line is `u v [t]`; node ids and timestamps must fit in
/// `u32`. Pass `&mut reader` if the reader is needed afterwards.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines or I/O failure, and
/// [`GraphError::SelfLoop`] if a line has `u == v`.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), dyngraph::GraphError> {
/// let text = "% comment\n0 1 3\n1 2 4\n";
/// let g = dyngraph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.link_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(
    reader: R,
) -> Result<DynamicNetwork, GraphError> {
    let mut g = DynamicNetwork::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: lineno,
            reason: format!("i/o error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('%')
            || trimmed.starts_with('#')
        {
            continue;
        }
        let (u, v, t) = parse_data_line(trimmed, lineno)?;
        g.try_add_link(u, v, t)?;
    }
    Ok(g)
}

fn parse_field(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<NodeId, GraphError> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        reason: format!("missing {what}"),
    })?;
    s.parse().map_err(|_| GraphError::Parse {
        line,
        reason: format!("invalid {what} {s:?}"),
    })
}

/// Parses an edge list leniently: bad lines are recorded, not fatal.
///
/// This is the ingestion path for hostile or degraded inputs. Lines that
/// fail to parse (malformed fields, self-loops, invalid UTF-8) are dropped
/// into [`LossyReadReport::rejected`] with the same reason wording the
/// strict [`read_edge_list`] would have used, and parsing continues with
/// the next line. Only a genuine I/O error from the underlying reader
/// stops the scan early — and even that is recorded as a rejection rather
/// than returned, so the caller always gets whatever was salvaged.
///
/// Unlike the strict reader this one does not require the stream to be
/// valid UTF-8: each line is decoded lossily, so corrupted bytes degrade
/// to a per-line parse rejection instead of aborting the whole file.
pub fn read_edge_list_lossy<R: BufRead>(mut reader: R) -> LossyReadReport {
    let mut report = LossyReadReport::default();
    let mut raw = Vec::new();
    let mut lineno = 0usize;
    loop {
        raw.clear();
        lineno += 1;
        match reader.read_until(b'\n', &mut raw) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                report.rejected.push(RejectedLine {
                    line: lineno,
                    reason: format!("i/o error: {e}"),
                });
                break;
            }
        }
        let line = String::from_utf8_lossy(&raw);
        let trimmed = line.trim();
        if trimmed.is_empty()
            || trimmed.starts_with('%')
            || trimmed.starts_with('#')
        {
            continue;
        }
        match parse_data_line(trimmed, lineno) {
            Ok((u, v, t)) => match report.network.try_add_link(u, v, t) {
                Ok(()) => report.accepted += 1,
                Err(e) => report.rejected.push(RejectedLine {
                    line: lineno,
                    reason: e.to_string(),
                }),
            },
            Err(e) => report.rejected.push(RejectedLine {
                line: lineno,
                reason: match e {
                    GraphError::Parse { reason, .. } => reason,
                    other => other.to_string(),
                },
            }),
        }
    }
    report
}

fn parse_data_line(
    trimmed: &str,
    lineno: usize,
) -> Result<(NodeId, NodeId, Timestamp), GraphError> {
    let mut fields = trimmed.split_whitespace();
    let u = parse_field(fields.next(), lineno, "source node")?;
    let v = parse_field(fields.next(), lineno, "target node")?;
    let t: Timestamp = match fields.next() {
        Some(s) => s.parse().map_err(|_| GraphError::Parse {
            line: lineno,
            reason: format!("invalid timestamp {s:?}"),
        })?,
        None => 0,
    };
    Ok((u, v, t))
}

/// Configuration for [`FaultyReader`]: per-line fault probabilities.
///
/// Rates are independent probabilities in `[0, 1]` evaluated per data
/// line, driven by a deterministic generator seeded with `seed` — the same
/// configuration over the same input always injects the same faults.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability of corrupting a line in place (mangling a field into
    /// junk, a self-loop, or an unparsable timestamp).
    pub corrupt_rate: f64,
    /// Probability of truncating a line at a random byte offset.
    pub truncate_rate: f64,
    /// Probability of injecting a whole garbage line (possibly invalid
    /// UTF-8) before the real one.
    pub garbage_rate: f64,
    /// Byte-level fault: probability, per emitted byte, of flipping one
    /// random bit. Unlike the per-line rates above this mangles the raw
    /// stream, so it also models corruption of *binary* formats (WAL
    /// segments, snapshot files), not just text edge lists.
    pub bit_flip_rate: f64,
    /// Byte-level fault: hard-stop the stream after exactly this many
    /// bytes, as if the process died mid-write. `None` streams to the
    /// end. Applies after the line-level faults, so the cut can land in
    /// the middle of a record.
    pub truncate_at: Option<u64>,
    /// Seed for the internal deterministic generator.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            garbage_rate: 0.0,
            bit_flip_rate: 0.0,
            truncate_at: None,
            seed: 0,
        }
    }
}

/// A fault-injecting wrapper around any line-oriented reader.
///
/// Used by the chaos tests to turn a clean edge-list stream into a hostile
/// one with a controlled, reproducible corruption profile. Comment and
/// blank lines pass through untouched so the corruption budget lands on
/// data lines. Implements [`BufRead`], so it can feed [`read_edge_list`]
/// or [`read_edge_list_lossy`] directly.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    cfg: FaultConfig,
    state: u64,
    buf: Vec<u8>,
    pos: usize,
    inner_done: bool,
    /// Total bytes produced so far, for the `truncate_at` cut-off.
    generated: u64,
}

impl<R: BufRead> FaultyReader<R> {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: R, cfg: FaultConfig) -> Self {
        FaultyReader {
            inner,
            // Mix the seed so that seed 0 still produces a live stream.
            state: cfg.seed ^ 0x6A09_E667_F3BC_C908,
            cfg,
            buf: Vec::new(),
            pos: 0,
            inner_done: false,
            generated: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64: small, seedable, and dependency-free.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    fn push_garbage_line(&mut self) {
        let kind = self.below(3);
        match kind {
            // Unparsable text tokens.
            0 => self.buf.extend_from_slice(b"@@ chaos #! ??\n"),
            // Numeric-looking but overflowing u32.
            1 => self.buf.extend_from_slice(b"99999999999 3 1\n"),
            // Invalid UTF-8 bytes.
            _ => {
                self.buf.extend_from_slice(&[0xFF, 0xFE, b' ', 0xC3, 0x28]);
                self.buf.push(b'\n');
            }
        }
    }

    fn corrupt_line(&mut self, line: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(line).into_owned();
        let fields: Vec<&str> = text.split_whitespace().collect();
        let kind = self.below(3);
        let out = match (kind, fields.as_slice()) {
            // Turn the link into a self-loop.
            (0, [u, _v, rest @ ..]) => {
                let mut s = format!("{u} {u}");
                for r in rest {
                    s.push(' ');
                    s.push_str(r);
                }
                s
            }
            // Make the timestamp unparsable.
            (1, [u, v, ..]) => format!("{u} {v} not-a-time"),
            // Splice junk into the middle of the line.
            _ => {
                let cut = self.below(text.len().max(1));
                format!(
                    "{}<?>{}",
                    &text[..cut.min(text.len())],
                    &text[cut.min(text.len())..]
                )
            }
        };
        let mut bytes = out.into_bytes();
        bytes.push(b'\n');
        bytes
    }

    fn refill(&mut self) -> std::io::Result<()> {
        self.buf.clear();
        self.pos = 0;
        let mut raw = Vec::new();
        while self.buf.is_empty() && !self.inner_done {
            raw.clear();
            if self.inner.read_until(b'\n', &mut raw)? == 0 {
                self.inner_done = true;
                break;
            }
            let trimmed_len = raw
                .iter()
                .take_while(|b| **b != b'\n' && **b != b'\r')
                .count();
            let is_data = {
                let t = raw[..trimmed_len]
                    .iter()
                    .position(|b| !b.is_ascii_whitespace());
                match t {
                    None => false,
                    Some(i) => raw[i] != b'%' && raw[i] != b'#',
                }
            };
            if !is_data {
                self.buf.extend_from_slice(&raw);
                continue;
            }
            if self.cfg.garbage_rate > 0.0 && self.chance(self.cfg.garbage_rate)
            {
                self.push_garbage_line();
            }
            if self.cfg.truncate_rate > 0.0
                && self.chance(self.cfg.truncate_rate)
            {
                let cut = self.below(trimmed_len.max(1));
                self.buf.extend_from_slice(&raw[..cut]);
                self.buf.push(b'\n');
            } else if self.cfg.corrupt_rate > 0.0
                && self.chance(self.cfg.corrupt_rate)
            {
                let mangled = self.corrupt_line(&raw[..trimmed_len]);
                self.buf.extend_from_slice(&mangled);
            } else {
                self.buf.extend_from_slice(&raw);
            }
        }
        // Byte-level faults act on the assembled stream, after the
        // line-level ones, so they reach every consumer — `read` and
        // the `BufRead` fast path alike.
        if self.cfg.bit_flip_rate > 0.0 {
            for i in 0..self.buf.len() {
                if self.chance(self.cfg.bit_flip_rate) {
                    let bit = self.below(8);
                    self.buf[i] ^= 1 << bit;
                }
            }
        }
        if let Some(limit) = self.cfg.truncate_at {
            let remaining = limit.saturating_sub(self.generated);
            if self.buf.len() as u64 > remaining {
                self.buf.truncate(remaining as usize);
                self.inner_done = true;
            }
        }
        self.generated += self.buf.len() as u64;
        Ok(())
    }
}

impl<R: BufRead> Read for FaultyReader<R> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: BufRead> BufRead for FaultyReader<R> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            self.refill()?;
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.buf.len());
    }
}

/// Writes a network as `u v t` lines (one per timestamped link, `u <= v`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(
    g: &DynamicNetwork,
    mut writer: W,
) -> std::io::Result<()> {
    for link in g.links() {
        writeln!(writer, "{} {} {}", link.u, link.v, link.t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_defaults() {
        let text = "# header\n% konect\n\n0 1\n2 3 9\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.timestamps_between(0, 1), vec![0]);
        assert_eq!(g.timestamps_between(2, 3), vec![9]);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "0 1 1\nnot a line\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_target() {
        let err = read_edge_list("5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("target node"));
    }

    #[test]
    fn rejects_self_loop() {
        let err = read_edge_list("4 4 1\n".as_bytes()).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 4 });
    }

    #[test]
    fn parse_reason_wording_is_stable() {
        // Downstream tooling matches on these reason strings; pin each one.
        let cases: &[(&str, &str)] = &[
            ("\n5\n", "missing target node"),
            ("abc 1 2\n", "invalid source node \"abc\""),
            ("1 xyz 2\n", "invalid target node \"xyz\""),
            ("1 2 later\n", "invalid timestamp \"later\""),
            ("9 9 1\n", "self-loop on node 9 is not allowed"),
        ];
        for (input, want) in cases {
            let err = read_edge_list(input.as_bytes()).unwrap_err();
            assert!(
                err.to_string().contains(want),
                "{input:?}: expected {want:?} in {err}"
            );
            let report = read_edge_list_lossy(input.as_bytes());
            assert_eq!(report.rejected.len(), 1, "{input:?}");
            assert!(
                report.rejected[0].reason.contains(want),
                "{input:?}: expected {want:?} in {:?}",
                report.rejected[0].reason
            );
        }
    }

    #[test]
    fn lossy_salvages_good_lines_around_bad_ones() {
        let text = "0 1 1\ngarbage here\n2 2 3\n3 4 5\n1 2\n";
        let report = read_edge_list_lossy(text.as_bytes());
        assert_eq!(report.accepted, 3);
        assert_eq!(report.network.link_count(), 3);
        assert_eq!(report.rejected.len(), 2);
        assert_eq!(report.rejected[0].line, 2);
        assert_eq!(report.rejected[1].line, 3);
        assert!(report.rejected[1].reason.contains("self-loop"));
        assert!((report.rejection_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn lossy_survives_invalid_utf8() {
        let mut bytes = b"0 1 1\n".to_vec();
        bytes.extend_from_slice(&[0xFF, 0xFE, 0xFD, b'\n']);
        bytes.extend_from_slice(b"1 2 2\n");
        let report = read_edge_list_lossy(bytes.as_slice());
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected.len(), 1);
    }

    #[test]
    fn lossy_on_empty_input_is_empty() {
        let report = read_edge_list_lossy(b"".as_slice());
        assert_eq!(report.accepted, 0);
        assert!(report.rejected.is_empty());
        assert_eq!(report.rejection_rate(), 0.0);
    }

    #[test]
    fn faulty_reader_with_zero_rates_is_transparent() {
        let text = "% header\n0 1 1\n2 3 4\n\n# tail\n5 6 7\n";
        let faulty = FaultyReader::new(text.as_bytes(), FaultConfig::default());
        let g = read_edge_list(faulty).unwrap();
        assert_eq!(g.link_count(), 3);
    }

    #[test]
    fn faulty_reader_is_deterministic_per_seed() {
        let text: String = (0..200)
            .map(|i| format!("{} {} {}\n", i, i + 1, i))
            .collect();
        let run = |seed| {
            let cfg = FaultConfig {
                corrupt_rate: 0.2,
                truncate_rate: 0.1,
                garbage_rate: 0.1,
                seed,
                ..FaultConfig::default()
            };
            let mut out = Vec::new();
            FaultyReader::new(text.as_bytes(), cfg)
                .read_to_end(&mut out)
                .expect("in-memory reads cannot fail");
            out
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
        assert_ne!(
            run(9),
            text.as_bytes(),
            "faults must actually change the stream"
        );
    }

    #[test]
    fn faulty_reader_feeds_lossy_parser_without_panicking() {
        let text: String = (0..300)
            .map(|i| format!("{} {} {}\n", i, i + 1, i))
            .collect();
        let cfg = FaultConfig {
            corrupt_rate: 0.15,
            truncate_rate: 0.1,
            garbage_rate: 0.1,
            seed: 42,
            ..FaultConfig::default()
        };
        let report =
            read_edge_list_lossy(FaultyReader::new(text.as_bytes(), cfg));
        assert!(
            report.accepted > 150,
            "most lines survive: {}",
            report.accepted
        );
        assert!(!report.rejected.is_empty(), "some lines must be rejected");
    }

    #[test]
    fn faulty_reader_truncates_at_exact_byte_offset() {
        let text = "0 1 1\n2 3 4\n5 6 7\n";
        for cut in 0..=text.len() as u64 {
            let cfg = FaultConfig {
                truncate_at: Some(cut),
                ..FaultConfig::default()
            };
            let mut out = Vec::new();
            FaultyReader::new(text.as_bytes(), cfg)
                .read_to_end(&mut out)
                .expect("in-memory reads cannot fail");
            assert_eq!(
                out,
                &text.as_bytes()[..cut as usize],
                "cut at byte {cut}"
            );
        }
    }

    #[test]
    fn faulty_reader_bit_flips_one_bit_deterministically() {
        let text: String =
            (0..100).map(|i| format!("{i} {} 1\n", i + 1)).collect();
        let run = |seed| {
            let cfg = FaultConfig {
                bit_flip_rate: 0.05,
                seed,
                ..FaultConfig::default()
            };
            let mut out = Vec::new();
            FaultyReader::new(text.as_bytes(), cfg)
                .read_to_end(&mut out)
                .expect("in-memory reads cannot fail");
            out
        };
        let flipped = run(3);
        // Flips mangle bytes in place: same length, same seed → same
        // bytes, and every corrupted byte differs in exactly one bit.
        assert_eq!(flipped.len(), text.len());
        assert_eq!(flipped, run(3));
        let differing = flipped
            .iter()
            .zip(text.as_bytes())
            .filter(|(a, b)| a != b)
            .count();
        assert!(differing > 0, "5% over {} bytes must hit", text.len());
        for (i, (a, b)) in flipped.iter().zip(text.as_bytes()).enumerate() {
            assert!(
                (a ^ b).count_ones() <= 1,
                "byte {i} changed more than one bit"
            );
        }
    }

    #[test]
    fn round_trip() {
        let g: DynamicNetwork =
            [(0, 1, 1), (1, 2, 2), (0, 1, 5)].into_iter().collect();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.link_count(), g.link_count());
        assert_eq!(g2.timestamps_between(0, 1), vec![1, 5]);
    }
}
