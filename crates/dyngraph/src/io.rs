//! Edge-list text I/O.
//!
//! The format is the KONECT-style whitespace-separated `u v t` triple per
//! line (`%`- or `#`-prefixed comment lines are skipped), which is how the
//! paper's seven public datasets are distributed. A missing third column is
//! treated as timestamp 0 (a static network).

use std::io::{BufRead, Write};

use crate::{DynamicNetwork, GraphError, NodeId, Timestamp};

/// Parses an edge list from a reader.
///
/// Each non-comment line is `u v [t]`; node ids and timestamps must fit in
/// `u32`. Pass `&mut reader` if the reader is needed afterwards.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines or I/O failure, and
/// [`GraphError::SelfLoop`] if a line has `u == v`.
///
/// # Example
///
/// ```rust
/// # fn main() -> Result<(), dyngraph::GraphError> {
/// let text = "% comment\n0 1 3\n1 2 4\n";
/// let g = dyngraph::io::read_edge_list(text.as_bytes())?;
/// assert_eq!(g.link_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DynamicNetwork, GraphError> {
    let mut g = DynamicNetwork::new();
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: lineno,
            reason: format!("i/o error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let u = parse_field(fields.next(), lineno, "source node")?;
        let v = parse_field(fields.next(), lineno, "target node")?;
        let t: Timestamp = match fields.next() {
            Some(s) => s.parse().map_err(|_| GraphError::Parse {
                line: lineno,
                reason: format!("invalid timestamp {s:?}"),
            })?,
            None => 0,
        };
        g.try_add_link(u, v, t)?;
    }
    Ok(g)
}

fn parse_field(
    field: Option<&str>,
    line: usize,
    what: &str,
) -> Result<NodeId, GraphError> {
    let s = field.ok_or_else(|| GraphError::Parse {
        line,
        reason: format!("missing {what}"),
    })?;
    s.parse().map_err(|_| GraphError::Parse {
        line,
        reason: format!("invalid {what} {s:?}"),
    })
}

/// Writes a network as `u v t` lines (one per timestamped link, `u <= v`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(
    g: &DynamicNetwork,
    mut writer: W,
) -> std::io::Result<()> {
    for link in g.links() {
        writeln!(writer, "{} {} {}", link.u, link.v, link.t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_defaults() {
        let text = "# header\n% konect\n\n0 1\n2 3 9\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.timestamps_between(0, 1), vec![0]);
        assert_eq!(g.timestamps_between(2, 3), vec![9]);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "0 1 1\nnot a line\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_target() {
        let err = read_edge_list("5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("target node"));
    }

    #[test]
    fn rejects_self_loop() {
        let err = read_edge_list("4 4 1\n".as_bytes()).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 4 });
    }

    #[test]
    fn round_trip() {
        let g: DynamicNetwork =
            [(0, 1, 1), (1, 2, 2), (0, 1, 5)].into_iter().collect();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.link_count(), g.link_count());
        assert_eq!(g2.timestamps_between(0, 1), vec![1, 5]);
    }
}
