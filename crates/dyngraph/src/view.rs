//! [`GraphView`]: read-only graph access shared by every representation.
//!
//! Extraction code downstream (ssf-core's hop/structure pipeline) only
//! ever *reads* a graph: distinct neighbors for BFS frontiers, incident
//! links for structure collapsing, the revision counter for cache
//! invalidation. This trait captures exactly that read surface so the
//! pipeline runs unchanged over the mutable [`DynamicNetwork`], the
//! immutable CSR [`FrozenGraph`](crate::FrozenGraph), and the
//! copy-on-write [`OverlayView`](crate::OverlayView) published by a
//! [`DeltaGraph`](crate::DeltaGraph).
//!
//! The contract is bit-identity: every implementation must serve the
//! same per-node orderings as [`DynamicNetwork`] — distinct neighbors
//! sorted ascending, incident links in insertion order — so features
//! extracted through any view reproduce the mutable graph's output
//! exactly (property-tested in `crates/dyngraph/tests/`).

use crate::compact::PackedLinks;
use crate::{DynamicNetwork, NodeId, Timestamp};

/// Iterator over the `(neighbor, timestamp)` incidences of one node, in
/// insertion order.
///
/// Unifies the two physical layouts behind [`GraphView::incident_links`]:
/// a slice of pairs ([`DynamicNetwork`]'s adjacency rows and overlay
/// rows) and the split parallel arrays of a CSR
/// [`FrozenGraph`](crate::FrozenGraph).
#[derive(Debug, Clone)]
pub struct IncidentLinks<'a> {
    inner: IncidentLinksInner<'a>,
}

#[derive(Debug, Clone)]
enum IncidentLinksInner<'a> {
    /// A slice of `(neighbor, timestamp)` pairs.
    Pairs(std::slice::Iter<'a, (NodeId, Timestamp)>),
    /// Parallel neighbor/timestamp arrays of equal length.
    Split(
        std::iter::Zip<
            std::slice::Iter<'a, NodeId>,
            std::slice::Iter<'a, Timestamp>,
        >,
    ),
    /// A varint-packed compact-CSR row, decoded on the fly.
    Packed(PackedLinks<'a>),
}

impl<'a> IncidentLinks<'a> {
    /// Wraps a slice of `(neighbor, timestamp)` pairs.
    pub fn from_pairs(links: &'a [(NodeId, Timestamp)]) -> Self {
        IncidentLinks {
            inner: IncidentLinksInner::Pairs(links.iter()),
        }
    }

    /// Zips parallel neighbor/timestamp arrays (CSR row slices).
    ///
    /// Both slices must have the same length.
    pub fn from_split(
        neighbors: &'a [NodeId],
        timestamps: &'a [Timestamp],
    ) -> Self {
        debug_assert_eq!(neighbors.len(), timestamps.len());
        IncidentLinks {
            inner: IncidentLinksInner::Split(
                neighbors.iter().zip(timestamps.iter()),
            ),
        }
    }

    /// Wraps a compact-CSR packed-row decoder.
    pub(crate) fn from_packed(links: PackedLinks<'_>) -> IncidentLinks<'_> {
        IncidentLinks {
            inner: IncidentLinksInner::Packed(links),
        }
    }
}

impl Iterator for IncidentLinks<'_> {
    type Item = (NodeId, Timestamp);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IncidentLinksInner::Pairs(it) => it.next().copied(),
            IncidentLinksInner::Split(it) => it.next().map(|(&v, &t)| (v, t)),
            IncidentLinksInner::Packed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IncidentLinksInner::Pairs(it) => it.size_hint(),
            IncidentLinksInner::Split(it) => it.size_hint(),
            IncidentLinksInner::Packed(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for IncidentLinks<'_> {}

/// Read-only view of a timestamped undirected multigraph.
///
/// Implemented by [`DynamicNetwork`], [`FrozenGraph`](crate::FrozenGraph),
/// [`DeltaGraph`](crate::DeltaGraph) and [`OverlayView`](crate::OverlayView).
/// All orderings match [`DynamicNetwork`]: [`Self::distinct_neighbors`]
/// is sorted ascending, [`Self::incident_links`] preserves insertion
/// order. Node ids are dense `0..node_count()`; the per-node accessors
/// may panic (slice-backed views) or answer empty (overlay views) for
/// out-of-range ids, so callers validate ids first.
pub trait GraphView {
    /// Number of nodes (ids are dense `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Total number of timestamped links (multi-links counted
    /// separately).
    fn link_count(&self) -> usize;

    /// The graph-version counter: strictly increases on every accepted
    /// mutation of the underlying graph and never otherwise. Frozen
    /// views report the revision they were frozen at.
    fn revision(&self) -> u64;

    /// Smallest timestamp present, or `None` when there are no links.
    fn min_timestamp(&self) -> Option<Timestamp>;

    /// Largest timestamp present, or `None` when there are no links.
    fn max_timestamp(&self) -> Option<Timestamp>;

    /// Distinct neighbors of `u`, sorted ascending.
    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId];

    /// All `(neighbor, timestamp)` incidences of `u`, one per link, in
    /// insertion order.
    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_>;

    /// Number of incident links of `u` counting multi-links.
    fn multi_degree(&self, u: NodeId) -> usize;

    /// Alias of [`Self::distinct_neighbors`], matching the
    /// [`DynamicNetwork::neighbors`] name.
    fn neighbors(&self, u: NodeId) -> &[NodeId] {
        self.distinct_neighbors(u)
    }

    /// Number of distinct neighbors of `u` (the "static" degree).
    fn degree(&self, u: NodeId) -> usize {
        self.distinct_neighbors(u).len()
    }

    /// `true` if the graph has no links.
    fn is_empty(&self) -> bool {
        self.link_count() == 0
    }

    /// `true` if at least one link connects `u` and `v`.
    fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.node_count();
        if (u as usize) >= n || (v as usize) >= n {
            return false;
        }
        // Scan the smaller incidence list.
        let (a, b) = if self.multi_degree(u) <= self.multi_degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.incident_links(a).any(|(w, _)| w == b)
    }

    /// Number of links between `u` and `v` (0 if none).
    fn links_between(&self, u: NodeId, v: NodeId) -> usize {
        let n = self.node_count();
        if (u as usize) >= n || (v as usize) >= n {
            return 0;
        }
        let (a, b) = if self.multi_degree(u) <= self.multi_degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.incident_links(a).filter(|&(w, _)| w == b).count()
    }

    /// Timestamps of every link between `u` and `v`, in insertion order.
    fn timestamps_between(&self, u: NodeId, v: NodeId) -> Vec<Timestamp> {
        if (u as usize) >= self.node_count() {
            return Vec::new();
        }
        self.incident_links(u)
            .filter(|&(w, _)| w == v)
            .map(|(_, t)| t)
            .collect()
    }
}

impl GraphView for DynamicNetwork {
    fn node_count(&self) -> usize {
        DynamicNetwork::node_count(self)
    }

    fn link_count(&self) -> usize {
        DynamicNetwork::link_count(self)
    }

    fn revision(&self) -> u64 {
        DynamicNetwork::revision(self)
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        DynamicNetwork::min_timestamp(self)
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        DynamicNetwork::max_timestamp(self)
    }

    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
        DynamicNetwork::neighbors(self, u)
    }

    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
        IncidentLinks::from_pairs(DynamicNetwork::incident_links(self, u))
    }

    fn multi_degree(&self, u: NodeId) -> usize {
        DynamicNetwork::multi_degree(self, u)
    }

    fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        DynamicNetwork::has_link(self, u, v)
    }

    fn links_between(&self, u: NodeId, v: NodeId) -> usize {
        DynamicNetwork::link_count_between(self, u, v)
    }

    fn timestamps_between(&self, u: NodeId, v: NodeId) -> Vec<Timestamp> {
        DynamicNetwork::timestamps_between(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 3);
        g.add_link(1, 2, 5);
        g.add_link(0, 1, 4);
        g.add_link(3, 1, 2);
        g
    }

    /// The trait impl on `DynamicNetwork` must agree with the inherent
    /// methods it forwards to, including the provided defaults.
    #[test]
    fn dynamic_network_view_matches_inherent() {
        let g = sample();
        let v: &dyn Fn(&DynamicNetwork) = &|g| {
            assert_eq!(GraphView::node_count(g), g.node_count());
            assert_eq!(GraphView::link_count(g), g.link_count());
            assert_eq!(GraphView::revision(g), g.revision());
            assert_eq!(GraphView::min_timestamp(g), g.min_timestamp());
            assert_eq!(GraphView::max_timestamp(g), g.max_timestamp());
            for u in 0..g.node_count() as NodeId {
                assert_eq!(GraphView::distinct_neighbors(g, u), g.neighbors(u));
                assert_eq!(GraphView::neighbors(g, u), g.neighbors(u));
                assert_eq!(GraphView::degree(g, u), g.degree(u));
                assert_eq!(GraphView::multi_degree(g, u), g.multi_degree(u));
                let links: Vec<_> = GraphView::incident_links(g, u).collect();
                assert_eq!(links.as_slice(), g.incident_links(u));
                for w in 0..g.node_count() as NodeId + 2 {
                    assert_eq!(GraphView::has_link(g, u, w), g.has_link(u, w));
                    assert_eq!(
                        GraphView::links_between(g, u, w),
                        g.link_count_between(u, w)
                    );
                    assert_eq!(
                        GraphView::timestamps_between(g, u, w),
                        g.timestamps_between(u, w)
                    );
                }
            }
        };
        v(&g);
        v(&DynamicNetwork::new());
    }

    /// Generic defaults behave like the `DynamicNetwork` originals even
    /// without the overrides (exercised through a thin wrapper that only
    /// supplies the required methods).
    #[test]
    fn provided_defaults_match_overrides() {
        struct Raw<'a>(&'a DynamicNetwork);
        impl GraphView for Raw<'_> {
            fn node_count(&self) -> usize {
                self.0.node_count()
            }
            fn link_count(&self) -> usize {
                self.0.link_count()
            }
            fn revision(&self) -> u64 {
                self.0.revision()
            }
            fn min_timestamp(&self) -> Option<Timestamp> {
                self.0.min_timestamp()
            }
            fn max_timestamp(&self) -> Option<Timestamp> {
                self.0.max_timestamp()
            }
            fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
                self.0.neighbors(u)
            }
            fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
                IncidentLinks::from_pairs(self.0.incident_links(u))
            }
            fn multi_degree(&self, u: NodeId) -> usize {
                self.0.multi_degree(u)
            }
        }
        let g = sample();
        let raw = Raw(&g);
        for u in 0..g.node_count() as NodeId + 2 {
            for w in 0..g.node_count() as NodeId + 2 {
                assert_eq!(raw.has_link(u, w), g.has_link(u, w));
                assert_eq!(raw.links_between(u, w), g.link_count_between(u, w));
                assert_eq!(
                    raw.timestamps_between(u, w),
                    g.timestamps_between(u, w)
                );
            }
        }
        assert!(!raw.is_empty());
    }

    #[test]
    fn incident_links_split_layout_round_trips() {
        let nbrs = [1u32, 2, 1];
        let times = [3u32, 5, 4];
        let got: Vec<_> = IncidentLinks::from_split(&nbrs, &times).collect();
        assert_eq!(got, vec![(1, 3), (2, 5), (1, 4)]);
        let it = IncidentLinks::from_split(&nbrs, &times);
        assert_eq!(it.len(), 3);
    }
}
