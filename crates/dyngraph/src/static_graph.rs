use crate::{DynamicNetwork, NodeId};

/// A simple undirected graph derived from a [`DynamicNetwork`] by collapsing
/// multi-links, with the multi-link count of every edge kept as an integer
/// weight.
///
/// This is the view the paper's *static* baselines (CN, Jaccard, PA, AA, RA,
/// Katz, RW, NMF, WLF) operate on: "we ignore all the timestamps and multiple
/// history links between nodes to construct the static version" (§VI-C2).
/// rWRA additionally uses the multi-link counts as link weights.
///
/// # Example
///
/// ```rust
/// use dyngraph::DynamicNetwork;
///
/// let g: DynamicNetwork =
///     [(0, 1, 1), (0, 1, 4), (1, 2, 2)].into_iter().collect();
/// let s = g.to_static();
/// assert_eq!(s.edge_count(), 2);
/// assert_eq!(s.weight(0, 1), 2); // two multi-links collapsed
/// assert_eq!(s.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StaticGraph {
    /// Sorted distinct neighbors per node.
    adj: Vec<Vec<NodeId>>,
    /// `weights[u][i]` = multi-link count towards `adj[u][i]`.
    weights: Vec<Vec<u32>>,
    edge_count: usize,
}

impl StaticGraph {
    /// Builds the collapsed view of a dynamic network.
    pub fn from_dynamic(g: &DynamicNetwork) -> Self {
        let n = g.node_count();
        let mut adj = vec![Vec::new(); n];
        let mut weights = vec![Vec::new(); n];
        let mut edge_count = 0;
        for u in 0..n {
            let mut incident: Vec<NodeId> = g
                .incident_links(u as NodeId)
                .iter()
                .map(|&(v, _)| v)
                .collect();
            incident.sort_unstable();
            let mut i = 0;
            while i < incident.len() {
                let v = incident[i];
                let mut count = 0u32;
                while i < incident.len() && incident[i] == v {
                    count += 1;
                    i += 1;
                }
                adj[u].push(v);
                weights[u].push(count);
                if (u as NodeId) < v {
                    edge_count += 1;
                }
            }
        }
        StaticGraph {
            adj,
            weights,
            edge_count,
        }
    }

    /// Builds a simple graph directly from `(u, v)` pairs with unit weights.
    ///
    /// Duplicate pairs accumulate weight. Self-loops are skipped.
    pub fn from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(
        edges: I,
    ) -> Self {
        let mut g = DynamicNetwork::new();
        for (u, v) in edges {
            if u != v {
                g.add_link(u, v, 0);
            }
        }
        Self::from_dynamic(&g)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Sorted distinct neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adj[u as usize]
    }

    /// Degree of `u` (distinct neighbors).
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// `true` if the simple graph has edge `{u, v}`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.adj.len() {
            return false;
        }
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Multi-link count of edge `{u, v}`; 0 if the edge is absent.
    pub fn weight(&self, u: NodeId, v: NodeId) -> u32 {
        if (u as usize) >= self.adj.len() {
            return 0;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(i) => self.weights[u as usize][i],
            Err(_) => 0,
        }
    }

    /// Sum of edge weights incident to `u` (the strength `S_u` of rWRA).
    pub fn strength(&self, u: NodeId) -> u64 {
        self.weights[u as usize].iter().map(|&w| w as u64).sum()
    }

    /// Sorted common neighbors of `u` and `v`.
    pub fn common_neighbors(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Iterates distinct edges once as `(u, v, weight)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(move |(u, nbrs)| {
            nbrs.iter().enumerate().filter_map(move |(i, &v)| {
                let u = u as NodeId;
                (u < v).then(|| (u, v, self.weights[u as usize][i]))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaticGraph {
        // 0-1 (x2), 1-2, 2-3, 1-3
        let g: DynamicNetwork =
            [(0, 1, 1), (0, 1, 2), (1, 2, 3), (2, 3, 4), (1, 3, 5)]
                .into_iter()
                .collect();
        g.to_static()
    }

    #[test]
    fn collapse_counts_edges_once() {
        let s = sample();
        assert_eq!(s.node_count(), 4);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.weight(0, 1), 2);
        assert_eq!(s.weight(1, 0), 2);
        assert_eq!(s.weight(1, 2), 1);
        assert_eq!(s.weight(0, 3), 0);
    }

    #[test]
    fn degrees_and_strengths() {
        let s = sample();
        assert_eq!(s.degree(1), 3);
        assert_eq!(s.strength(1), 4); // 2 + 1 + 1
        assert_eq!(s.strength(0), 2);
    }

    #[test]
    fn common_neighbors_merge() {
        let s = sample();
        assert_eq!(s.common_neighbors(0, 2), vec![1]);
        assert_eq!(s.common_neighbors(0, 3), vec![1]);
        assert_eq!(s.common_neighbors(0, 1), Vec::<NodeId>::new());
        assert_eq!(s.common_neighbors(2, 1), vec![3]);
    }

    #[test]
    fn edges_iterated_once() {
        let s = sample();
        let e: Vec<_> = s.edges().collect();
        assert_eq!(e.len(), 4);
        assert!(e.contains(&(0, 1, 2)));
        assert!(e.contains(&(1, 3, 1)));
    }

    #[test]
    fn from_edges_accumulates() {
        let s = StaticGraph::from_edges([(0, 1), (1, 0), (1, 2), (2, 2)]);
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.weight(0, 1), 2);
        assert_eq!(s.weight(1, 2), 1);
    }

    #[test]
    fn out_of_range_queries_are_false() {
        let s = sample();
        assert!(!s.has_edge(99, 0));
        assert_eq!(s.weight(99, 0), 0);
    }
}
