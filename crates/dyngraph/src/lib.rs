//! Timestamped undirected multigraph substrate.
//!
//! The paper (Definition 1) models a *dynamic network* as `G = (V, E, L)`
//! where every link `e = (n_i, n_j, l)` carries a timestamp `l` and multiple
//! links are allowed between the same pair of nodes. This crate provides:
//!
//! * [`DynamicNetwork`] — the timestamped multigraph itself, with period
//!   slicing (`G_{[t_p, t_q)}`, Definition 2) and conversion to a
//!   deduplicated [`StaticGraph`] view.
//! * [`StaticGraph`] — a simple undirected graph with multi-edge counts kept
//!   as integer weights, used by the static baseline features (CN, AA, …).
//! * [`GraphView`] — the read-only trait every representation serves, and
//!   the immutable CSR [`FrozenGraph`] / copy-on-write [`DeltaGraph`] +
//!   [`OverlayView`] family built on it for O(delta) snapshot publishing.
//! * [`traversal`] — BFS distance maps and Dijkstra shortest paths, generic
//!   over any [`Adjacency`] source.
//! * [`io`] — KONECT-style `u v t` edge-list parsing and writing.
//! * [`stats`] — the Table II statistics (node count, link count, average
//!   degree, time span).
//!
//! # Example
//!
//! ```rust
//! # fn main() -> Result<(), dyngraph::GraphError> {
//! use dyngraph::DynamicNetwork;
//!
//! let mut g = DynamicNetwork::new();
//! g.add_link(0, 1, 5);
//! g.add_link(0, 1, 7); // multi-link, later timestamp
//! g.add_link(1, 2, 9);
//! assert_eq!(g.link_count(), 3);
//! assert_eq!(g.link_count_between(0, 1), 2);
//! let before_nine = g.period(0, 9)?;
//! assert_eq!(before_nine.link_count(), 2);
//! # Ok(())
//! # }
//! ```

mod compact;
mod error;
mod frozen;
pub mod io;
pub mod metrics;
mod network;
mod static_graph;
pub mod stats;
pub mod traversal;
mod view;
mod window;

pub use error::GraphError;
pub use frozen::{
    CompactGraphParts, DeltaGraph, FrozenGraph, FrozenGraphParts, OverlayView,
    RawStorage, StorageMode,
};
pub use network::{DynamicNetwork, Link};
pub use static_graph::StaticGraph;
pub use traversal::Adjacency;
pub use view::{GraphView, IncidentLinks};
pub use window::{AdvanceReport, Window, WindowedView};

/// Identifier of a node. Nodes are dense integers `0..node_count()`.
pub type NodeId = u32;

/// Integer timestamp of a link (the paper normalizes timestamps to
/// `[1, time_span]` per dataset; any non-negative integer works here).
pub type Timestamp = u32;
