//! Structural graph metrics beyond Table II: clustering, components,
//! degree distribution. Used to validate that the synthetic dataset
//! substitutes carry the topology class they claim (hub skew, community
//! clustering) and generally useful for network analysis.

use crate::{traversal, NodeId, StaticGraph};

/// Global clustering coefficient (transitivity):
/// `3 × triangles / connected triples`.
///
/// Returns 0.0 for graphs without any connected triple.
pub fn global_clustering(g: &StaticGraph) -> f64 {
    let mut triangles = 0u64;
    let mut triples = 0u64;
    for u in 0..g.node_count() as NodeId {
        let d = g.degree(u) as u64;
        triples += d.saturating_sub(1) * d / 2;
        let nbrs = g.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    if triples == 0 {
        0.0
    } else {
        // Each triangle is counted once per corner = 3 times.
        triangles as f64 / triples as f64
    }
}

/// Local clustering coefficient of one node: fraction of neighbor pairs
/// that are themselves connected. 0.0 for degree < 2.
pub fn local_clustering(g: &StaticGraph, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Connected components as sorted node lists, largest first.
pub fn connected_components(g: &StaticGraph) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in 0..n as NodeId {
        if seen[start as usize] {
            continue;
        }
        let comp = traversal::component(g, start);
        for &v in &comp {
            seen[v as usize] = true;
        }
        components.push(comp);
    }
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));
    components
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &StaticGraph) -> Vec<usize> {
    let max_d = (0..g.node_count() as NodeId)
        .map(|u| g.degree(u))
        .max()
        .unwrap_or(0);
    let mut hist = vec![0usize; max_d + 1];
    for u in 0..g.node_count() as NodeId {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Gini coefficient of the degree distribution — a scalar measure of hub
/// skew (0 = perfectly even, → 1 = a few hubs hold everything).
pub fn degree_gini(g: &StaticGraph) -> f64 {
    let mut degrees: Vec<f64> = (0..g.node_count() as NodeId)
        .map(|u| g.degree(u) as f64)
        .collect();
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.sort_by(f64::total_cmp);
    let n = degrees.len() as f64;
    let total: f64 = degrees.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = degrees
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> StaticGraph {
        StaticGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(global_clustering(&g), 1.0);
        assert_eq!(local_clustering(&g, 0), 1.0);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = StaticGraph::from_edges([(0, 1), (0, 2), (0, 3)]);
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(local_clustering(&g, 1), 0.0); // degree 1
    }

    #[test]
    fn clustering_mixed() {
        let g = triangle_plus_pendant();
        // triples: deg(0)=2→1, deg(1)=2→1, deg(2)=3→3, deg(3)=1→0 ⇒ 5
        // triangles counted per corner: 3
        assert!((global_clustering(&g) - 3.0 / 5.0).abs() < 1e-12);
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn components_found_and_sorted() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (4, 5)]);
        let comps = connected_components(&g);
        // node 3 is an isolated id (created by edge (4,5) growing the set).
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![4, 5]);
        assert_eq!(comps[2], vec![3]);
    }

    #[test]
    fn histogram_counts_degrees() {
        let g = triangle_plus_pendant();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 1, 2, 1]); // one deg-1, two deg-2, one deg-3
    }

    #[test]
    fn gini_zero_for_regular_graph() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_gini(&g).abs() < 1e-12);
    }

    #[test]
    fn gini_positive_for_star() {
        let edges: Vec<(u32, u32)> = (1..20).map(|i| (0, i)).collect();
        let star = StaticGraph::from_edges(edges);
        assert!(degree_gini(&star) > 0.4);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = StaticGraph::from_edges(std::iter::empty());
        assert_eq!(global_clustering(&g), 0.0);
        assert_eq!(degree_gini(&g), 0.0);
        assert!(connected_components(&g).is_empty());
        assert_eq!(degree_histogram(&g), vec![0usize; 1]);
    }
}
