//! Sliding-window temporal views: a graph that forgets.
//!
//! The paper predicts over *dynamic* networks, and its natural serving
//! shape (DyLink2Vec, Sarkar et al.) is a bounded temporal window: only
//! links whose timestamp lies in `[horizon - width, horizon]` — both
//! bounds **inclusive** — participate in extraction. [`WindowedView`]
//! is that graph: a [`DynamicNetwork`] that ages links out as the
//! horizon advances, with expiry an ordinary revision-bumping mutation
//! so every downstream cache invalidates through the one contract it
//! already honors.
//!
//! # Expiry mechanics
//!
//! Three invariants make expiry amortized O(expired · log E) with no
//! rescan of unaffected nodes:
//!
//! * **Per-node timestamp-sorted rows.** Links are placed at their
//!   time-sorted position (stable — equal timestamps keep arrival
//!   order), so the expired portion of any row is a *prefix* and one
//!   `partition_point` finds it. Monotone streams (the facade's case)
//!   degenerate to plain O(1) appends.
//! * **A global min-heap of live links** keyed by timestamp. An
//!   `advance` pops exactly the expired links — each link is pushed
//!   once and popped once — and the surviving heap top is the new
//!   minimum timestamp for free.
//! * **Prefix drains only on affected rows.** The popped links name the
//!   nodes that lost something; only those rows are touched.
//!
//! # Revision arithmetic
//!
//! An accepted [`WindowedView::advance`] bumps the revision exactly
//! once, like an accepted insert — even when nothing expired (the
//! window itself changed, and snapshots must not mix windows).
//! Advancing to the *current* horizon is a no-op and bumps nothing,
//! mirroring `ensure_node` of an existing node. An insert whose
//! timestamp exceeds the horizon first advances implicitly (one bump)
//! and then inserts (a second bump) — identical to calling
//! [`WindowedView::advance`] followed by the insert.
//!
//! # Canonical row order
//!
//! A windowed graph's observable row order is *stable time order*, not
//! raw insertion order. This is deliberate: it makes the windowed graph
//! bit-identical to a [`DynamicNetwork`] rebuilt from scratch from the
//! surviving links inserted in `(timestamp, original order)` — the
//! oracle `tests/window_prop.rs` holds it to.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::view::{GraphView, IncidentLinks};
use crate::{DynamicNetwork, GraphError, NodeId, Timestamp};

/// An inclusive sliding time window `[cutoff, horizon]` where
/// `cutoff = horizon - width` (saturating at zero).
///
/// A zero-width window is valid and keeps only links stamped exactly at
/// the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Width of the window; the cutoff trails the horizon by this much.
    pub width: Timestamp,
    /// Inclusive upper bound: the newest admissible timestamp.
    pub horizon: Timestamp,
}

impl Window {
    /// Inclusive lower bound `horizon - width`, saturating at zero.
    pub fn cutoff(&self) -> Timestamp {
        self.horizon.saturating_sub(self.width)
    }

    /// Whether `t` lies inside the window (both bounds inclusive).
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.cutoff() && t <= self.horizon
    }
}

/// What one accepted horizon advance (explicit or implicit) did.
///
/// The affected-node list is the exact cache-invalidation footprint: a
/// memoized subgraph can only have changed if it contains one of these
/// nodes (removing a link touching no node of a BFS ball cannot alter
/// the ball — every shortest path into it runs through it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceReport {
    /// The new horizon.
    pub horizon: Timestamp,
    /// The new inclusive lower bound (`horizon - width`, saturating).
    pub cutoff: Timestamp,
    /// Number of links that aged out.
    pub expired_links: usize,
    /// Every node that lost at least one link, sorted ascending,
    /// deduplicated. Empty when nothing expired.
    pub affected: Vec<NodeId>,
    /// Smallest surviving timestamp after expiry (`None` when the
    /// window emptied) — handed to mirrors so they need no index of
    /// their own.
    pub min_timestamp: Option<Timestamp>,
}

/// A [`DynamicNetwork`] behind a sliding time window (see the module
/// docs above for the expiry semantics).
///
/// Implements [`GraphView`] by delegating to the inner network, which
/// holds exactly the in-window links — so the whole extraction pipeline
/// (and `Split`-based refits via [`WindowedView::network`]) runs on it
/// unchanged. An unbounded view (no width) never expires anything and
/// behaves byte-for-byte like a plain `DynamicNetwork`, including
/// insertion-ordered rows and zero index upkeep.
#[derive(Debug, Clone, Default)]
pub struct WindowedView {
    inner: DynamicNetwork,
    /// `None` = unbounded: no expiry, no index, plain appends.
    width: Option<Timestamp>,
    horizon: Timestamp,
    /// One `(t, u, v)` entry per live in-window link (`u < v`);
    /// empty and unmaintained when unbounded.
    heap: BinaryHeap<Reverse<(Timestamp, NodeId, NodeId)>>,
}

impl WindowedView {
    /// An empty view with no window: links never expire.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// An empty view keeping links in `[horizon - width, horizon]`,
    /// starting at horizon 0.
    pub fn with_width(width: Timestamp) -> Self {
        WindowedView {
            width: Some(width),
            ..Self::default()
        }
    }

    /// Wraps an existing network without re-filtering it, preserving
    /// its revision — the recovery constructor (`restore`/WAL replay
    /// hand back a graph that was persisted *from* a windowed view, so
    /// every link is already in-window).
    ///
    /// Rows are canonicalized to stable time order (a no-op for graphs
    /// that came out of a `WindowedView`), and the expiry index is
    /// rebuilt in O(E log E).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::OutOfWindow`] if any link falls outside
    /// `[horizon - width, horizon]` — a corrupted or mismatched
    /// snapshot must not silently serve links the window would have
    /// expired.
    pub fn from_network(
        mut inner: DynamicNetwork,
        width: Option<Timestamp>,
        horizon: Timestamp,
    ) -> Result<Self, GraphError> {
        let Some(width) = width else {
            let horizon = inner.max_timestamp().unwrap_or(0).max(horizon);
            return Ok(WindowedView {
                inner,
                width: None,
                horizon,
                heap: BinaryHeap::new(),
            });
        };
        let window = Window { width, horizon };
        let mut heap = BinaryHeap::with_capacity(inner.link_count());
        for link in inner.links() {
            if !window.contains(link.t) {
                return Err(GraphError::OutOfWindow {
                    t: link.t,
                    cutoff: window.cutoff(),
                    horizon,
                });
            }
            heap.push(Reverse((link.t, link.u, link.v)));
        }
        inner.sort_rows_by_time();
        Ok(WindowedView {
            inner,
            width: Some(width),
            horizon,
            heap,
        })
    }

    /// Builds a windowed copy of any [`GraphView`], keeping only links
    /// inside `[horizon - width, horizon]` and preserving the node set
    /// (ids stay stable, isolated survivors included).
    ///
    /// The result is a *fresh* graph: its revision counts its own
    /// construction mutations, not `g`'s. Use
    /// [`WindowedView::from_network`] when the revision must carry
    /// over.
    pub fn from_view<G: GraphView + ?Sized>(
        g: &G,
        width: Option<Timestamp>,
        horizon: Timestamp,
    ) -> Self {
        let mut wv = match width {
            Some(w) => Self::with_width(w),
            None => Self::unbounded(),
        };
        wv.horizon = horizon;
        let n = g.node_count();
        if n > 0 {
            wv.inner.ensure_node(n as NodeId - 1);
        }
        // Canonical order: surviving links sorted by (t, first-seen),
        // which is what stable time-sorted rows converge to.
        let mut links: Vec<(Timestamp, NodeId, NodeId)> = Vec::new();
        for u in 0..n as NodeId {
            for (v, t) in g.incident_links(u) {
                if u <= v {
                    links.push((t, u, v));
                }
            }
        }
        links.sort_by_key(|&(t, _, _)| t);
        let window = width.map(|width| Window { width, horizon });
        for (t, u, v) in links {
            if window.is_none_or(|w| w.contains(t)) {
                // Self-loops cannot occur (`u <= v` with `u != v` in any
                // well-formed view) and `t` is in-window, so this cannot
                // fail; ignore the impossible error rather than panic.
                let _ = wv.try_add_link(u, v, t);
            }
        }
        wv
    }

    /// The inner network holding exactly the in-window links.
    pub fn network(&self) -> &DynamicNetwork {
        &self.inner
    }

    /// Unwraps into the inner network, discarding the window state.
    pub fn into_network(self) -> DynamicNetwork {
        self.inner
    }

    /// The window width, or `None` when unbounded.
    pub fn width(&self) -> Option<Timestamp> {
        self.width
    }

    /// The current horizon (the newest admissible timestamp). For
    /// unbounded views this tracks the largest timestamp seen.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// The current window, or `None` when unbounded.
    pub fn window(&self) -> Option<Window> {
        self.width.map(|width| Window {
            width,
            horizon: self.horizon,
        })
    }

    /// Inclusive lower bound of the window, or `None` when unbounded.
    pub fn cutoff(&self) -> Option<Timestamp> {
        self.window().map(|w| w.cutoff())
    }

    /// Ensures node `id` exists; bumps the revision once per growth,
    /// exactly like [`DynamicNetwork::ensure_node`].
    pub fn ensure_node(&mut self, id: NodeId) {
        self.inner.ensure_node(id);
    }

    /// Slides the horizon forward to `to`, expiring every link with
    /// timestamp `< to - width` and bumping the revision exactly once —
    /// an accepted advance is a mutation like an insert, *even when
    /// nothing expired* (downstream snapshots key on the window).
    ///
    /// Advancing to the current horizon is a no-op: `Ok(None)`, no
    /// bump. Cost: O(expired · log E) heap pops plus a prefix drain of
    /// each affected row; nodes that lost nothing are never touched.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::HorizonRegressed`] if `to < horizon` —
    /// expired links are gone, so windows only slide forward.
    pub fn advance(
        &mut self,
        to: Timestamp,
    ) -> Result<Option<AdvanceReport>, GraphError> {
        if to < self.horizon {
            return Err(GraphError::HorizonRegressed {
                from: self.horizon,
                to,
            });
        }
        if to == self.horizon {
            return Ok(None);
        }
        self.horizon = to;
        Ok(Some(self.expire_and_bump()))
    }

    /// Adds an undirected link at its time-sorted row position.
    ///
    /// `t > horizon` first advances the horizon implicitly — identical
    /// to [`WindowedView::advance`]`(t)` followed by the insert, two
    /// revision bumps — and reports what that advance expired
    /// (`Ok(Some(report))`). An in-window insert is one bump,
    /// `Ok(None)`.
    ///
    /// # Errors
    ///
    /// [`GraphError::SelfLoop`] if `u == v`;
    /// [`GraphError::OutOfWindow`] if `t < horizon - width` (the link
    /// expired before it arrived — nothing is mutated).
    pub fn try_add_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> Result<Option<AdvanceReport>, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        let Some(width) = self.width else {
            self.horizon = self.horizon.max(t);
            self.inner.try_add_link(u, v, t)?;
            return Ok(None);
        };
        let cutoff = self.horizon.saturating_sub(width);
        if t < cutoff {
            return Err(GraphError::OutOfWindow {
                t,
                cutoff,
                horizon: self.horizon,
            });
        }
        let report = if t > self.horizon {
            self.horizon = t;
            Some(self.expire_and_bump())
        } else {
            None
        };
        self.inner.insert_link_sorted(u, v, t)?;
        self.heap.push(Reverse((t, u.min(v), u.max(v))));
        Ok(report)
    }

    /// Pops expired links off the heap, drains the affected row
    /// prefixes, and books the whole thing as one revision bump.
    fn expire_and_bump(&mut self) -> AdvanceReport {
        let cutoff = self.width.map_or(0, |w| self.horizon.saturating_sub(w));
        let mut affected: Vec<NodeId> = Vec::new();
        let mut expired = 0usize;
        while let Some(&Reverse((t, u, v))) = self.heap.peek() {
            if t >= cutoff {
                break;
            }
            self.heap.pop();
            expired += 1;
            affected.push(u);
            affected.push(v);
        }
        affected.sort_unstable();
        affected.dedup();
        for &u in &affected {
            self.inner.expire_row_prefix(u, cutoff);
        }
        let min_timestamp = self.heap.peek().map(|&Reverse((t, _, _))| t);
        self.inner.finish_expiry(expired, min_timestamp);
        AdvanceReport {
            horizon: self.horizon,
            cutoff,
            expired_links: expired,
            affected,
            min_timestamp: self.inner.min_timestamp(),
        }
    }
}

impl GraphView for WindowedView {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn link_count(&self) -> usize {
        self.inner.link_count()
    }

    fn revision(&self) -> u64 {
        self.inner.revision()
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        self.inner.min_timestamp()
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        self.inner.max_timestamp()
    }

    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.inner.neighbors(u)
    }

    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
        IncidentLinks::from_pairs(self.inner.incident_links(u))
    }

    fn multi_degree(&self, u: NodeId) -> usize {
        self.inner.multi_degree(u)
    }

    fn has_link(&self, u: NodeId, v: NodeId) -> bool {
        self.inner.has_link(u, v)
    }

    fn links_between(&self, u: NodeId, v: NodeId) -> usize {
        self.inner.link_count_between(u, v)
    }

    fn timestamps_between(&self, u: NodeId, v: NodeId) -> Vec<Timestamp> {
        self.inner.timestamps_between(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle: a fresh network of only the given links, inserted in
    /// `(t, original order)` order over a preserved node set.
    fn rebuild(
        nodes: usize,
        links: &[(NodeId, NodeId, Timestamp)],
    ) -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        if nodes > 0 {
            g.ensure_node(nodes as NodeId - 1);
        }
        let mut sorted = links.to_vec();
        sorted.sort_by_key(|&(_, _, t)| t);
        for &(u, v, t) in &sorted {
            g.add_link(u, v, t);
        }
        g
    }

    fn assert_content_eq(wv: &WindowedView, want: &DynamicNetwork) {
        assert_eq!(wv.network(), want);
        for u in 0..want.node_count() as NodeId {
            assert_eq!(wv.distinct_neighbors(u), want.neighbors(u));
            let got: Vec<_> = wv.incident_links(u).collect();
            assert_eq!(got.as_slice(), want.incident_links(u));
        }
    }

    #[test]
    fn unbounded_view_matches_plain_network() {
        let mut wv = WindowedView::unbounded();
        let mut net = DynamicNetwork::new();
        for &(u, v, t) in &[(0, 1, 5), (1, 2, 3), (0, 2, 9), (0, 1, 3)] {
            assert!(wv.try_add_link(u, v, t).unwrap().is_none());
            net.add_link(u, v, t);
        }
        assert_eq!(wv.network(), &net);
        assert_eq!(wv.revision(), net.revision());
        assert_eq!(wv.horizon(), 9);
        assert_eq!(wv.window(), None);
        assert_eq!(wv.cutoff(), None);
    }

    #[test]
    fn advance_expires_old_links() {
        let mut wv = WindowedView::with_width(10);
        wv.try_add_link(0, 1, 1).unwrap();
        wv.try_add_link(1, 2, 5).unwrap();
        wv.try_add_link(2, 3, 10).unwrap();
        let report = wv.advance(15).unwrap().unwrap();
        assert_eq!(report.cutoff, 5);
        assert_eq!(report.expired_links, 1);
        assert_eq!(report.affected, vec![0, 1]);
        assert_eq!(report.min_timestamp, Some(5));
        assert_content_eq(&wv, &rebuild(4, &[(1, 2, 5), (2, 3, 10)]));
    }

    #[test]
    fn advance_bumps_revision_even_without_expiry() {
        let mut wv = WindowedView::with_width(100);
        wv.try_add_link(0, 1, 1).unwrap();
        let r = wv.revision();
        let report = wv.advance(50).unwrap().unwrap();
        assert_eq!(report.expired_links, 0);
        assert!(report.affected.is_empty());
        assert_eq!(wv.revision(), r + 1);
        // Re-advancing to the same horizon is a no-op, not a mutation.
        assert_eq!(wv.advance(50).unwrap(), None);
        assert_eq!(wv.revision(), r + 1);
    }

    #[test]
    fn advance_backwards_is_rejected() {
        let mut wv = WindowedView::with_width(10);
        wv.advance(20).unwrap();
        assert_eq!(
            wv.advance(19),
            Err(GraphError::HorizonRegressed { from: 20, to: 19 })
        );
    }

    #[test]
    fn insert_beyond_horizon_advances_implicitly() {
        let mut wv = WindowedView::with_width(4);
        wv.try_add_link(0, 1, 1).unwrap();
        wv.try_add_link(1, 2, 3).unwrap();
        let r = wv.revision();
        // t=9 moves the window to [5, 9]: both old links expire.
        let report = wv.try_add_link(0, 2, 9).unwrap().unwrap();
        assert_eq!(report.expired_links, 2);
        assert_eq!(report.affected, vec![0, 1, 2]);
        assert_eq!(wv.revision(), r + 2); // advance bump + insert bump
        assert_content_eq(&wv, &rebuild(3, &[(0, 2, 9)]));
    }

    #[test]
    fn expired_on_arrival_is_rejected_and_mutates_nothing() {
        let mut wv = WindowedView::with_width(5);
        wv.try_add_link(0, 1, 20).unwrap();
        let r = wv.revision();
        assert_eq!(
            wv.try_add_link(1, 2, 14),
            Err(GraphError::OutOfWindow {
                t: 14,
                cutoff: 15,
                horizon: 20
            })
        );
        assert_eq!(wv.revision(), r);
        assert_eq!(wv.link_count(), 1);
        // Exactly at the cutoff is *in* the window (inclusive bound).
        assert!(wv.try_add_link(1, 2, 15).is_ok());
    }

    #[test]
    fn zero_width_window_keeps_only_the_horizon() {
        let mut wv = WindowedView::with_width(0);
        wv.try_add_link(0, 1, 7).unwrap();
        wv.try_add_link(1, 2, 7).unwrap();
        let report = wv.try_add_link(2, 3, 8).unwrap().unwrap();
        assert_eq!(report.expired_links, 2);
        assert_content_eq(&wv, &rebuild(4, &[(2, 3, 8)]));
        assert_eq!(wv.cutoff(), Some(8));
    }

    #[test]
    fn saturating_cutoff_at_u32_max_horizon() {
        let mut wv = WindowedView::with_width(10);
        wv.try_add_link(0, 1, u32::MAX - 5).unwrap();
        let report = wv.advance(u32::MAX).unwrap().unwrap();
        assert_eq!(report.cutoff, u32::MAX - 10);
        assert_eq!(report.expired_links, 0);
        assert_eq!(wv.link_count(), 1);
        // A width wider than the axis saturates the cutoff to zero.
        let mut wide = WindowedView::with_width(u32::MAX);
        wide.try_add_link(0, 1, 0).unwrap();
        wide.advance(u32::MAX).unwrap();
        assert_eq!(wide.cutoff(), Some(0));
        assert_eq!(wide.link_count(), 1);
    }

    #[test]
    fn window_emptied_resets_bounds() {
        let mut wv = WindowedView::with_width(2);
        wv.try_add_link(0, 1, 1).unwrap();
        wv.try_add_link(1, 2, 2).unwrap();
        let report = wv.advance(100).unwrap().unwrap();
        assert_eq!(report.expired_links, 2);
        assert_eq!(report.min_timestamp, None);
        assert!(wv.is_empty());
        assert_eq!(wv.min_timestamp(), None);
        assert_eq!(wv.max_timestamp(), None);
        assert_content_eq(&wv, &rebuild(3, &[]));
    }

    #[test]
    fn out_of_order_in_window_inserts_stay_time_sorted() {
        let mut wv = WindowedView::with_width(100);
        wv.try_add_link(0, 1, 50).unwrap();
        wv.try_add_link(0, 1, 30).unwrap(); // in-window, older
        wv.try_add_link(0, 1, 50).unwrap(); // equal: arrival order kept
        wv.try_add_link(0, 2, 40).unwrap();
        assert_content_eq(
            &wv,
            &rebuild(3, &[(0, 1, 50), (0, 1, 30), (0, 1, 50), (0, 2, 40)]),
        );
        assert_eq!(wv.timestamps_between(0, 1), vec![30, 50, 50]);
    }

    #[test]
    fn from_view_filters_and_canonicalizes() {
        let mut net = DynamicNetwork::new();
        net.extend([(0, 1, 1), (1, 2, 9), (2, 3, 4), (0, 3, 12)]);
        net.ensure_node(5);
        let wv = WindowedView::from_view(&net, Some(8), 12);
        // Window [4, 12]: the t=1 link is gone, node set preserved.
        assert_content_eq(
            &wv,
            &rebuild(6, &[(2, 3, 4), (1, 2, 9), (0, 3, 12)]),
        );
        assert_eq!(wv.horizon(), 12);
        // Unbounded from_view keeps everything.
        let all = WindowedView::from_view(&net, None, 0);
        assert_eq!(all.link_count(), 4);
        assert_eq!(all.horizon(), 12);
    }

    #[test]
    fn from_network_round_trips_revision_and_rejects_out_of_window() {
        let mut wv = WindowedView::with_width(10);
        wv.try_add_link(0, 1, 5).unwrap();
        wv.try_add_link(1, 2, 8).unwrap();
        let revision = wv.revision();
        let inner = wv.clone().into_network();
        let restored =
            WindowedView::from_network(inner.clone(), Some(10), wv.horizon())
                .unwrap();
        assert_eq!(restored.revision(), revision);
        assert_content_eq(&restored, wv.network());
        // Continue mutating in lockstep after restoration.
        let mut a = wv;
        let mut b = restored;
        a.try_add_link(2, 3, 20).unwrap();
        b.try_add_link(2, 3, 20).unwrap();
        assert_eq!(a.network(), b.network());
        assert_eq!(a.revision(), b.revision());
        // A horizon that would have expired a stored link is refused.
        assert!(matches!(
            WindowedView::from_network(inner, Some(1), 8),
            Err(GraphError::OutOfWindow { .. })
        ));
    }

    #[test]
    fn windowed_view_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WindowedView>();
    }
}
