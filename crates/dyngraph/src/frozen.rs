//! Immutable CSR graphs and copy-on-write delta overlays.
//!
//! A [`DynamicNetwork`] is built for ingestion: per-node `Vec` rows that
//! grow in place. Serving wants the opposite trade — an immutable,
//! `Arc`-shared value that any number of reader threads can score
//! against while the single writer keeps mutating its own copy. This
//! module provides that split:
//!
//! * [`FrozenGraph`] — the network frozen into CSR (compressed sparse
//!   row) layout, in one of two physical representations selected by
//!   [`StorageMode`]: the *wide* layout (flat `usize`-offset arrays,
//!   raw `u32` neighbor/timestamp pairs — fastest to decode) or the
//!   *compact* layout (`u32` offsets plus a varint-packed incident
//!   arena behind one `Arc` — roughly 35-45% smaller per link, built
//!   for million-node graphs; see [`crate::compact`]). Both serve the
//!   identical [`GraphView`] surface bit for bit.
//! * [`DeltaGraph`] — the writer-side accumulator: an
//!   `Arc<FrozenGraph>` base plus a small copy-on-write mutation log.
//!   Mutations never touch the shared base; only the rows of nodes the
//!   delta touches are materialized.
//! * [`OverlayView`] — the published, immutable face of a
//!   [`DeltaGraph`]: publishing is a handful of `Arc` clones, O(1) in
//!   graph size, so snapshot cost scales with the delta, not the graph.
//!
//! All three implement [`GraphView`] with [`DynamicNetwork`]-identical
//! orderings, so extraction over any of them is bit-identical
//! (property-tested in `crates/dyngraph/tests/frozen_prop.rs`).

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;

use crate::compact::{CompactData, CompactLimits};
use crate::view::{GraphView, IncidentLinks};
#[cfg(any(test, doc))]
use crate::DynamicNetwork;
use crate::{GraphError, NodeId, Timestamp};

/// Which physical representation a [`FrozenGraph`] uses.
///
/// `Auto` (the default) picks [`StorageMode::Compact`] when the graph
/// is large enough for footprint to matter
/// ([`FrozenGraph::COMPACT_AUTO_MIN_NODES`] nodes or
/// [`FrozenGraph::COMPACT_AUTO_MIN_LINKS`] links) and every count fits
/// the compact layout's `u32` indices; small graphs keep the wide
/// layout, whose raw rows decode faster. The enum is
/// `#[non_exhaustive]`: future layouts (mmap-backed, delta-sharded)
/// may be added without a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum StorageMode {
    /// Choose per graph: compact when large and it fits, else wide.
    #[default]
    Auto,
    /// Flat `usize` offsets + raw `u32` pairs; fastest decode.
    Wide,
    /// `u32` offsets + varint arena behind one `Arc`; smallest.
    Compact,
}

impl StorageMode {
    /// Stable lower-case name (`"auto"` / `"wide"` / `"compact"`),
    /// used by the CLI `--storage` flag and telemetry.
    pub fn as_str(&self) -> &'static str {
        match self {
            StorageMode::Auto => "auto",
            StorageMode::Wide => "wide",
            StorageMode::Compact => "compact",
        }
    }
}

impl std::fmt::Display for StorageMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for StorageMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(StorageMode::Auto),
            "wide" => Ok(StorageMode::Wide),
            "compact" => Ok(StorageMode::Compact),
            other => Err(format!(
                "unknown storage mode {other:?} (expected auto, wide or \
                 compact)"
            )),
        }
    }
}

/// The wide representation: five flat arrays, `usize` offsets.
#[derive(Debug, Clone, PartialEq)]
struct WideData {
    /// Incident-link row bounds: row `u` is `offsets[u]..offsets[u+1]`.
    offsets: Vec<usize>,
    /// Flat neighbor ids, per-node insertion order.
    neighbors: Vec<NodeId>,
    /// Flat timestamps, parallel to `neighbors`.
    timestamps: Vec<Timestamp>,
    /// Distinct-neighbor row bounds.
    nbr_offsets: Vec<usize>,
    /// Flat distinct neighbors, sorted ascending per node.
    nbr_ids: Vec<NodeId>,
}

impl Default for WideData {
    fn default() -> Self {
        WideData {
            offsets: vec![0],
            neighbors: Vec::new(),
            timestamps: Vec::new(),
            nbr_offsets: vec![0],
            nbr_ids: Vec::new(),
        }
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Wide(WideData),
    Compact(Arc<CompactData>),
}

/// An immutable dynamic network in CSR layout.
///
/// Row `u` of the incident-link CSR spans the per-node slice of the
/// flat arrays, preserving [`DynamicNetwork::incident_links`]'s
/// insertion order; the distinct-neighbor CSR mirrors
/// [`DynamicNetwork::neighbors`]'s sorted rows. Freezing copies the
/// source once (O(V + E)); afterwards the graph is shared by `Arc`
/// cloning and read concurrently without locks.
///
/// Two physical layouts exist behind the same API — see
/// [`StorageMode`]. Equality is *logical*: a wide and a compact graph
/// holding the same links compare equal.
///
/// # Example
///
/// ```rust
/// use dyngraph::{DynamicNetwork, FrozenGraph, GraphView, StorageMode};
///
/// let mut g = DynamicNetwork::new();
/// g.add_link(0, 1, 3);
/// g.add_link(1, 2, 5);
/// let frozen = FrozenGraph::from_view(&g);
/// assert_eq!(frozen.node_count(), 3);
/// assert_eq!(frozen.distinct_neighbors(1), &[0, 2]);
/// assert_eq!(frozen.revision(), g.revision());
/// // Small graph: Auto picked the wide layout.
/// assert_eq!(frozen.storage_mode(), StorageMode::Wide);
/// let compact =
///     FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
/// assert_eq!(compact.storage_mode(), StorageMode::Compact);
/// assert_eq!(compact, frozen); // logical equality across layouts
/// ```
#[derive(Debug, Clone)]
pub struct FrozenGraph {
    repr: Repr,
    num_links: usize,
    min_ts: Timestamp,
    max_ts: Timestamp,
    /// Revision of the source graph at freeze time.
    revision: u64,
}

impl Default for FrozenGraph {
    fn default() -> Self {
        FrozenGraph {
            repr: Repr::Wide(WideData::default()),
            num_links: 0,
            min_ts: 0,
            max_ts: 0,
            revision: 0,
        }
    }
}

impl PartialEq for FrozenGraph {
    /// Logical equality: same nodes, links, timestamps, orderings,
    /// bounds and revision — regardless of [`StorageMode`].
    fn eq(&self, other: &Self) -> bool {
        if self.num_links != other.num_links
            || self.min_ts != other.min_ts
            || self.max_ts != other.max_ts
            || self.revision != other.revision
            || self.node_count() != other.node_count()
        {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Wide(a), Repr::Wide(b)) => a == b,
            (Repr::Compact(a), Repr::Compact(b)) => a == b,
            _ => (0..self.node_count() as NodeId).all(|u| {
                self.distinct_neighbors(u) == other.distinct_neighbors(u)
                    && self.incident_links(u).eq(other.incident_links(u))
            }),
        }
    }
}

impl FrozenGraph {
    /// `Auto` switches to the compact layout at this many nodes …
    pub const COMPACT_AUTO_MIN_NODES: usize = 1 << 16;
    /// … or this many links, whichever comes first.
    pub const COMPACT_AUTO_MIN_LINKS: usize = 1 << 18;

    /// An empty frozen graph at revision 0 (wide layout).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Freezes any [`GraphView`] with [`StorageMode::Auto`]: compact
    /// when the graph is large and fits, wide otherwise. Preserves node
    /// ids, per-node link insertion order, timestamps and the revision
    /// counter. O(V + E).
    pub fn from_view<G: GraphView + ?Sized>(g: &G) -> Self {
        if g.node_count() >= Self::COMPACT_AUTO_MIN_NODES
            || g.link_count() >= Self::COMPACT_AUTO_MIN_LINKS
        {
            if let Ok(c) = Self::build_compact(g, &CompactLimits::default()) {
                return c;
            }
        }
        Self::build_wide(g)
    }

    /// Freezes any [`GraphView`] with an explicit [`StorageMode`].
    ///
    /// # Errors
    ///
    /// [`StorageMode::Compact`] returns [`GraphError::TooLarge`] when
    /// any count overflows the compact layout's `u32` indices (the
    /// value is reported, never truncated). `Auto` and `Wide` never
    /// fail.
    pub fn from_view_with<G: GraphView + ?Sized>(
        g: &G,
        mode: StorageMode,
    ) -> Result<Self, GraphError> {
        match mode {
            StorageMode::Auto => Ok(Self::from_view(g)),
            StorageMode::Wide => Ok(Self::build_wide(g)),
            StorageMode::Compact => {
                Self::build_compact(g, &CompactLimits::default())
            }
        }
    }

    fn build_wide<G: GraphView + ?Sized>(g: &G) -> Self {
        let n = g.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        nbr_offsets.push(0);
        let total = 2 * g.link_count();
        let mut neighbors = Vec::with_capacity(total);
        let mut timestamps = Vec::with_capacity(total);
        let mut nbr_ids = Vec::new();
        for u in 0..n as NodeId {
            for (v, t) in g.incident_links(u) {
                neighbors.push(v);
                timestamps.push(t);
            }
            offsets.push(neighbors.len());
            nbr_ids.extend_from_slice(g.distinct_neighbors(u));
            nbr_offsets.push(nbr_ids.len());
        }
        FrozenGraph {
            repr: Repr::Wide(WideData {
                offsets,
                neighbors,
                timestamps,
                nbr_offsets,
                nbr_ids,
            }),
            num_links: g.link_count(),
            min_ts: g.min_timestamp().unwrap_or(0),
            max_ts: g.max_timestamp().unwrap_or(0),
            revision: g.revision(),
        }
    }

    pub(crate) fn build_compact<G: GraphView + ?Sized>(
        g: &G,
        limits: &CompactLimits,
    ) -> Result<Self, GraphError> {
        let data = CompactData::build(g, limits)?;
        Ok(FrozenGraph {
            repr: Repr::Compact(Arc::new(data)),
            num_links: g.link_count(),
            min_ts: g.min_timestamp().unwrap_or(0),
            max_ts: g.max_timestamp().unwrap_or(0),
            revision: g.revision(),
        })
    }

    /// The physical representation in effect — [`StorageMode::Wide`] or
    /// [`StorageMode::Compact`], never [`StorageMode::Auto`].
    pub fn storage_mode(&self) -> StorageMode {
        match &self.repr {
            Repr::Wide(_) => StorageMode::Wide,
            Repr::Compact(_) => StorageMode::Compact,
        }
    }

    /// `true` when the graph uses the compact layout.
    pub fn is_compact(&self) -> bool {
        matches!(self.repr, Repr::Compact(_))
    }

    /// Logical heap footprint of the graph arrays in bytes (element
    /// counts times element width, plus the arena length — capacities
    /// and allocator overhead excluded). The honest numerator for the
    /// bench's bytes-per-link accounting.
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Wide(w) => {
                let word = std::mem::size_of::<usize>();
                w.offsets.len() * word
                    + w.neighbors.len() * 4
                    + w.timestamps.len() * 4
                    + w.nbr_offsets.len() * word
                    + w.nbr_ids.len() * 4
            }
            Repr::Compact(c) => c.heap_bytes(),
        }
    }

    /// Raw `(min_ts, max_ts)` counters, `(0, 0)` when the graph holds
    /// no links (unlike [`GraphView::min_timestamp`], which hides the
    /// sentinel behind `None`).
    pub fn raw_timestamp_bounds(&self) -> (Timestamp, Timestamp) {
        (self.min_ts, self.max_ts)
    }

    /// Borrows the raw storage arrays for serialization. The variant
    /// mirrors [`Self::storage_mode`]; serialization layers write the
    /// arrays verbatim and reassemble through [`Self::try_from_parts`]
    /// or [`Self::try_from_compact_parts`].
    pub fn raw_storage(&self) -> RawStorage<'_> {
        match &self.repr {
            Repr::Wide(w) => RawStorage::Wide {
                offsets: &w.offsets,
                neighbors: &w.neighbors,
                timestamps: &w.timestamps,
                nbr_offsets: &w.nbr_offsets,
                nbr_ids: &w.nbr_ids,
            },
            Repr::Compact(c) => RawStorage::Compact {
                slot_offsets: &c.slot_offsets,
                byte_offsets: &c.byte_offsets,
                arena: &c.arena,
                nbr_offsets: &c.nbr_offsets,
                nbr_ids: &c.nbr_ids,
            },
        }
    }

    /// Materializes the graph as owned wide CSR arrays (cloning for a
    /// wide graph, decoding for a compact one). The interchange type
    /// for tests and cross-layout tooling.
    pub fn to_parts(&self) -> FrozenGraphParts {
        match &self.repr {
            Repr::Wide(w) => FrozenGraphParts {
                offsets: w.offsets.clone(),
                neighbors: w.neighbors.clone(),
                timestamps: w.timestamps.clone(),
                nbr_offsets: w.nbr_offsets.clone(),
                nbr_ids: w.nbr_ids.clone(),
                num_links: self.num_links,
                min_ts: self.min_ts,
                max_ts: self.max_ts,
                revision: self.revision,
            },
            Repr::Compact(c) => expand_compact(
                c,
                self.num_links,
                self.min_ts,
                self.max_ts,
                self.revision,
            ),
        }
    }

    /// Reassembles a wide frozen graph from raw CSR arrays, validating
    /// every structural invariant first. This is the deserialization
    /// path: the input may come from disk, so nothing is trusted — a
    /// graph that decodes but fails any check below must never be
    /// served.
    ///
    /// Checked invariants:
    /// * both offset arrays start at 0, are monotone, agree on the node
    ///   count and close over their flat arrays;
    /// * `neighbors`/`timestamps` are parallel and hold exactly
    ///   `2 * num_links` entries;
    /// * every id is in range and no row contains its own node;
    /// * each distinct-neighbor row is strictly ascending and equals
    ///   the sorted deduplication of its incident-link row;
    /// * the `(u, v, t)` multiset is symmetric across endpoint rows;
    /// * `min_ts`/`max_ts` match the timestamp array (`(0, 0)` when
    ///   empty).
    ///
    /// O(E log E) for the symmetry check — reconstruction is a startup
    /// cost, so correctness wins over speed here.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the violated
    /// invariant.
    pub fn try_from_parts(parts: FrozenGraphParts) -> Result<Self, GraphError> {
        parts.validate()?;
        let FrozenGraphParts {
            offsets,
            neighbors,
            timestamps,
            nbr_offsets,
            nbr_ids,
            num_links,
            min_ts,
            max_ts,
            revision,
        } = parts;
        Ok(FrozenGraph {
            repr: Repr::Wide(WideData {
                offsets,
                neighbors,
                timestamps,
                nbr_offsets,
                nbr_ids,
            }),
            num_links,
            min_ts,
            max_ts,
            revision,
        })
    }

    /// Reassembles a compact frozen graph from raw arrays, the
    /// compact-codec deserialization path. Validation is two-phase:
    /// the packed arrays are first checked structurally (offsets agree
    /// and close, every varint row decodes exactly, indices and
    /// timestamps in range — see the `compact` module), then
    /// *expanded* and run through the same
    /// semantic validator as [`Self::try_from_parts`], so a compact
    /// file can never smuggle in structure a wide file would be
    /// rejected for. The compact arrays are kept; the expansion is
    /// discarded after validation.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the violated
    /// invariant.
    pub fn try_from_compact_parts(
        parts: CompactGraphParts,
    ) -> Result<Self, GraphError> {
        let CompactGraphParts {
            slot_offsets,
            byte_offsets,
            arena,
            nbr_offsets,
            nbr_ids,
            num_links,
            min_ts,
            max_ts,
            revision,
        } = parts;
        let data = CompactData {
            slot_offsets: slot_offsets.into_boxed_slice(),
            byte_offsets: byte_offsets.into_boxed_slice(),
            arena: arena.into_boxed_slice(),
            nbr_offsets: nbr_offsets.into_boxed_slice(),
            nbr_ids: nbr_ids.into_boxed_slice(),
        };
        data.validate_structure(num_links)?;
        expand_compact(&data, num_links, min_ts, max_ts, revision)
            .validate()?;
        Ok(FrozenGraph {
            repr: Repr::Compact(Arc::new(data)),
            num_links,
            min_ts,
            max_ts,
            revision,
        })
    }
}

/// Decodes a compact graph into owned wide arrays.
fn expand_compact(
    c: &CompactData,
    num_links: usize,
    min_ts: Timestamp,
    max_ts: Timestamp,
    revision: u64,
) -> FrozenGraphParts {
    let n = c.node_count();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut nbr_offsets = Vec::with_capacity(n + 1);
    offsets.push(0);
    nbr_offsets.push(0);
    let mut neighbors = Vec::with_capacity(2 * num_links);
    let mut timestamps = Vec::with_capacity(2 * num_links);
    let mut nbr_ids = Vec::new();
    for u in 0..n {
        for (v, t) in c.packed_row(u) {
            neighbors.push(v);
            timestamps.push(t);
        }
        offsets.push(neighbors.len());
        nbr_ids.extend_from_slice(c.distinct_row(u));
        nbr_offsets.push(nbr_ids.len());
    }
    FrozenGraphParts {
        offsets,
        neighbors,
        timestamps,
        nbr_offsets,
        nbr_ids,
        num_links,
        min_ts,
        max_ts,
        revision,
    }
}

/// Borrowed raw storage arrays of a [`FrozenGraph`], matching its
/// [`StorageMode`]. Returned by [`FrozenGraph::raw_storage`] for
/// serialization layers; `#[non_exhaustive]` like [`StorageMode`].
#[derive(Debug)]
#[non_exhaustive]
pub enum RawStorage<'a> {
    /// Wide layout: flat `usize` offsets, raw parallel arrays.
    #[non_exhaustive]
    Wide {
        /// Incident-link row bounds, `node_count + 1` entries.
        offsets: &'a [usize],
        /// Flat neighbor ids, insertion order.
        neighbors: &'a [NodeId],
        /// Flat timestamps, parallel to `neighbors`.
        timestamps: &'a [Timestamp],
        /// Distinct-neighbor row bounds.
        nbr_offsets: &'a [usize],
        /// Flat distinct neighbors, sorted ascending per row.
        nbr_ids: &'a [NodeId],
    },
    /// Compact layout: `u32` offsets + varint arena.
    #[non_exhaustive]
    Compact {
        /// Incident-slot row bounds, `node_count + 1` entries.
        slot_offsets: &'a [u32],
        /// Arena byte bounds per node, `node_count + 1` entries.
        byte_offsets: &'a [u32],
        /// Packed incident slots (varint pairs).
        arena: &'a [u8],
        /// Distinct-neighbor row bounds.
        nbr_offsets: &'a [u32],
        /// Flat distinct neighbors, sorted ascending per row.
        nbr_ids: &'a [NodeId],
    },
}

/// Owned raw CSR arrays of a wide [`FrozenGraph`], the interchange type
/// for serialization layers (see `ssf-persist`). Construct one field by
/// field from decoded bytes and hand it to
/// [`FrozenGraph::try_from_parts`] for validated reassembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrozenGraphParts {
    /// Incident-link row bounds, `node_count + 1` entries.
    pub offsets: Vec<usize>,
    /// Flat neighbor ids, per-node insertion order.
    pub neighbors: Vec<NodeId>,
    /// Flat timestamps, parallel to `neighbors`.
    pub timestamps: Vec<Timestamp>,
    /// Distinct-neighbor row bounds, `node_count + 1` entries.
    pub nbr_offsets: Vec<usize>,
    /// Flat distinct neighbors, sorted ascending per row.
    pub nbr_ids: Vec<NodeId>,
    /// Total link count (each link occupies two CSR slots).
    pub num_links: usize,
    /// Smallest timestamp, 0 when empty.
    pub min_ts: Timestamp,
    /// Largest timestamp, 0 when empty.
    pub max_ts: Timestamp,
    /// Revision of the source graph at freeze time.
    pub revision: u64,
}

/// Owned raw arrays of a compact [`FrozenGraph`], the compact-codec
/// interchange type. Hand to [`FrozenGraph::try_from_compact_parts`]
/// for validated reassembly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompactGraphParts {
    /// Incident-slot row bounds, `node_count + 1` entries.
    pub slot_offsets: Vec<u32>,
    /// Arena byte bounds per node, `node_count + 1` entries.
    pub byte_offsets: Vec<u32>,
    /// Packed incident slots (varint pairs).
    pub arena: Vec<u8>,
    /// Distinct-neighbor row bounds, `node_count + 1` entries.
    pub nbr_offsets: Vec<u32>,
    /// Flat distinct neighbors, sorted ascending per row.
    pub nbr_ids: Vec<NodeId>,
    /// Total link count (each link occupies two slots).
    pub num_links: usize,
    /// Smallest timestamp, 0 when empty.
    pub min_ts: Timestamp,
    /// Largest timestamp, 0 when empty.
    pub max_ts: Timestamp,
    /// Revision of the source graph at freeze time.
    pub revision: u64,
}

impl FrozenGraphParts {
    fn fail(detail: impl Into<String>) -> GraphError {
        GraphError::InvalidCsr {
            detail: detail.into(),
        }
    }

    /// Checks one offsets array: starts at 0, monotone, closes over a
    /// flat array of `flat_len` entries.
    fn check_offsets(
        name: &str,
        offsets: &[usize],
        flat_len: usize,
    ) -> Result<(), GraphError> {
        if offsets.first() != Some(&0) {
            return Err(Self::fail(format!("{name} must start at 0")));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(Self::fail(format!("{name} not monotone")));
        }
        if offsets.last() != Some(&flat_len) {
            return Err(Self::fail(format!(
                "{name} end {:?} != flat length {flat_len}",
                offsets.last()
            )));
        }
        Ok(())
    }

    pub(crate) fn validate(&self) -> Result<(), GraphError> {
        Self::check_offsets("offsets", &self.offsets, self.neighbors.len())?;
        Self::check_offsets(
            "nbr_offsets",
            &self.nbr_offsets,
            self.nbr_ids.len(),
        )?;
        if self.offsets.len() != self.nbr_offsets.len() {
            return Err(Self::fail(format!(
                "offset arrays disagree on node count: {} vs {}",
                self.offsets.len() - 1,
                self.nbr_offsets.len() - 1
            )));
        }
        let n = self.offsets.len() - 1;
        if self.timestamps.len() != self.neighbors.len() {
            return Err(Self::fail(format!(
                "timestamps length {} != neighbors length {}",
                self.timestamps.len(),
                self.neighbors.len()
            )));
        }
        if self.neighbors.len() != 2 * self.num_links {
            return Err(Self::fail(format!(
                "neighbors length {} != 2 * num_links {}",
                self.neighbors.len(),
                self.num_links
            )));
        }
        // Per-row structure: id range, self-loops, sorted distinct rows
        // and distinct == sorted-dedup(links).
        let mut fwd = Vec::with_capacity(self.num_links);
        let mut bwd = Vec::with_capacity(self.num_links);
        for u in 0..n {
            let row = &self.neighbors[self.offsets[u]..self.offsets[u + 1]];
            let times = &self.timestamps[self.offsets[u]..self.offsets[u + 1]];
            let distinct =
                &self.nbr_ids[self.nbr_offsets[u]..self.nbr_offsets[u + 1]];
            for (&v, &t) in row.iter().zip(times) {
                if v as usize >= n {
                    return Err(Self::fail(format!(
                        "node {u} links to out-of-range id {v}"
                    )));
                }
                if v as usize == u {
                    return Err(Self::fail(format!("self-loop on node {u}")));
                }
                if (u as NodeId) < v {
                    fwd.push((u as NodeId, v, t));
                } else {
                    bwd.push((v, u as NodeId, t));
                }
            }
            if distinct.windows(2).any(|w| w[0] >= w[1]) {
                return Err(Self::fail(format!(
                    "distinct row of node {u} not strictly ascending"
                )));
            }
            let mut derived: Vec<NodeId> = row.to_vec();
            derived.sort_unstable();
            derived.dedup();
            if derived != distinct {
                return Err(Self::fail(format!(
                    "distinct row of node {u} disagrees with its links"
                )));
            }
        }
        // Undirected symmetry: each (u, v, t) must appear in both
        // endpoint rows the same number of times.
        fwd.sort_unstable();
        bwd.sort_unstable();
        if fwd != bwd {
            return Err(Self::fail(
                "link multiset is asymmetric across endpoint rows",
            ));
        }
        // Timestamp bounds match the flat array ((0, 0) sentinel when
        // no links exist, as `from_view` writes).
        if self.num_links == 0 {
            if (self.min_ts, self.max_ts) != (0, 0) {
                return Err(Self::fail(
                    "empty graph must carry (0, 0) timestamp bounds",
                ));
            }
        } else {
            let lo = self.timestamps.iter().min().copied();
            let hi = self.timestamps.iter().max().copied();
            if Some(self.min_ts) != lo || Some(self.max_ts) != hi {
                return Err(Self::fail(format!(
                    "timestamp bounds ({}, {}) disagree with links",
                    self.min_ts, self.max_ts
                )));
            }
        }
        Ok(())
    }
}

impl GraphView for FrozenGraph {
    fn node_count(&self) -> usize {
        match &self.repr {
            Repr::Wide(w) => w.offsets.len() - 1,
            Repr::Compact(c) => c.node_count(),
        }
    }

    fn link_count(&self) -> usize {
        self.num_links
    }

    fn revision(&self) -> u64 {
        self.revision
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        (self.num_links > 0).then_some(self.min_ts)
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        (self.num_links > 0).then_some(self.max_ts)
    }

    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
        let u = u as usize;
        match &self.repr {
            Repr::Wide(w) => &w.nbr_ids[w.nbr_offsets[u]..w.nbr_offsets[u + 1]],
            Repr::Compact(c) => c.distinct_row(u),
        }
    }

    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
        let u = u as usize;
        match &self.repr {
            Repr::Wide(w) => IncidentLinks::from_split(
                &w.neighbors[w.offsets[u]..w.offsets[u + 1]],
                &w.timestamps[w.offsets[u]..w.offsets[u + 1]],
            ),
            Repr::Compact(c) => IncidentLinks::from_packed(c.packed_row(u)),
        }
    }

    fn multi_degree(&self, u: NodeId) -> usize {
        let u = u as usize;
        match &self.repr {
            Repr::Wide(w) => w.offsets[u + 1] - w.offsets[u],
            Repr::Compact(c) => c.slot_count(u),
        }
    }
}

/// The published, immutable face of a [`DeltaGraph`]: a shared
/// [`FrozenGraph`] base plus copy-on-write overlay rows for the nodes
/// the delta touched.
///
/// Publishing one (via [`DeltaGraph::publish`]) and cloning it are both
/// a handful of `Arc` bumps — O(1) in graph size — which is what makes
/// snapshot publishing O(delta): the only per-link work is the
/// copy-on-write performed by the writer when it first touches a node
/// after a publish. Reads are lock-free and [`Send`] + [`Sync`].
#[derive(Debug, Clone)]
pub struct OverlayView {
    base: Arc<FrozenGraph>,
    /// Replacement incident-link rows for touched nodes (base row copy
    /// plus the delta's appends, insertion order preserved).
    links: Arc<HashMap<NodeId, Vec<(NodeId, Timestamp)>>>,
    /// Replacement distinct-neighbor rows, sorted ascending.
    distinct: Arc<HashMap<NodeId, Vec<NodeId>>>,
    node_count: usize,
    num_links: usize,
    min_ts: Timestamp,
    max_ts: Timestamp,
    revision: u64,
    delta_links: usize,
}

impl OverlayView {
    /// The shared frozen base. Two views publishing from the same
    /// un-rebased [`DeltaGraph`] return pointer-equal `Arc`s — the
    /// structural-sharing contract snapshot tests assert with
    /// [`Arc::ptr_eq`].
    pub fn base(&self) -> &Arc<FrozenGraph> {
        &self.base
    }

    /// Links accumulated on top of the base since the last rebase.
    pub fn delta_link_count(&self) -> usize {
        self.delta_links
    }

    /// `true` when the view is exactly its frozen base (empty delta and
    /// no node growth).
    pub fn is_pristine(&self) -> bool {
        self.delta_links == 0 && self.node_count == self.base.node_count()
    }
}

impl GraphView for OverlayView {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn link_count(&self) -> usize {
        self.num_links
    }

    fn revision(&self) -> u64 {
        self.revision
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        (self.num_links > 0).then_some(self.min_ts)
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        (self.num_links > 0).then_some(self.max_ts)
    }

    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
        if let Some(row) = self.distinct.get(&u) {
            row
        } else if (u as usize) < self.base.node_count() {
            self.base.distinct_neighbors(u)
        } else {
            &[]
        }
    }

    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
        if let Some(row) = self.links.get(&u) {
            IncidentLinks::from_pairs(row)
        } else if (u as usize) < self.base.node_count() {
            self.base.incident_links(u)
        } else {
            IncidentLinks::from_pairs(&[])
        }
    }

    fn multi_degree(&self, u: NodeId) -> usize {
        if let Some(row) = self.links.get(&u) {
            row.len()
        } else if (u as usize) < self.base.node_count() {
            self.base.multi_degree(u)
        } else {
            0
        }
    }
}

/// Single-writer mutation accumulator over a shared [`FrozenGraph`].
///
/// Mirrors [`DynamicNetwork`]'s mutation semantics exactly — the same
/// self-loop rejection, node growth, sorted distinct-neighbor
/// maintenance and revision arithmetic — but copy-on-write: the shared
/// base is never touched, and only the rows of nodes the delta reaches
/// are materialized (first touch copies that node's base row). The
/// overlay rows live behind `Arc`s, so [`Self::publish`] is O(1); after
/// a publish, the writer's next mutation re-clones only the touched
/// rows (O(delta)), never the base.
///
/// Rebase with [`Self::rebase`] once the delta has grown past taste:
/// the accumulated state folds into a fresh [`FrozenGraph`] (O(V + E),
/// amortized over the delta) and the log restarts empty, preserving the
/// revision counter.
///
/// # Example
///
/// ```rust
/// use std::sync::Arc;
///
/// use dyngraph::{DeltaGraph, FrozenGraph, GraphView};
///
/// let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::empty()));
/// delta.try_add_link(0, 1, 5)?;
/// let published = delta.publish();
/// delta.try_add_link(1, 2, 6)?; // the published view is unaffected
/// assert_eq!(published.link_count(), 1);
/// assert_eq!(delta.link_count(), 2);
/// assert!(Arc::ptr_eq(published.base(), delta.base()));
/// # Ok::<(), dyngraph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    view: OverlayView,
}

impl DeltaGraph {
    /// Starts an empty delta over `base`.
    pub fn new(base: Arc<FrozenGraph>) -> Self {
        let view = OverlayView {
            node_count: base.node_count(),
            num_links: base.link_count(),
            min_ts: base.min_timestamp().unwrap_or(0),
            max_ts: base.max_timestamp().unwrap_or(0),
            revision: base.revision(),
            delta_links: 0,
            links: Arc::new(HashMap::new()),
            distinct: Arc::new(HashMap::new()),
            base,
        };
        DeltaGraph { view }
    }

    /// The shared frozen base this delta accumulates on top of.
    pub fn base(&self) -> &Arc<FrozenGraph> {
        &self.view.base
    }

    /// Links accumulated since the base was frozen (or last rebased).
    pub fn delta_link_count(&self) -> usize {
        self.view.delta_links
    }

    /// `true` when no mutation has landed since the last rebase.
    pub fn is_clean(&self) -> bool {
        self.view.is_pristine()
    }

    /// Publishes the current state as an immutable [`OverlayView`] —
    /// `Arc` clones only, O(1) in graph size.
    pub fn publish(&self) -> OverlayView {
        self.view.clone()
    }

    /// Ensures node `id` exists, growing the node set if needed; bumps
    /// the revision once per growth, like
    /// [`DynamicNetwork::ensure_node`].
    pub fn ensure_node(&mut self, id: NodeId) {
        let want = id as usize + 1;
        if self.view.node_count < want {
            self.view.node_count = want;
            self.view.revision += 1;
        }
    }

    /// Adds an undirected link, mirroring
    /// [`DynamicNetwork::try_add_link`] bit for bit: endpoints are
    /// created on demand, multi-links are allowed, and the revision
    /// advances by the same amount as the mutable graph's would.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`.
    pub fn try_add_link(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.ensure_node(u.max(v));
        let base = &self.view.base;
        let links = Arc::make_mut(&mut self.view.links);
        for (a, b) in [(u, v), (v, u)] {
            links
                .entry(a)
                .or_insert_with(|| base_links_row(base, a))
                .push((b, t));
        }
        let distinct = Arc::make_mut(&mut self.view.distinct);
        for (a, b) in [(u, v), (v, u)] {
            let row = distinct
                .entry(a)
                .or_insert_with(|| base_distinct_row(base, a));
            if let Err(i) = row.binary_search(&b) {
                row.insert(i, b);
            }
        }
        if self.view.num_links == 0 {
            self.view.min_ts = t;
            self.view.max_ts = t;
        } else {
            self.view.min_ts = self.view.min_ts.min(t);
            self.view.max_ts = self.view.max_ts.max(t);
        }
        self.view.num_links += 1;
        self.view.revision += 1;
        self.view.delta_links += 1;
        Ok(())
    }

    /// Adds an undirected link keeping each endpoint's row sorted by
    /// timestamp (stable: ties append after existing equal-`t` slots),
    /// mirroring the windowed authority's sorted insert bit for bit.
    /// Windowed authorities store rows in time order so expiry is a
    /// prefix drop; a delta shadowing one must insert at the same
    /// position or its iteration order — and everything downstream
    /// that hashes it — diverges. Revision arithmetic is identical to
    /// [`Self::try_add_link`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v`.
    pub fn try_add_link_sorted(
        &mut self,
        u: NodeId,
        v: NodeId,
        t: Timestamp,
    ) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        self.ensure_node(u.max(v));
        let base = &self.view.base;
        let links = Arc::make_mut(&mut self.view.links);
        for (a, b) in [(u, v), (v, u)] {
            let row = links.entry(a).or_insert_with(|| base_links_row(base, a));
            let at = row.partition_point(|&(_, ts)| ts <= t);
            row.insert(at, (b, t));
        }
        let distinct = Arc::make_mut(&mut self.view.distinct);
        for (a, b) in [(u, v), (v, u)] {
            let row = distinct
                .entry(a)
                .or_insert_with(|| base_distinct_row(base, a));
            if let Err(i) = row.binary_search(&b) {
                row.insert(i, b);
            }
        }
        if self.view.num_links == 0 {
            self.view.min_ts = t;
            self.view.max_ts = t;
        } else {
            self.view.min_ts = self.view.min_ts.min(t);
            self.view.max_ts = self.view.max_ts.max(t);
        }
        self.view.num_links += 1;
        self.view.revision += 1;
        self.view.delta_links += 1;
        Ok(())
    }

    /// Mirrors a [`WindowedView`](crate::WindowedView) horizon advance:
    /// removes every link with timestamp `< cutoff` from the rows of
    /// `affected` (copy-on-write — untouched nodes keep serving their
    /// base rows), installs the authority's post-expiry minimum
    /// timestamp, and bumps the revision exactly once, keeping the
    /// delta in lockstep with the windowed graph it shadows.
    ///
    /// `affected` must name *both* endpoints of every expired link
    /// (which [`AdvanceReport::affected`](crate::AdvanceReport) does):
    /// rows are symmetric, so each expired link is seen twice and the
    /// link count drops by half the row removals. Works identically
    /// over wide and compact bases — expiry materializes the filtered
    /// row, after which the base layout is out of the read path for
    /// that node. Returns the number of links removed.
    pub fn expire_links_below(
        &mut self,
        cutoff: Timestamp,
        affected: &[NodeId],
        new_min: Option<Timestamp>,
    ) -> usize {
        let base = &self.view.base;
        let links = Arc::make_mut(&mut self.view.links);
        let distinct = Arc::make_mut(&mut self.view.distinct);
        let mut removed_slots = 0usize;
        for &u in affected {
            let row = links.entry(u).or_insert_with(|| base_links_row(base, u));
            let before = row.len();
            row.retain(|&(_, t)| t >= cutoff);
            if row.len() == before {
                continue;
            }
            removed_slots += before - row.len();
            // Rebuilt wholesale from the filtered row, so the base
            // distinct row never needs copying first.
            let d = distinct.entry(u).or_default();
            d.clear();
            d.extend(row.iter().map(|&(v, _)| v));
            d.sort_unstable();
            d.dedup();
        }
        debug_assert_eq!(removed_slots % 2, 0, "asymmetric expiry rows");
        let removed = removed_slots / 2;
        self.view.num_links -= removed;
        if self.view.num_links == 0 {
            self.view.min_ts = 0;
            self.view.max_ts = 0;
        } else if let Some(m) = new_min {
            self.view.min_ts = m;
        }
        self.view.revision += 1;
        self.view.delta_links += removed;
        removed
    }

    /// Folds base + delta into a fresh CSR [`FrozenGraph`] without
    /// resetting this delta, preserving the base's [`StorageMode`]: a
    /// compact base refreezes compact (falling back to wide if the
    /// grown graph no longer fits), a wide base refreezes with the
    /// `Auto` policy. The frozen copy carries the current revision.
    pub fn freeze(&self) -> FrozenGraph {
        if self.view.base.is_compact() {
            match FrozenGraph::from_view_with(&self.view, StorageMode::Compact)
            {
                Ok(f) => f,
                Err(_) => FrozenGraph::build_wide(&self.view),
            }
        } else {
            FrozenGraph::from_view(&self.view)
        }
    }

    /// [`Self::freeze`] with an explicit [`StorageMode`].
    ///
    /// # Errors
    ///
    /// As [`FrozenGraph::from_view_with`]: only
    /// [`StorageMode::Compact`] can fail, with
    /// [`GraphError::TooLarge`].
    pub fn freeze_with(
        &self,
        mode: StorageMode,
    ) -> Result<FrozenGraph, GraphError> {
        FrozenGraph::from_view_with(&self.view, mode)
    }

    /// Compacts: freezes the accumulated state into a new shared base
    /// and restarts the delta empty on top of it. Returns the new base.
    /// O(V + E) — amortize by rebasing only when
    /// [`Self::delta_link_count`] has grown proportionally. The base's
    /// [`StorageMode`] is preserved (see [`Self::freeze`]).
    pub fn rebase(&mut self) -> Arc<FrozenGraph> {
        let base = Arc::new(self.freeze());
        *self = DeltaGraph::new(Arc::clone(&base));
        base
    }

    /// [`Self::rebase`] with an explicit [`StorageMode`]. On error the
    /// delta is left untouched.
    ///
    /// # Errors
    ///
    /// As [`FrozenGraph::from_view_with`].
    pub fn rebase_with(
        &mut self,
        mode: StorageMode,
    ) -> Result<Arc<FrozenGraph>, GraphError> {
        let base = Arc::new(self.freeze_with(mode)?);
        *self = DeltaGraph::new(Arc::clone(&base));
        Ok(base)
    }
}

impl GraphView for DeltaGraph {
    fn node_count(&self) -> usize {
        self.view.node_count()
    }

    fn link_count(&self) -> usize {
        self.view.link_count()
    }

    fn revision(&self) -> u64 {
        self.view.revision()
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        self.view.min_timestamp()
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        self.view.max_timestamp()
    }

    fn distinct_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.view.distinct_neighbors(u)
    }

    fn incident_links(&self, u: NodeId) -> IncidentLinks<'_> {
        self.view.incident_links(u)
    }

    fn multi_degree(&self, u: NodeId) -> usize {
        self.view.multi_degree(u)
    }
}

/// Copy of node `a`'s incident-link base row (empty for nodes beyond
/// the base).
fn base_links_row(base: &FrozenGraph, a: NodeId) -> Vec<(NodeId, Timestamp)> {
    if (a as usize) < base.node_count() {
        base.incident_links(a).collect()
    } else {
        Vec::new()
    }
}

/// Copy of node `a`'s distinct-neighbor base row.
fn base_distinct_row(base: &FrozenGraph, a: NodeId) -> Vec<NodeId> {
    if (a as usize) < base.node_count() {
        base.distinct_neighbors(a).to_vec()
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        g.add_link(0, 1, 3);
        g.add_link(1, 2, 5);
        g.add_link(0, 1, 4);
        g.add_link(3, 1, 2);
        g
    }

    fn assert_views_agree<G: GraphView>(got: &G, want: &DynamicNetwork) {
        assert_eq!(got.node_count(), want.node_count());
        assert_eq!(got.link_count(), want.link_count());
        assert_eq!(got.revision(), want.revision());
        assert_eq!(got.min_timestamp(), want.min_timestamp());
        assert_eq!(got.max_timestamp(), want.max_timestamp());
        for u in 0..want.node_count() as NodeId {
            assert_eq!(got.distinct_neighbors(u), want.neighbors(u));
            assert_eq!(got.multi_degree(u), want.multi_degree(u));
            let links: Vec<_> = got.incident_links(u).collect();
            assert_eq!(links.as_slice(), want.incident_links(u));
            for w in 0..want.node_count() as NodeId {
                assert_eq!(got.has_link(u, w), want.has_link(u, w));
                assert_eq!(
                    got.links_between(u, w),
                    want.link_count_between(u, w)
                );
                assert_eq!(
                    got.timestamps_between(u, w),
                    want.timestamps_between(u, w)
                );
            }
        }
    }

    #[test]
    fn frozen_graph_matches_source() {
        let g = sample();
        let f = FrozenGraph::from_view(&g);
        assert_views_agree(&f, &g);
    }

    #[test]
    fn compact_graph_matches_source_and_wide() {
        let g = sample();
        let wide = FrozenGraph::from_view_with(&g, StorageMode::Wide).unwrap();
        let compact =
            FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
        assert_eq!(wide.storage_mode(), StorageMode::Wide);
        assert_eq!(compact.storage_mode(), StorageMode::Compact);
        assert!(compact.is_compact());
        assert_views_agree(&compact, &g);
        assert_eq!(compact, wide, "logical equality across layouts");
        assert_eq!(wide, compact);
        assert_eq!(compact.to_parts(), wide.to_parts());
    }

    #[test]
    fn auto_mode_keeps_small_graphs_wide() {
        let f = FrozenGraph::from_view(&sample());
        assert_eq!(f.storage_mode(), StorageMode::Wide);
        let f =
            FrozenGraph::from_view_with(&sample(), StorageMode::Auto).unwrap();
        assert_eq!(f.storage_mode(), StorageMode::Wide);
    }

    #[test]
    fn storage_mode_parses_and_displays() {
        for mode in [StorageMode::Auto, StorageMode::Wide, StorageMode::Compact]
        {
            assert_eq!(mode.as_str().parse::<StorageMode>(), Ok(mode));
            assert_eq!(mode.to_string(), mode.as_str());
        }
        assert!("mmap".parse::<StorageMode>().is_err());
        assert_eq!(StorageMode::default(), StorageMode::Auto);
    }

    #[test]
    fn compact_overflow_is_a_typed_error() {
        let g = sample();
        let err =
            FrozenGraph::build_compact(&g, &CompactLimits { max_index: 2 })
                .unwrap_err();
        match err {
            GraphError::TooLarge { value, limit, .. } => {
                assert_eq!(limit, 2);
                assert!(value > 2, "offending value is reported: {value}");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn compact_is_smaller_than_wide() {
        let mut g = DynamicNetwork::new();
        // A few hundred links with coarse timestamps, the shape the
        // compact layout targets.
        for i in 0..400u32 {
            let u = i % 97;
            g.add_link(u, (u + 1 + i % 7) % 97, i / 4);
        }
        let wide = FrozenGraph::from_view_with(&g, StorageMode::Wide).unwrap();
        let compact =
            FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
        assert!(
            compact.heap_bytes() < wide.heap_bytes(),
            "compact {} >= wide {}",
            compact.heap_bytes(),
            wide.heap_bytes()
        );
    }

    #[test]
    fn empty_frozen_graph() {
        let f = FrozenGraph::empty();
        assert_eq!(f.node_count(), 0);
        assert_eq!(f.link_count(), 0);
        assert!(f.is_empty());
        assert_eq!(f.min_timestamp(), None);
        assert_eq!(f.max_timestamp(), None);
        assert_eq!(f.revision(), 0);
        assert_eq!(f.storage_mode(), StorageMode::Wide);
    }

    #[test]
    fn delta_graph_tracks_mutable_twin() {
        let g = sample();
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::from_view(&g)));
        let mut twin = g.clone();
        // Revision parity requires identical starting counters.
        assert_eq!(delta.revision(), twin.revision());
        let events = [(0u32, 4u32, 9u32), (4, 5, 1), (2, 0, 7), (0, 1, 8)];
        for &(u, v, t) in &events {
            assert!(delta.try_add_link(u, v, t).is_ok());
            assert!(twin.try_add_link(u, v, t).is_ok());
            assert_views_agree(&delta, &twin);
        }
        assert_eq!(delta.delta_link_count(), events.len());
        // Quarantine-style node growth mirrors too.
        delta.ensure_node(9);
        twin.ensure_node(9);
        assert_views_agree(&delta, &twin);
        // Self-loops are rejected without any state change.
        let r = delta.revision();
        assert!(delta.try_add_link(3, 3, 1).is_err());
        assert_eq!(delta.revision(), r);
    }

    #[test]
    fn sorted_insert_tracks_time_ordered_twin() {
        // A windowed authority keeps rows in time order via
        // insert_link_sorted; the shadowing delta must agree on
        // iteration order, not just multiset content.
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::empty()));
        let mut twin = DynamicNetwork::new();
        let events = [
            (0u32, 1u32, 5u32),
            (0, 1, 2),
            (1, 2, 9),
            (0, 1, 5),
            (0, 2, 0),
        ];
        for &(u, v, t) in &events {
            assert!(delta.try_add_link_sorted(u, v, t).is_ok());
            assert!(twin.insert_link_sorted(u, v, t).is_ok());
            assert_views_agree(&delta, &twin);
        }
        // Rows really are time-sorted.
        let row: Vec<_> = delta.incident_links(0).collect();
        let mut sorted = row.clone();
        sorted.sort_by_key(|&(_, t)| t);
        assert_eq!(row, sorted);
        // Self-loops are rejected without any state change.
        let r = delta.revision();
        assert!(delta.try_add_link_sorted(3, 3, 1).is_err());
        assert_eq!(delta.revision(), r);
    }

    #[test]
    fn delta_graph_over_compact_base() {
        let g = sample();
        let base =
            FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
        let mut delta = DeltaGraph::new(Arc::new(base));
        let mut twin = g.clone();
        for &(u, v, t) in &[(0u32, 4u32, 9u32), (4, 5, 1), (0, 1, 8)] {
            assert!(delta.try_add_link(u, v, t).is_ok());
            assert!(twin.try_add_link(u, v, t).is_ok());
            assert_views_agree(&delta, &twin);
        }
        // Rebase preserves compactness.
        let new_base = delta.rebase();
        assert!(new_base.is_compact());
        assert_views_agree(&*new_base, &twin);
        // Explicit rebase_with can switch layouts.
        assert!(delta.try_add_link(5, 6, 11).is_ok());
        assert!(twin.try_add_link(5, 6, 11).is_ok());
        let wide_base = delta.rebase_with(StorageMode::Wide).unwrap();
        assert!(!wide_base.is_compact());
        assert_views_agree(&*wide_base, &twin);
    }

    #[test]
    fn publish_is_immutable_and_shares_the_base() {
        let g = sample();
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::from_view(&g)));
        assert!(delta.is_clean());
        let clean = delta.publish();
        assert!(clean.is_pristine());
        assert!(Arc::ptr_eq(clean.base(), delta.base()));
        assert!(delta.try_add_link(0, 4, 9).is_ok());
        let dirty = delta.publish();
        assert_eq!(clean.link_count(), g.link_count());
        assert_eq!(dirty.link_count(), g.link_count() + 1);
        assert_eq!(dirty.delta_link_count(), 1);
        assert!(Arc::ptr_eq(clean.base(), dirty.base()));
        // Further writes never reach the published views.
        assert!(delta.try_add_link(0, 5, 10).is_ok());
        assert_eq!(dirty.link_count(), g.link_count() + 1);
    }

    #[test]
    fn rebase_preserves_content_and_revision() {
        let g = sample();
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::from_view(&g)));
        let mut twin = g.clone();
        for &(u, v, t) in &[(0u32, 4u32, 9u32), (4, 5, 1)] {
            assert!(delta.try_add_link(u, v, t).is_ok());
            assert!(twin.try_add_link(u, v, t).is_ok());
        }
        let old_base = Arc::clone(delta.base());
        let new_base = delta.rebase();
        assert!(!Arc::ptr_eq(&old_base, &new_base));
        assert!(delta.is_clean());
        assert_eq!(delta.delta_link_count(), 0);
        assert_views_agree(&delta, &twin);
        assert_views_agree(&*new_base, &twin);
        // And mutation continues seamlessly after the rebase.
        assert!(delta.try_add_link(5, 6, 2).is_ok());
        assert!(twin.try_add_link(5, 6, 2).is_ok());
        assert_views_agree(&delta, &twin);
    }

    #[test]
    fn overlay_answers_beyond_base_node_range() {
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::empty()));
        delta.ensure_node(3);
        assert_eq!(delta.node_count(), 4);
        assert_eq!(delta.distinct_neighbors(2), &[] as &[NodeId]);
        assert_eq!(delta.multi_degree(2), 0);
        assert_eq!(delta.incident_links(2).count(), 0);
        assert!(!delta.has_link(0, 2));
    }

    #[test]
    fn try_from_parts_round_trips() {
        let g = sample();
        let f = FrozenGraph::from_view(&g);
        let rebuilt = FrozenGraph::try_from_parts(f.to_parts()).unwrap();
        assert_eq!(rebuilt, f);
        let empty =
            FrozenGraph::try_from_parts(FrozenGraph::empty().to_parts())
                .unwrap();
        assert_eq!(empty, FrozenGraph::empty());
    }

    /// Raw compact arrays cloned out through `raw_storage`, the way the
    /// serialization layer writes them.
    fn compact_parts_of(f: &FrozenGraph) -> CompactGraphParts {
        let (min_ts, max_ts) = f.raw_timestamp_bounds();
        match f.raw_storage() {
            RawStorage::Compact {
                slot_offsets,
                byte_offsets,
                arena,
                nbr_offsets,
                nbr_ids,
                ..
            } => CompactGraphParts {
                slot_offsets: slot_offsets.to_vec(),
                byte_offsets: byte_offsets.to_vec(),
                arena: arena.to_vec(),
                nbr_offsets: nbr_offsets.to_vec(),
                nbr_ids: nbr_ids.to_vec(),
                num_links: f.link_count(),
                min_ts,
                max_ts,
                revision: f.revision(),
            },
            RawStorage::Wide { .. } => panic!("expected compact storage"),
        }
    }

    #[test]
    fn try_from_compact_parts_round_trips() {
        let g = sample();
        let f = FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
        let rebuilt =
            FrozenGraph::try_from_compact_parts(compact_parts_of(&f)).unwrap();
        assert_eq!(rebuilt, f);
        assert!(rebuilt.is_compact());
        assert_views_agree(&rebuilt, &g);
    }

    #[test]
    fn try_from_compact_parts_rejects_corruption() {
        let g = sample();
        let f = FrozenGraph::from_view_with(&g, StorageMode::Compact).unwrap();
        let good = compact_parts_of(&f);
        assert!(FrozenGraph::try_from_compact_parts(good.clone()).is_ok());
        type Mutation = Box<dyn Fn(&mut CompactGraphParts)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("slot offsets start", Box::new(|p| p.slot_offsets[0] = 1)),
            (
                "byte offsets end",
                Box::new(|p| {
                    let last = p.byte_offsets.len() - 1;
                    p.byte_offsets[last] += 1;
                }),
            ),
            ("arena truncated", Box::new(|p| p.arena[0] |= 0x80)),
            ("local index out of range", Box::new(|p| p.arena[0] = 0x7f)),
            ("distinct unsorted", Box::new(|p| p.nbr_ids.swap(0, 1))),
            ("link count", Box::new(|p| p.num_links += 1)),
            ("timestamp bounds", Box::new(|p| p.max_ts += 7)),
            (
                "node count agreement",
                Box::new(|p| {
                    p.nbr_offsets.pop();
                }),
            ),
        ];
        for (name, mutate) in mutations {
            let mut bad = good.clone();
            mutate(&mut bad);
            let got = FrozenGraph::try_from_compact_parts(bad);
            assert!(
                matches!(got, Err(GraphError::InvalidCsr { .. })),
                "mutation {name:?} was accepted: {got:?}"
            );
        }
    }

    #[test]
    fn try_from_parts_rejects_every_broken_invariant() {
        let f = FrozenGraph::from_view(&sample());
        let good = f.to_parts();
        assert!(FrozenGraph::try_from_parts(good.clone()).is_ok());
        type Mutation = Box<dyn Fn(&mut crate::FrozenGraphParts)>;
        let mutations: Vec<(&str, Mutation)> = vec![
            ("offsets start", Box::new(|p| p.offsets[0] = 1)),
            ("offsets monotone", Box::new(|p| p.offsets[2] = 0)),
            (
                "offsets end",
                Box::new(|p| {
                    let last = p.offsets.len() - 1;
                    p.offsets[last] += 1;
                }),
            ),
            (
                "timestamps parallel",
                Box::new(|p| {
                    p.timestamps.pop();
                    let last = p.offsets.len() - 1;
                    p.offsets[last] -= 1;
                }),
            ),
            ("link count", Box::new(|p| p.num_links += 1)),
            ("id range", Box::new(|p| p.neighbors[0] = 99)),
            (
                "self loop",
                Box::new(|p| {
                    // Node 0's first neighbor becomes node 0 itself.
                    p.neighbors[p.offsets[0]] = 0;
                }),
            ),
            (
                "distinct sorted",
                Box::new(|p| {
                    p.nbr_ids.swap(0, 1);
                }),
            ),
            (
                "symmetry",
                Box::new(|p| {
                    // Retarget one directed slot without its mirror.
                    p.neighbors[p.offsets[1]] = 2;
                }),
            ),
            ("timestamp bounds", Box::new(|p| p.max_ts += 7)),
            (
                "node count agreement",
                Box::new(|p| {
                    p.nbr_offsets.pop();
                }),
            ),
        ];
        for (name, mutate) in mutations {
            let mut bad = good.clone();
            mutate(&mut bad);
            let got = FrozenGraph::try_from_parts(bad);
            assert!(
                matches!(got, Err(GraphError::InvalidCsr { .. })),
                "mutation {name:?} was accepted: {got:?}"
            );
        }
    }

    #[test]
    fn try_from_parts_rejects_nonzero_empty_bounds() {
        let mut p = FrozenGraph::empty().to_parts();
        p.min_ts = 3;
        p.max_ts = 3;
        assert!(matches!(
            FrozenGraph::try_from_parts(p),
            Err(GraphError::InvalidCsr { .. })
        ));
    }

    #[test]
    fn frozen_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenGraph>();
        assert_send_sync::<DeltaGraph>();
        assert_send_sync::<OverlayView>();
    }
}
