//! Property tests: a `WindowedView` driven through arbitrary
//! mutation/advance interleavings stays bit-identical to a
//! `DynamicNetwork` rebuilt from scratch out of only the in-window
//! links (inserted in stable time order), and the stream layer's
//! copy-on-write mirror discipline (`expire_links_below` +
//! `try_add_link_sorted`) tracks the view revision for revision —
//! across both physical storage modes.

use std::sync::Arc;

use dyngraph::{
    DeltaGraph, DynamicNetwork, FrozenGraph, GraphError, GraphView, NodeId,
    StorageMode, Timestamp, WindowedView,
};
use proptest::prelude::*;

/// One step of an interleaved mutation/advance schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Feed a timestamped link (self-loops and links behind the cutoff
    /// are rejected without any state change).
    AddLink(NodeId, NodeId, Timestamp),
    /// Grow the node set without adding links.
    EnsureNode(NodeId),
    /// Push the horizon forward, expiring links behind the new cutoff
    /// (regressions are rejected without any state change).
    Advance(Timestamp),
    /// Compact the mirror into a fresh frozen base (true = compact
    /// storage), checking the base against the windowed view.
    Rebase(bool),
}

fn add_link() -> impl Strategy<Value = Op> {
    (0..16u32, 0..16u32, 0..60u32).prop_map(|(u, v, t)| Op::AddLink(u, v, t))
}

fn advance() -> impl Strategy<Value = Op> {
    // Mostly small horizons interleaved with the occasional saturating
    // jump to u32::MAX, which pins the `horizon - width` underflow and
    // saturation boundaries.
    prop_oneof![
        (0..90u32).prop_map(Op::Advance),
        (0..90u32).prop_map(Op::Advance),
        (0..90u32).prop_map(Op::Advance),
        Just(Op::Advance(u32::MAX)),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is uniform; weight mutations by
    // repeating the link-add arm.
    prop_oneof![
        add_link(),
        add_link(),
        add_link(),
        advance(),
        (0..16u32).prop_map(Op::EnsureNode),
        any::<bool>().prop_map(Op::Rebase),
    ]
}

/// Window widths under test: zero-width (only the horizon tick
/// survives), small sliding widths, and the saturating maximum (the
/// cutoff never leaves 0, so nothing ever expires).
fn width() -> impl Strategy<Value = Timestamp> {
    prop_oneof![Just(0u32), 1..40u32, 1..40u32, Just(u32::MAX)]
}

/// Asserts `got` answers every `GraphView` query like `want`, revision
/// included (for twins maintained in lockstep).
fn assert_views_agree<G: GraphView + ?Sized>(got: &G, want: &DynamicNetwork) {
    assert_eq!(got.revision(), want.revision());
    assert_views_agree_no_rev(got, want);
}

/// Asserts `got` answers every `GraphView` query like `want`, except
/// the revision counter (a from-scratch rebuild counts its own
/// construction mutations, not the history's).
fn assert_views_agree_no_rev<G: GraphView + ?Sized>(
    got: &G,
    want: &DynamicNetwork,
) {
    assert_eq!(got.node_count(), want.node_count());
    assert_eq!(got.link_count(), want.link_count());
    assert_eq!(got.is_empty(), want.is_empty());
    assert_eq!(got.min_timestamp(), want.min_timestamp());
    assert_eq!(got.max_timestamp(), want.max_timestamp());
    let n = want.node_count() as NodeId;
    for u in 0..n {
        assert_eq!(got.distinct_neighbors(u), want.neighbors(u));
        assert_eq!(got.neighbors(u), want.neighbors(u));
        assert_eq!(got.degree(u), want.degree(u));
        assert_eq!(got.multi_degree(u), want.multi_degree(u));
        let links: Vec<_> = got.incident_links(u).collect();
        assert_eq!(links.as_slice(), want.incident_links(u));
        // Pairwise queries, including ids one past the valid range.
        for w in 0..n + 1 {
            assert_eq!(got.has_link(u, w), want.has_link(u, w));
            assert_eq!(got.links_between(u, w), want.link_count_between(u, w));
            assert_eq!(
                got.timestamps_between(u, w),
                want.timestamps_between(u, w)
            );
        }
    }
}

/// Rebuilds the network a `WindowedView` should hold from first
/// principles: only the accepted links still inside the window, fed in
/// stable time order (sorted by timestamp, arrival order breaking
/// ties — the canonical row order expiry preserves).
fn rebuild_in_window(
    accepted: &[(NodeId, NodeId, Timestamp)],
    node_count: usize,
    cutoff: Timestamp,
) -> DynamicNetwork {
    let mut survivors: Vec<_> = accepted
        .iter()
        .copied()
        .filter(|&(_, _, t)| t >= cutoff)
        .collect();
    survivors.sort_by_key(|&(_, _, t)| t);
    let mut net = DynamicNetwork::new();
    if node_count > 0 {
        net.ensure_node(node_count as NodeId - 1);
    }
    for (u, v, t) in survivors {
        assert!(
            net.try_add_link(u, v, t).is_ok(),
            "accepted links are clean"
        );
    }
    net
}

proptest! {
    /// Through arbitrary add/advance/grow/compact interleavings, the
    /// windowed view equals a from-scratch rebuild of its in-window
    /// links, and the mirror (maintained with the stream layer's
    /// expire + sorted-insert discipline) tracks it bit for bit —
    /// revisions included — over both storage modes.
    #[test]
    fn windowed_view_matches_from_scratch_rebuild(
        width in width(),
        ops in prop::collection::vec(op(), 1..60),
    ) {
        let mut wv = WindowedView::with_width(width);
        let mut mirror = DeltaGraph::new(Arc::new(FrozenGraph::empty()));
        let mut accepted: Vec<(NodeId, NodeId, Timestamp)> = Vec::new();
        for op in ops {
            match op {
                Op::AddLink(u, v, t) => match wv.try_add_link(u, v, t) {
                    Ok(report) => {
                        if let Some(r) = &report {
                            mirror.expire_links_below(
                                r.cutoff,
                                &r.affected,
                                r.min_timestamp,
                            );
                        }
                        mirror
                            .try_add_link_sorted(u, v, t)
                            .expect("the view accepted this link");
                        accepted.push((u, v, t));
                    }
                    Err(GraphError::OutOfWindow { cutoff, .. }) => {
                        prop_assert!(t < cutoff, "only pre-cutoff links \
                                                  are rejected");
                    }
                    Err(GraphError::SelfLoop { .. }) => {
                        prop_assert_eq!(u, v);
                    }
                    Err(e) => panic!("unexpected rejection: {e}"),
                },
                Op::EnsureNode(id) => {
                    wv.ensure_node(id);
                    mirror.ensure_node(id);
                }
                Op::Advance(to) => match wv.advance(to) {
                    Ok(Some(r)) => {
                        mirror.expire_links_below(
                            r.cutoff,
                            &r.affected,
                            r.min_timestamp,
                        );
                    }
                    Ok(None) => {}
                    Err(GraphError::HorizonRegressed { .. }) => {}
                    Err(e) => panic!("unexpected advance failure: {e}"),
                },
                Op::Rebase(compact) => {
                    let mode = if compact {
                        StorageMode::Compact
                    } else {
                        StorageMode::Wide
                    };
                    let base = mirror
                        .rebase_with(mode)
                        .expect("tiny graphs fit both layouts");
                    prop_assert_eq!(base.storage_mode(), mode);
                    assert_views_agree(&*base, wv.network());
                }
            }
        }
        // Mirror and view moved in lockstep the whole way.
        assert_views_agree(&mirror, wv.network());
        // The view holds exactly what a from-scratch build of the
        // surviving links holds — expiry lost nothing else, kept
        // nothing extra, and preserved canonical time order.
        let want = rebuild_in_window(
            &accepted,
            wv.node_count(),
            wv.cutoff().unwrap_or(0),
        );
        assert_views_agree_no_rev(&wv, &want);
        // And both frozen layouts of the view agree with the rebuild.
        let wide = FrozenGraph::from_view_with(&wv, StorageMode::Wide)
            .expect("wide freeze never fails");
        let compact = FrozenGraph::from_view_with(&wv, StorageMode::Compact)
            .expect("tiny graphs always fit the compact limits");
        assert_views_agree_no_rev(&wide, &want);
        assert_views_agree_no_rev(&compact, &want);
    }

    /// An unbounded `WindowedView` is indistinguishable from a plain
    /// `DynamicNetwork` fed the same stream, and `advance` on it only
    /// moves the horizon/revision — never the links.
    #[test]
    fn unbounded_view_is_a_plain_network(
        ops in prop::collection::vec(op(), 1..60),
    ) {
        let mut wv = WindowedView::unbounded();
        let mut twin = DynamicNetwork::new();
        let mut advances = 0u64;
        for op in ops {
            match op {
                Op::AddLink(u, v, t) => {
                    let a = wv.try_add_link(u, v, t);
                    let b = twin.try_add_link(u, v, t);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                    if let Ok(report) = a {
                        prop_assert!(report.is_none(),
                            "unbounded adds never report an advance");
                    }
                }
                Op::EnsureNode(id) => {
                    wv.ensure_node(id);
                    twin.ensure_node(id);
                }
                Op::Advance(to) => {
                    if let Ok(Some(r)) = wv.advance(to) {
                        prop_assert_eq!(r.expired_links, 0);
                        prop_assert!(r.affected.is_empty());
                        advances += 1;
                    }
                }
                Op::Rebase(_) => {}
            }
        }
        prop_assert_eq!(wv.revision(), twin.revision() + advances);
        assert_views_agree_no_rev(&wv, &twin);
    }
}
