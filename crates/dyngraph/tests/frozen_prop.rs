//! Property tests: `FrozenGraph`, `DeltaGraph` and published
//! `OverlayView`s answer every `GraphView` query identically to the
//! `DynamicNetwork` they were built from, across random
//! mutation/freeze/rebase interleavings.

use std::sync::Arc;

use dyngraph::{
    DeltaGraph, DynamicNetwork, FrozenGraph, GraphView, NodeId, StorageMode,
    Timestamp,
};
use proptest::prelude::*;

/// One step of an interleaved mutation/compaction schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Add a timestamped link (may be a rejected self-loop).
    AddLink(NodeId, NodeId, Timestamp),
    /// Grow the node set without adding links.
    EnsureNode(NodeId),
    /// Compact the delta into a fresh frozen base.
    Rebase,
    /// Publish an overlay view to be checked for immutability later.
    Publish,
}

fn add_link() -> impl Strategy<Value = Op> {
    (0..24u32, 0..24u32, 0..60u32).prop_map(|(u, v, t)| Op::AddLink(u, v, t))
}

fn op() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` is uniform; weight mutations by
    // repeating the link-add arm.
    prop_oneof![
        add_link(),
        add_link(),
        add_link(),
        (0..24u32).prop_map(Op::EnsureNode),
        Just(Op::Rebase),
        Just(Op::Publish),
    ]
}

/// Asserts `got` answers every `GraphView` query like `want` does.
fn assert_views_agree<G: GraphView>(got: &G, want: &DynamicNetwork) {
    assert_eq!(got.node_count(), want.node_count());
    assert_eq!(got.link_count(), want.link_count());
    assert_eq!(got.revision(), want.revision());
    assert_eq!(got.is_empty(), want.is_empty());
    assert_eq!(got.min_timestamp(), want.min_timestamp());
    assert_eq!(got.max_timestamp(), want.max_timestamp());
    let n = want.node_count() as NodeId;
    for u in 0..n {
        assert_eq!(got.distinct_neighbors(u), want.neighbors(u));
        assert_eq!(got.neighbors(u), want.neighbors(u));
        assert_eq!(got.degree(u), want.degree(u));
        assert_eq!(got.multi_degree(u), want.multi_degree(u));
        let links: Vec<_> = got.incident_links(u).collect();
        assert_eq!(links.as_slice(), want.incident_links(u));
        // Pairwise queries, including ids one past the valid range.
        for w in 0..n + 1 {
            assert_eq!(got.has_link(u, w), want.has_link(u, w));
            assert_eq!(got.links_between(u, w), want.link_count_between(u, w));
            assert_eq!(
                got.timestamps_between(u, w),
                want.timestamps_between(u, w)
            );
        }
    }
}

proptest! {
    /// The delta/frozen family tracks a mutable twin bit for bit through
    /// arbitrary interleavings of mutations, rebases and publishes, and
    /// published overlays stay frozen at their publish-time state.
    #[test]
    fn views_track_dynamic_network(ops in prop::collection::vec(op(), 1..60)) {
        let mut net = DynamicNetwork::new();
        let mut delta = DeltaGraph::new(Arc::new(FrozenGraph::empty()));
        let mut published: Vec<(dyngraph::OverlayView, DynamicNetwork)> =
            Vec::new();
        for op in ops {
            match op {
                Op::AddLink(u, v, t) => {
                    let a = net.try_add_link(u, v, t);
                    let b = delta.try_add_link(u, v, t);
                    prop_assert_eq!(a.is_ok(), b.is_ok());
                }
                Op::EnsureNode(id) => {
                    net.ensure_node(id);
                    delta.ensure_node(id);
                }
                Op::Rebase => {
                    let base = delta.rebase();
                    assert_views_agree(&*base, &net);
                    prop_assert!(delta.is_clean());
                }
                Op::Publish => {
                    published.push((delta.publish(), net.clone()));
                }
            }
        }
        assert_views_agree(&delta, &net);
        assert_views_agree(&FrozenGraph::from_view(&net), &net);
        assert_views_agree(&delta.freeze(), &net);
        for (view, net_then) in &published {
            assert_views_agree(view, net_then);
        }
    }

    /// The wide and compact physical layouts are observationally
    /// identical: every `GraphView` query answers the same over both,
    /// and re-freezing across layouts loses nothing in either
    /// direction.
    #[test]
    fn wide_and_compact_agree_on_every_query(
        links in prop::collection::vec((0..24u32, 0..24u32, 0..2000u32), 1..80)
    ) {
        let mut net = DynamicNetwork::new();
        for (u, v, t) in links {
            let _ = net.try_add_link(u, v, t);
        }
        let wide = FrozenGraph::from_view_with(&net, StorageMode::Wide)
            .expect("wide freeze never fails");
        let compact = FrozenGraph::from_view_with(&net, StorageMode::Compact)
            .expect("tiny graphs always fit the compact limits");
        prop_assert_eq!(wide.storage_mode(), StorageMode::Wide);
        prop_assert_eq!(compact.storage_mode(), StorageMode::Compact);
        assert_views_agree(&wide, &net);
        assert_views_agree(&compact, &net);
        // Cross-layout refreeze: each direction reproduces the other
        // exactly (logical equality holds across representations).
        let back = FrozenGraph::from_view_with(&compact, StorageMode::Wide)
            .expect("wide freeze never fails");
        prop_assert_eq!(&back, &wide);
        let forth = FrozenGraph::from_view_with(&wide, StorageMode::Compact)
            .expect("tiny graphs always fit the compact limits");
        prop_assert_eq!(&forth, &compact);
    }

    /// A `DeltaGraph` over a compact base tracks its mutable twin bit
    /// for bit, and mode-preserving rebases keep the compact layout.
    #[test]
    fn delta_over_compact_base_tracks_twin(
        base_links in prop::collection::vec((0..20u32, 0..20u32, 0..300u32), 1..40),
        delta_links in prop::collection::vec((0..24u32, 0..24u32, 300..600u32), 1..40),
    ) {
        let mut net = DynamicNetwork::new();
        for (u, v, t) in base_links {
            let _ = net.try_add_link(u, v, t);
        }
        let base = FrozenGraph::from_view_with(&net, StorageMode::Compact)
            .expect("tiny graphs always fit the compact limits");
        let mut delta = DeltaGraph::new(Arc::new(base));
        for (u, v, t) in delta_links {
            let a = net.try_add_link(u, v, t);
            let b = delta.try_add_link(u, v, t);
            prop_assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_views_agree(&delta, &net);
        let rebased = delta
            .rebase_with(StorageMode::Compact)
            .expect("tiny graphs always fit the compact limits");
        prop_assert_eq!(rebased.storage_mode(), StorageMode::Compact);
        assert_views_agree(&*rebased, &net);
    }

    /// Freezing a frozen graph is the identity (CSR round-trips).
    #[test]
    fn refreeze_is_identity(
        links in prop::collection::vec(
            (0..20u32, 0..20u32, 0..50u32)
                .prop_filter("no self-loops", |(u, v, _)| u != v),
            1..80,
        )
    ) {
        let net: DynamicNetwork = links.into_iter().collect();
        let once = FrozenGraph::from_view(&net);
        let twice = FrozenGraph::from_view(&once);
        prop_assert_eq!(&once, &twice);
        assert_views_agree(&once, &net);
    }
}
