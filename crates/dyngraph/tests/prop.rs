//! Property-based tests for the dynamic-network substrate.

use proptest::prelude::*;

use dyngraph::{io, stats::NetworkStats, traversal, DynamicNetwork, NodeId};

fn links() -> impl Strategy<Value = Vec<(NodeId, NodeId, u32)>> {
    prop::collection::vec(
        (0..20u32, 0..20u32, 0..50u32)
            .prop_filter("no self-loops", |(u, v, _)| u != v),
        1..80,
    )
}

proptest! {
    /// Adjacency symmetry: every stored link is visible from both sides.
    #[test]
    fn adjacency_is_symmetric(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        for u in 0..g.node_count() as NodeId {
            for &v in g.neighbors(u) {
                prop_assert!(g.neighbors(v).contains(&u));
                prop_assert_eq!(
                    g.link_count_between(u, v),
                    g.link_count_between(v, u)
                );
            }
        }
    }

    /// Link count equals the sum of multi-degrees / 2 and the number of
    /// iterated links.
    #[test]
    fn degree_sum_is_twice_links(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let degree_sum: usize =
            (0..g.node_count()).map(|u| g.multi_degree(u as NodeId)).sum();
        prop_assert_eq!(degree_sum, 2 * g.link_count());
        prop_assert_eq!(g.links().count(), g.link_count());
    }

    /// Period slicing partitions the links: [lo, mid) ∪ [mid, hi] = all.
    #[test]
    fn period_partitions_links(ls in links(), mid in 1..49u32) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let early = g.period(0, mid).expect("valid period");
        let late = g.period(mid, 51).expect("valid period");
        prop_assert_eq!(early.link_count() + late.link_count(), g.link_count());
    }

    /// Static collapse conserves total multiplicity.
    #[test]
    fn static_weights_conserve_multiplicity(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let s = g.to_static();
        let weight_sum: u64 =
            s.edges().map(|(_, _, w)| w as u64).sum();
        prop_assert_eq!(weight_sum, g.link_count() as u64);
        for (u, v, w) in s.edges() {
            prop_assert_eq!(w as usize, g.link_count_between(u, v));
        }
    }

    /// Edge-list round trip is lossless up to link multiset equality.
    #[test]
    fn edge_list_round_trip(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).expect("write to memory");
        let g2 = io::read_edge_list(buf.as_slice()).expect("parse back");
        let mut a: Vec<_> = g.links().collect();
        let mut b: Vec<_> = g2.links().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// BFS distances satisfy the triangle property along edges: neighbors
    /// differ by at most 1.
    #[test]
    fn bfs_distances_are_lipschitz(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let d = traversal::bfs_bounded(&g, &[0], u32::MAX);
        let map: std::collections::HashMap<_, _> = d.into_iter().collect();
        for u in 0..g.node_count() as NodeId {
            if let Some(&du) = map.get(&u) {
                for &v in g.neighbors(u) {
                    let dv = map.get(&v).copied().expect("neighbor reachable");
                    prop_assert!(du.abs_diff(dv) <= 1);
                }
            }
        }
    }

    /// Stats: time span covers all link timestamps; avg degree matches.
    #[test]
    fn stats_consistent(ls in links()) {
        let g: DynamicNetwork = ls.into_iter().collect();
        let s = NetworkStats::of(&g);
        prop_assert_eq!(s.links, g.link_count());
        let span = g.max_timestamp().unwrap() - g.min_timestamp().unwrap() + 1;
        prop_assert_eq!(s.time_span, span);
        prop_assert!((s.avg_degree * s.nodes as f64 - 2.0 * s.links as f64).abs() < 1e-9);
    }
}

// Parser robustness: feeding arbitrary bytes into either edge-list
// reader must never panic — the strict reader may reject with a typed
// error, the lossy reader must account for every data line it saw.
proptest! {
    #[test]
    fn strict_parser_never_panics_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        // Ok or Err are both acceptable; reaching this line is the test.
        let _ = io::read_edge_list(bytes.as_slice());
    }

    #[test]
    fn lossy_parser_never_panics_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..512)
    ) {
        let report = io::read_edge_list_lossy(bytes.as_slice());
        // Every accepted line is a real link; the rate stays a ratio.
        prop_assert_eq!(report.network.link_count(), report.accepted);
        let rate = report.rejection_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        for r in &report.rejected {
            prop_assert!(r.line >= 1);
            prop_assert!(!r.reason.is_empty());
        }
    }

    /// A fault-injected rendering of a valid network parses without
    /// panicking, and injected faults can only lose links, not invent
    /// ones beyond the clean stream.
    #[test]
    fn faulty_reader_never_panics_lossy_parser(
        seed in any::<u64>(),
        corrupt in 0..60u32,
        garbage in 0..60u32,
    ) {
        let mut g = DynamicNetwork::new();
        for i in 0..30u32 {
            g.add_link(i, (i + 1) % 30, 1 + i % 5);
        }
        let mut clean = Vec::new();
        io::write_edge_list(&g, &mut clean).expect("write to memory");
        let faulty = io::FaultyReader::new(
            clean.as_slice(),
            io::FaultConfig {
                corrupt_rate: corrupt as f64 / 100.0,
                truncate_rate: 0.1,
                garbage_rate: garbage as f64 / 100.0,
                seed,
                ..io::FaultConfig::default()
            },
        );
        let report = io::read_edge_list_lossy(std::io::BufReader::new(faulty));
        prop_assert!(report.accepted <= g.link_count());
        prop_assert_eq!(report.network.link_count(), report.accepted);
    }
}
