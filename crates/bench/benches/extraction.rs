//! Criterion micro-benchmarks of the SSF extraction pipeline stages
//! (h-hop subgraph, structure combination, Palette-WL, full SSF) against
//! the WLF baseline pipeline on a realistic hub-dominated network.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use baselines::{WlfConfig, WlfExtractor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datasets::DatasetSpec;
use ssf_core::{
    palette::palette_wl, HopSubgraph, SsfConfig, SsfExtractor,
    StructureSubgraph,
};

fn bench_pipeline(c: &mut Criterion) {
    let spec = DatasetSpec::facebook().scaled(0.25);
    let g = spec.generate(3);
    let stat = g.to_static();
    // A mid-degree target pair.
    let (a, b) = (10u32, 200u32);
    let l_t = g.max_timestamp().unwrap() + 1;

    c.bench_function("hop_subgraph_h1", |bench| {
        bench.iter(|| HopSubgraph::extract(black_box(&g), a, b, 1))
    });

    let hop = HopSubgraph::extract(&g, a, b, 1);
    c.bench_function("structure_combination", |bench| {
        bench.iter(|| StructureSubgraph::combine(black_box(&hop)))
    });

    let s = StructureSubgraph::combine(&hop);
    let adj: Vec<Vec<usize>> = (0..s.node_count())
        .map(|x| s.neighbors(x).to_vec())
        .collect();
    let dist: Vec<u32> = (0..s.node_count()).map(|x| s.distance(x)).collect();
    let tiebreak: Vec<u64> = (0..s.node_count())
        .map(|x| s.members(x)[0] as u64)
        .collect();
    c.bench_function("palette_wl", |bench| {
        bench.iter(|| palette_wl(black_box(&adj), &dist, (0, 1), &tiebreak))
    });

    let ssf = SsfExtractor::new(SsfConfig::new(10));
    c.bench_function("ssf_extract_full", |bench| {
        bench.iter(|| ssf.extract(black_box(&g), a, b, l_t))
    });

    let wlf = WlfExtractor::new(WlfConfig::new(10));
    c.bench_function("wlf_extract_full", |bench| {
        bench.iter(|| wlf.extract(black_box(&stat), a, b))
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
