//! Criterion micro-benchmarks of the models: ridge solve, one neural
//! machine training epoch, NMF update rounds.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use baselines::{Nmf, NmfConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datasets::DatasetSpec;
use linalg::Matrix;
use ssf_ml::{LinearRegression, MlpConfig, NeuralMachine};

fn synthetic_features(n: usize, d: usize) -> (Matrix, Vec<f64>, Vec<usize>) {
    let x = Matrix::from_fn(n, d, |i, j| {
        (((i * 37 + j * 11) % 17) as f64 - 8.0) / 8.0
    });
    let y_f: Vec<f64> = (0..n).map(|i| f64::from(x[(i, 0)] > 0.0)).collect();
    let y_c: Vec<usize> = y_f.iter().map(|&v| v as usize).collect();
    (x, y_f, y_c)
}

fn bench_models(c: &mut Criterion) {
    let (x, y_f, y_c) = synthetic_features(400, 44); // K=10 feature dim

    c.bench_function("ridge_fit_400x44", |bench| {
        bench.iter(|| LinearRegression::fit(black_box(&x), &y_f, 1e-3).unwrap())
    });

    c.bench_function("neural_machine_10_epochs", |bench| {
        bench.iter(|| {
            NeuralMachine::train(
                black_box(&x),
                &y_c,
                MlpConfig {
                    epochs: 10,
                    ..MlpConfig::default()
                },
            )
        })
    });

    let g = DatasetSpec::coauthor().scaled(0.5).generate(5).to_static();
    c.bench_function("nmf_20_rounds", |bench| {
        bench.iter(|| {
            Nmf::factorize(
                black_box(&g),
                NmfConfig {
                    rank: 16,
                    iterations: 20,
                    seed: 7,
                },
            )
        })
    });
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
