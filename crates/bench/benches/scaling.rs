//! Criterion benchmark of the paper's complexity claim: SSF extraction is
//! `O(K³ + K·|V_h|²)` (Algorithm 3 analysis) — cost should grow with K and
//! with the surrounding subgraph size, not with the whole network.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use criterion::{
    black_box, criterion_group, criterion_main, BenchmarkId, Criterion,
};
use datasets::{DatasetSpec, Topology};
use ssf_core::{SsfConfig, SsfExtractor};

fn bench_scaling(c: &mut Criterion) {
    // Sweep K on a fixed network.
    let g = DatasetSpec::coauthor().generate(3);
    let l_t = g.max_timestamp().unwrap() + 1;
    let mut group = c.benchmark_group("ssf_vs_k");
    for k in [5usize, 10, 15, 20] {
        let ex = SsfExtractor::new(SsfConfig::new(k));
        group.bench_with_input(
            BenchmarkId::from_parameter(k),
            &k,
            |bench, _| bench.iter(|| ex.extract(black_box(&g), 5, 100, l_t)),
        );
    }
    group.finish();

    // Sweep network size at fixed K: per-link cost should stay bounded by
    // the local neighborhood, not the global size.
    let mut group = c.benchmark_group("ssf_vs_network_size");
    for nodes in [200usize, 400, 800, 1600] {
        let spec = DatasetSpec {
            name: "scaling",
            nodes,
            target_links: nodes * 6,
            time_span: 100,
            topology: Topology::HubDominated {
                repeat: 0.2,
                hub_bias: 1.1,
                local: 0.5,
            },
        };
        let g = spec.generate(4);
        let l_t = g.max_timestamp().unwrap() + 1;
        let ex = SsfExtractor::new(SsfConfig::new(10));
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &nodes,
            |bench, _| bench.iter(|| ex.extract(black_box(&g), 7, 90, l_t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
