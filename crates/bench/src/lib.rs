//! Shared harness utilities for the experiment binaries.
//!
//! Every paper table/figure has a binary in `src/bin/`:
//!
//! | binary    | reproduces |
//! |-----------|------------|
//! | `table1`  | Table I — feature comparison on the Figure 1 celebrity network |
//! | `table2`  | Table II — dataset statistics |
//! | `table3`  | Table III — AUC/F1 of all 15 methods × 7 datasets |
//! | `fig6`    | Figure 6 — most frequent K-structure-subgraph patterns |
//! | `fig7`    | Figure 7 — SSFNM across K ∈ {5, 10, 15, 20} |
//! | `ablation`| DESIGN.md §5 — entry-encoding and θ sweeps |
//!
//! All binaries accept `--fast` (scaled-down datasets and budgets),
//! `--seed <n>`, `--data-dir <path>` (real KONECT edge lists, see
//! `datasets::io`), and `--datasets a,b,c` to filter.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::path::PathBuf;

use datasets::DatasetSpec;
use dyngraph::DynamicNetwork;
use ssf_eval::{
    backtest_splits, BacktestConfig, Split, SplitConfig, SplitError,
};

/// Command-line options shared by the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// Scale datasets and training budgets down for a quick smoke run.
    pub fast: bool,
    /// Base RNG seed (generation, splitting, training).
    pub seed: u64,
    /// Directory searched for real KONECT edge lists.
    pub data_dir: PathBuf,
    /// If non-empty: only run datasets whose name matches (case-insensitive).
    pub datasets: Vec<String>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            fast: false,
            seed: 7,
            data_dir: PathBuf::from("data"),
            datasets: Vec::new(),
        }
    }
}

impl HarnessOptions {
    /// Parses the common flags from `std::env::args()`-style input,
    /// ignoring unknown flags (binaries parse their own extras).
    ///
    /// # Panics
    ///
    /// Panics with a usage message if a flag is missing its value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = HarnessOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => opts.fast = true,
                "--seed" => {
                    let v = it.next().expect("--seed requires a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--data-dir" => {
                    let v = it.next().expect("--data-dir requires a value");
                    opts.data_dir = PathBuf::from(v);
                }
                "--datasets" => {
                    let v = it.next().expect("--datasets requires a value");
                    opts.datasets = v
                        .split(',')
                        .map(|s| s.trim().to_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                _ => {}
            }
        }
        opts
    }

    /// The dataset specs selected by the filter, scaled down in fast mode.
    pub fn selected_specs(&self) -> Vec<DatasetSpec> {
        DatasetSpec::paper_datasets()
            .into_iter()
            .filter(|s| {
                self.datasets.is_empty()
                    || self
                        .datasets
                        .iter()
                        .any(|d| s.name.to_lowercase().contains(d))
            })
            .map(|s| if self.fast { s.scaled(0.15) } else { s })
            .collect()
    }

    /// Minimum positives a split must have (widening the window as
    /// needed).
    pub fn min_positives(&self) -> usize {
        if self.fast {
            60
        } else {
            150
        }
    }

    /// Cap on positives to bound supervised feature extraction.
    pub fn max_positives(&self) -> usize {
        if self.fast {
            120
        } else {
            400
        }
    }
}

/// A loaded dataset ready for evaluation.
#[derive(Debug, Clone)]
pub struct PreparedDataset {
    /// Spec the network was produced from.
    pub spec: DatasetSpec,
    /// The full dynamic network.
    pub network: DynamicNetwork,
    /// Train/test split over the last timestamps.
    pub split: Split,
    /// Earlier-window splits used to augment supervised training
    /// ([`ssf_repro::methods::Method::evaluate_augmented`]); strictly
    /// predate the evaluation window, so nothing leaks.
    pub extra_train: Vec<Split>,
    /// The prediction window the split settled on (ticks).
    pub window: u32,
}

/// Loads (or generates) and splits a dataset.
///
/// # Errors
///
/// Propagates [`SplitError`] when the network cannot produce a usable
/// split even at the widest window.
pub fn prepare(
    spec: &DatasetSpec,
    opts: &HarnessOptions,
) -> Result<PreparedDataset, SplitError> {
    let (network, _prov) = spec
        .load_or_generate(&opts.data_dir, opts.seed)
        .expect("real dataset file exists but is malformed");
    let cfg = SplitConfig {
        seed: opts.seed,
        max_positives: Some(opts.max_positives()),
        ..SplitConfig::default()
    };
    let split =
        Split::with_min_positives(&network, &cfg, opts.min_positives())?;
    let window = network.max_timestamp().expect("non-empty")
        - split.history.max_timestamp().expect("non-empty history");
    // Supervised training-set augmentation: three earlier prediction
    // windows carved out of the *history* (they end before the evaluation
    // window starts). Their negatives are sampled against the truncated
    // stream only — a pair unlinked then may link later, a small and
    // realistic amount of label pessimism.
    let extra_train = backtest_splits(
        &split.history,
        &BacktestConfig {
            split: cfg,
            folds: 3,
            stride: window.max(1),
            min_positives: opts.min_positives() / 2,
        },
    )
    .unwrap_or_default();
    Ok(PreparedDataset {
        spec: spec.clone(),
        network,
        split,
        extra_train,
        window,
    })
}

/// Builds the paper's Figure 1 celebrity network: celebrities A, B, C with
/// fan crowds, fans X, Y of C only. Returns `(network, (a, b), (x, y))`.
///
/// Links carry timestamps so the same example also exercises the temporal
/// encodings (celebrity interactions are recent and repeated).
pub fn figure1_network() -> (DynamicNetwork, (u32, u32), (u32, u32)) {
    let mut g = DynamicNetwork::new();
    let (a, b, c, x, y) = (0u32, 1u32, 2u32, 3u32, 4u32);
    // A and B frequently interact with celebrity C (recent, repeated).
    for t in [6, 7, 8, 9] {
        g.add_link(a, c, t);
        g.add_link(b, c, t);
    }
    // X and Y are fans of C with the same number of (older) comments, so
    // the weighted rWRA ties exactly like the unweighted indices do.
    for t in [1, 2, 3, 4] {
        g.add_link(x, c, t);
        g.add_link(y, c, t);
    }
    // Fan crowds make A, B, C high degree.
    let mut next = 5u32;
    for celeb in [a, b, c] {
        for _ in 0..8 {
            g.add_link(celeb, next, 1 + next % 9);
            next += 1;
        }
    }
    (g, (a, b), (x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_common_flags() {
        let o = HarnessOptions::parse(args(&[
            "--fast",
            "--seed",
            "42",
            "--datasets",
            "digg,Contact",
            "--data-dir",
            "/tmp/x",
        ]));
        assert!(o.fast);
        assert_eq!(o.seed, 42);
        assert_eq!(o.datasets, vec!["digg", "contact"]);
        assert_eq!(o.data_dir, PathBuf::from("/tmp/x"));
    }

    #[test]
    fn selected_specs_filter_and_scale() {
        let mut o = HarnessOptions::default();
        assert_eq!(o.selected_specs().len(), 7);
        o.datasets = vec!["digg".to_string()];
        let sel = o.selected_specs();
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].name, "Digg");
        o.fast = true;
        assert!(o.selected_specs()[0].nodes < 3215);
    }

    #[test]
    fn prepare_produces_usable_split() {
        let opts = HarnessOptions {
            fast: true,
            ..HarnessOptions::default()
        };
        let spec = DatasetSpec::coauthor().scaled(0.2);
        let prep = prepare(&spec, &opts).unwrap();
        assert!(prep.window >= 1);
        let positives = prep
            .split
            .train
            .iter()
            .chain(&prep.split.test)
            .filter(|s| s.label)
            .count();
        assert!(positives >= 2);
    }

    #[test]
    fn figure1_network_shape() {
        let (g, (a, b), (x, y)) = figure1_network();
        // A-B and X-Y are the target links: absent.
        assert!(!g.has_link(a, b));
        assert!(!g.has_link(x, y));
        // Celebrities have high degree, fans degree 1.
        assert!(g.degree(a) >= 9);
        assert_eq!(g.degree(x), 1);
        assert_eq!(g.link_count_between(a, 2), 4);
    }
}
