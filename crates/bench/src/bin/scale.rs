//! Million-scale tier benchmark: generates the [`ScaleTier`] ladder,
//! freezes each tier in both physical layouts, and runs the serving
//! path end-to-end on every tier.
//!
//! Per tier, the report measures:
//!
//! * streamed generation and ingest time (events/s through `observe`),
//! * freeze time for the wide (usize-offset) and compact (u32 +
//!   varint-arena) layouts,
//! * `heap_bytes()` per link for each layout — the honest compression
//!   accounting the compact representation is judged by,
//! * cold and warm batch-scoring throughput through a fitted online
//!   predictor (cold = extraction cache cleared),
//! * snapshot publish latency (median of several publishes).
//!
//! Emits machine-readable `BENCH_scale.json`. The binary itself asserts
//! the invariants CI gates on: compact bytes/link strictly below wide
//! bytes/link on every tier, and cold/warm scores bit-identical.
//!
//! Run: `cargo run -p ssf-bench --release --bin scale
//!       [--smoke] [--seed <n>] [--out <path>]`
//!
//! Full mode runs the S(10k)/M(100k)/L(400k)-node tiers; `--smoke`
//! substitutes a scaled-down M so the whole run fits a CI minute while
//! still crossing the streamed-generation and compact-auto thresholds.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fs;
use std::time::Instant;

use datasets::{DatasetSpec, ScaleTier};
use dyngraph::{FrozenGraph, NodeId, StorageMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssf_eval::SplitConfig;
use ssf_repro::methods::MethodOptions;
use ssf_repro::{OnlineLinkPredictor, OnlinePredictorConfig};

const CHUNK: usize = 64;

struct TierReport {
    tier: &'static str,
    spec_name: &'static str,
    nodes: usize,
    links: usize,
    gen_secs: f64,
    ingest_secs: f64,
    wide_secs: f64,
    compact_secs: f64,
    wide_bytes: usize,
    compact_bytes: usize,
    pairs: usize,
    cold_pps: f64,
    warm_pps: f64,
    storage_mode: StorageMode,
    publish_us: f64,
}

impl TierReport {
    fn wide_per_link(&self) -> f64 {
        self.wide_bytes as f64 / self.links as f64
    }
    fn compact_per_link(&self) -> f64 {
        self.compact_bytes as f64 / self.links as f64
    }
    fn saving_pct(&self) -> f64 {
        100.0 * (1.0 - self.compact_per_link() / self.wide_per_link())
    }
}

/// Times one tier end to end: generate → freeze both layouts →
/// ingest → fit → score cold/warm → publish.
fn run_tier(
    tier: &'static str,
    spec: &DatasetSpec,
    seed: u64,
    n_pairs: usize,
) -> TierReport {
    let t0 = Instant::now();
    let g = spec.generate(seed);
    let gen_secs = t0.elapsed().as_secs_f64();
    println!(
        "[{tier}] generated {} nodes / {} links in {gen_secs:.2}s",
        g.node_count(),
        g.link_count()
    );

    let t0 = Instant::now();
    let wide = FrozenGraph::from_view_with(&g, StorageMode::Wide)
        .expect("wide freeze never fails");
    let wide_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let compact = FrozenGraph::from_view_with(&g, StorageMode::Compact)
        .expect("every tier fits the compact u32 limits");
    let compact_secs = t0.elapsed().as_secs_f64();
    let (wide_bytes, compact_bytes) = (wide.heap_bytes(), compact.heap_bytes());
    assert!(
        compact_bytes < wide_bytes,
        "[{tier}] compact layout must be smaller: {compact_bytes} vs \
         {wide_bytes} bytes"
    );
    println!(
        "[{tier}] freeze wide {wide_secs:.2}s ({:.1} B/link), \
         compact {compact_secs:.2}s ({:.1} B/link, -{:.1}%)",
        wide_bytes as f64 / g.link_count() as f64,
        compact_bytes as f64 / g.link_count() as f64,
        100.0 * (1.0 - compact_bytes as f64 / wide_bytes as f64),
    );
    drop(wide);
    drop(compact);

    // End-to-end serving path: ingest the stream, fit once, score.
    // The split caps keep the fit cost bounded so throughput measures
    // extraction + scoring over the tier's graph, not training size.
    let config = OnlinePredictorConfig::builder()
        .method(MethodOptions {
            seed,
            nm_epochs: 12,
            ..MethodOptions::default()
        })
        .refit_every(u32::MAX)
        .min_positives(40)
        .history_folds(0)
        .split(SplitConfig {
            seed,
            max_positives: Some(160),
            ..SplitConfig::default()
        })
        .build()
        .expect("valid benchmark configuration");
    let mut p = OnlineLinkPredictor::new(config);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    let t0 = Instant::now();
    for l in &links {
        p.observe(l.u, l.v, l.t);
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    println!(
        "[{tier}] ingested {} events in {ingest_secs:.2}s ({:.0} events/s)",
        links.len(),
        links.len() as f64 / ingest_secs.max(1e-9),
    );
    p.try_refit().expect("tier stream must support a fit");

    // Recommendation-shaped pairs: focal nodes × candidates with
    // repeats, the same shape the batch_scoring bench uses.
    let n = p.network().node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n_pairs);
    let mut focal = rng.gen_range(0..n);
    for i in 0..n_pairs {
        if i % 16 == 0 {
            focal = rng.gen_range(0..n);
        }
        let pair = if i % 4 == 3 && !pairs.is_empty() {
            pairs[rng.gen_range(0..pairs.len())]
        } else {
            (focal, rng.gen_range(0..n))
        };
        pairs.push(pair);
    }

    let run_batch = |p: &mut OnlineLinkPredictor| {
        let t0 = Instant::now();
        let mut out = Vec::with_capacity(pairs.len());
        for chunk in pairs.chunks(CHUNK) {
            out.extend(p.score_batch(chunk));
        }
        (
            out,
            pairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9),
        )
    };
    p.clear_cache();
    let (cold_scores, cold_pps) = run_batch(&mut p);
    let (warm_scores, warm_pps) = run_batch(&mut p);
    assert_eq!(cold_scores, warm_scores, "warm batch changed scores");
    println!(
        "[{tier}] scoring {} pairs: cold {cold_pps:.0} pairs/s, \
         warm {warm_pps:.0} pairs/s",
        pairs.len()
    );

    // Snapshot publish latency: median of five publishes (O(delta)
    // copy-on-write, so this is the tail a serving replica pays).
    let mut publish_us: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = Instant::now();
            let s = p.snapshot();
            let us = t0.elapsed().as_secs_f64() * 1e6;
            drop(s);
            us
        })
        .collect();
    publish_us.sort_by(f64::total_cmp);
    let publish_us = publish_us[publish_us.len() / 2];
    let storage_mode = p.snapshot().storage_mode();
    println!(
        "[{tier}] snapshot publish p50 {publish_us:.1}us \
         (storage: {storage_mode})"
    );

    TierReport {
        tier,
        spec_name: spec.name,
        nodes: g.node_count(),
        links: g.link_count(),
        gen_secs,
        ingest_secs,
        wide_secs,
        compact_secs,
        wide_bytes,
        compact_bytes,
        pairs: pairs.len(),
        cold_pps,
        warm_pps,
        storage_mode,
        publish_us,
    }
}

fn tier_json(r: &TierReport) -> String {
    format!(
        "    {{\n      \"tier\": \"{}\",\n      \"spec\": \"{}\",\n      \
         \"nodes\": {},\n      \"links\": {},\n      \
         \"gen_secs\": {:.3},\n      \"ingest_secs\": {:.3},\n      \
         \"freeze\": {{ \"wide_secs\": {:.3}, \"compact_secs\": {:.3} }},\n      \
         \"bytes\": {{\n        \"wide\": {},\n        \"compact\": {},\n        \
         \"wide_per_link\": {:.2},\n        \"compact_per_link\": {:.2},\n        \
         \"saving_pct\": {:.1}\n      }},\n      \
         \"scoring\": {{\n        \"pairs\": {},\n        \
         \"cold_pairs_per_sec\": {:.1},\n        \
         \"warm_pairs_per_sec\": {:.1},\n        \
         \"storage_mode\": \"{}\"\n      }},\n      \
         \"snapshot_publish_us\": {:.1}\n    }}",
        r.tier,
        r.spec_name,
        r.nodes,
        r.links,
        r.gen_secs,
        r.ingest_secs,
        r.wide_secs,
        r.compact_secs,
        r.wide_bytes,
        r.compact_bytes,
        r.wide_per_link(),
        r.compact_per_link(),
        r.saving_pct(),
        r.pairs,
        r.cold_pps,
        r.warm_pps,
        r.storage_mode,
        r.publish_us,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_scale.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out requires a value").clone();
            }
            _ => {}
        }
    }

    // Smoke keeps CI fast but still crosses both interesting
    // thresholds: S streams (10k nodes = STREAM_THRESHOLD) and the
    // reduced M (70k nodes) sits above the compact-auto node floor, so
    // its serving path runs on the compact layout.
    let tiers: Vec<(&'static str, DatasetSpec, usize)> = if smoke {
        vec![
            ("S", DatasetSpec::tier(ScaleTier::S), 256),
            ("M-smoke", DatasetSpec::tier(ScaleTier::M).scaled(0.7), 256),
        ]
    } else {
        vec![
            ("S", DatasetSpec::tier(ScaleTier::S), 1024),
            ("M", DatasetSpec::tier(ScaleTier::M), 1024),
            ("L", DatasetSpec::tier(ScaleTier::L), 512),
        ]
    };

    let reports: Vec<TierReport> = tiers
        .iter()
        .map(|(tier, spec, pairs)| run_tier(tier, spec, seed, *pairs))
        .collect();

    for w in reports.windows(2) {
        assert!(
            w[0].links < w[1].links,
            "tiers must be monotone in links: {} !< {}",
            w[0].links,
            w[1].links
        );
    }

    let body: Vec<String> = reports.iter().map(tier_json).collect();
    let json = format!(
        "{{\n  \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"tiers\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
