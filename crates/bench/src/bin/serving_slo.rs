//! Serving-SLO benchmark: closed- and open-loop load generators driving
//! the request-coalescing front-end.
//!
//! One binary, many load configurations (the unified experiment-
//! interface idiom): a fitted [`ScoringSnapshot`] is put behind a
//! [`Coalescer`], a worker thread drives dispatch, and client threads
//! sweep offered QPS under two arrival models:
//!
//! * **Closed-loop** — each client submits one request, waits for its
//!   ticket, then paces to the point's offered rate. The final sweep
//!   point is unpaced (clients submit as fast as the loop allows),
//!   which is where coalescing shows: queue depth rises, batches fill,
//!   and the warm batch path amortizes extraction across requests.
//! * **Open-loop** — arrivals follow a schedule independent of
//!   completions (fixed-rate or Poisson), the honest overload model: a
//!   slow server cannot slow the arrival process down, so queue growth
//!   turns into deadline misses and admission sheds instead of
//!   politely throttled clients. The open-loop points report exactly
//!   that shed/miss behavior under overload.
//!
//! Per sweep point: achieved QPS, p50/p99 end-to-end latency,
//! deadline-miss rate, mean batch size and overload rejections. Before
//! any load runs, a deterministic pass asserts the coalesced path is
//! bit-identical to direct `score_batch` on the same pairs, and the
//! admission counters are checked to reconcile exactly after every
//! point.
//!
//! Emits machine-readable `BENCH_serving_slo.json`. The batching
//! speedup target (coalesced unpaced throughput ≥ the serial per-pair
//! path) is cores-conditioned: on hosts with fewer than 4 cores the
//! client threads, the worker and the scoring all contend for one core,
//! so the target is reported as `"unmeasurable"` rather than a
//! misleading boolean.
//!
//! Run: `cargo run -p ssf-bench --release --bin serving_slo
//!       [--smoke] [--seed <n>] [--out <path>]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fs;
use std::time::{Duration, Instant};

use datasets::DatasetSpec;
use dyngraph::{GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssf_repro::methods::MethodOptions;
use ssf_repro::{
    CoalesceConfig, Coalescer, OnlineLinkPredictor, OnlinePredictorConfig,
    Rejection, ScoringSnapshot,
};

/// Deadline budget applied to every load-generator request. Generous on
/// purpose: at trivial load nothing should miss it, so the smoke gate
/// can require a 0.0 miss rate.
const DEADLINE_BUDGET: Duration = Duration::from_millis(250);

fn config(smoke: bool, seed: u64) -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            seed,
            nm_epochs: if smoke { 15 } else { 40 },
            ..MethodOptions::default()
        })
        .refit_every(u32::MAX) // one deliberate refit after ingest
        .min_positives(if smoke { 20 } else { 60 })
        .history_folds(0)
        .build()
        .expect("valid benchmark configuration")
}

fn fitted_snapshot(smoke: bool, seed: u64) -> ScoringSnapshot {
    let spec = if smoke {
        DatasetSpec::prosper().scaled(0.2)
    } else {
        DatasetSpec::prosper().scaled(0.5)
    };
    let g = spec.generate(seed);
    println!(
        "network: {} nodes, {} links ({})",
        g.node_count(),
        g.link_count(),
        spec.name
    );
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    let mut p = OnlineLinkPredictor::new(config(smoke, seed));
    for &(u, v, t) in &events {
        p.observe(u, v, t);
    }
    p.try_refit().expect("benchmark network must support a fit");
    p.snapshot()
}

/// The coalescer configuration every sweep point runs.
fn coalesce_config(threads: usize) -> CoalesceConfig {
    CoalesceConfig::builder()
        .max_batch(32)
        .max_delay_ns(100_000) // 100 µs
        .queue_capacity(256)
        .worker_threads(threads)
        .default_deadline_ns(Some(
            u64::try_from(DEADLINE_BUDGET.as_nanos()).unwrap_or(u64::MAX),
        ))
        .build()
        .expect("valid coalescer configuration")
}

/// Deterministic candidate pair for client `who`, request `i`.
fn pair_for(rng: &mut StdRng, n: NodeId) -> (NodeId, NodeId) {
    let u = rng.gen_range(0..n);
    let mut v = rng.gen_range(0..n);
    if u == v {
        v = (v + 1) % n;
    }
    (u, v)
}

/// Pre-load bit-identity check: drive the coalescer deterministically
/// over a fixed pair set and compare with direct `score_batch`.
fn check_bit_identity(snapshot: &ScoringSnapshot, seed: u64) -> bool {
    let n = snapshot.graph().node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e55_10aa);
    let pairs: Vec<(NodeId, NodeId)> =
        (0..200).map(|_| pair_for(&mut rng, n)).collect();
    let direct = snapshot.score_batch(&pairs);
    let c = Coalescer::new(
        snapshot.clone(),
        CoalesceConfig::builder()
            .max_batch(7) // deliberately odd: many batch boundaries
            .worker_threads(2)
            .queue_capacity(pairs.len())
            .build()
            .expect("valid"),
    );
    let tickets: Vec<_> = pairs
        .iter()
        .map(|&(u, v)| c.submit(u, v).expect("unbounded for this check"))
        .collect();
    while c.flush().remaining > 0 {}
    tickets.into_iter().zip(&direct).all(|(t, want)| {
        matches!(
            t.try_take(),
            Some(Ok(got)) if got.map(f64::to_bits) == want.map(f64::to_bits)
        )
    })
}

/// How the load generator times its submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arrivals {
    /// Submit, wait for the ticket, pace to the offered rate.
    Closed,
    /// Submit on a fixed-interval schedule regardless of completions.
    OpenFixed,
    /// Submit on a Poisson (exponential inter-arrival) schedule
    /// regardless of completions.
    OpenPoisson,
}

impl Arrivals {
    fn as_str(self) -> &'static str {
        match self {
            Arrivals::Closed => "closed",
            Arrivals::OpenFixed => "open-fixed",
            Arrivals::OpenPoisson => "open-poisson",
        }
    }
}

struct SweepPoint {
    offered_qps: Option<f64>,
    duration: Duration,
    clients: usize,
    arrivals: Arrivals,
}

#[derive(Debug)]
struct SweepResult {
    arrivals: &'static str,
    offered_qps: Option<f64>,
    submitted: u64,
    completed: u64,
    rejected_overload: u64,
    deadline_misses: u64,
    achieved_qps: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch_size: f64,
    miss_rate: f64,
}

fn print_point(r: &SweepResult) {
    let label = r
        .offered_qps
        .map_or("max".to_string(), |q| format!("{q:.0}"));
    println!(
        "{:>12} offered {label:>5} qps: achieved {:.0} qps, p50 {:.0}us, \
         p99 {:.0}us, mean batch {:.2}, miss rate {:.4}, shed {}",
        r.arrivals,
        r.achieved_qps,
        r.p50_us,
        r.p99_us,
        r.mean_batch_size,
        r.miss_rate,
        r.rejected_overload
    );
}

fn point_json(r: &SweepResult) -> String {
    let offered = r
        .offered_qps
        .map_or("\"max\"".to_string(), |q| format!("{q:.0}"));
    format!(
        "    {{ \"arrivals\": \"{}\", \"offered_qps\": {offered}, \
         \"submitted\": {}, \"completed\": {}, \
         \"rejected_overload\": {}, \"deadline_misses\": {}, \
         \"achieved_qps\": {:.1}, \"p50_us\": {:.1}, \
         \"p99_us\": {:.1}, \"mean_batch_size\": {:.3}, \
         \"deadline_miss_rate\": {:.6} }}",
        r.arrivals,
        r.submitted,
        r.completed,
        r.rejected_overload,
        r.deadline_misses,
        r.achieved_qps,
        r.p50_us,
        r.p99_us,
        r.mean_batch_size,
        r.miss_rate
    )
}

fn quantile_us(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64 / 1e3
}

/// One closed-loop client: submit, wait, pace. The server's speed
/// throttles the client, so overload shows up as reduced throughput.
fn closed_loop_client(
    c: &Coalescer<ScoringSnapshot>,
    point: &SweepPoint,
    interval: Option<Duration>,
    n: NodeId,
    seed: u64,
    who: usize,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ (0xc11e_u64 + who as u64));
    let mut lat: Vec<u64> = Vec::new();
    let start = Instant::now();
    let mut next = start;
    while start.elapsed() < point.duration {
        if let Some(iv) = interval {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            }
            next += iv;
        }
        let (u, v) = pair_for(&mut rng, n);
        let issued = Instant::now();
        match c.submit(u, v) {
            Ok(ticket) => {
                if ticket.wait().is_ok() {
                    let ns = u64::try_from(issued.elapsed().as_nanos())
                        .unwrap_or(u64::MAX);
                    lat.push(ns);
                }
            }
            Err(Rejection::Overloaded { .. }) => {
                // Shed: closed loop retries next slot.
            }
            Err(_) => {}
        }
    }
    lat
}

/// One open-loop client: arrivals follow the schedule (fixed interval
/// or exponential inter-arrival times), never the completions. Tickets
/// are collected and awaited only after the arrival process ends, so a
/// backed-up server keeps receiving load — the honest overload model.
fn open_loop_client(
    c: &Coalescer<ScoringSnapshot>,
    point: &SweepPoint,
    interval: Option<Duration>,
    n: NodeId,
    seed: u64,
    who: usize,
) -> Vec<u64> {
    let mean = interval.expect("open-loop arrivals need an offered rate");
    let mut rng = StdRng::seed_from_u64(seed ^ (0x09e4_u64 + who as u64));
    let mut pending: Vec<(Instant, ssf_repro::Ticket)> = Vec::new();
    let start = Instant::now();
    let mut next = start;
    while start.elapsed() < point.duration {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += match point.arrivals {
            Arrivals::OpenPoisson => {
                // Inverse-CDF exponential draw; clamp away from 0 so
                // the schedule always moves forward.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                Duration::from_secs_f64(
                    (-u.ln() * mean.as_secs_f64()).max(1e-9),
                )
            }
            _ => mean,
        };
        let (u, v) = pair_for(&mut rng, n);
        let issued = Instant::now();
        match c.submit(u, v) {
            Ok(ticket) => pending.push((issued, ticket)),
            Err(Rejection::Overloaded { .. }) => {
                // Shed at admission: counted by the coalescer stats.
            }
            Err(_) => {}
        }
    }
    // Drain after the arrival process ends; only completions count
    // toward the latency distribution (sheds and expiries do not).
    let mut lat: Vec<u64> = Vec::new();
    for (issued, ticket) in pending {
        if ticket.wait().is_ok() {
            let ns =
                u64::try_from(issued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            lat.push(ns);
        }
    }
    lat
}

fn run_point(
    snapshot: &ScoringSnapshot,
    point: &SweepPoint,
    threads: usize,
    seed: u64,
) -> SweepResult {
    let c = Coalescer::new(snapshot.clone(), coalesce_config(threads));
    let worker = {
        let c = c.clone();
        std::thread::spawn(move || c.run_worker())
    };
    let n = snapshot.graph().node_count() as NodeId;
    let interval = point
        .offered_qps
        .map(|qps| Duration::from_secs_f64(point.clients as f64 / qps));
    assert!(
        interval.is_some() || point.arrivals == Arrivals::Closed,
        "open-loop arrivals need an offered rate"
    );
    let t0 = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..point.clients)
            .map(|who| {
                let c = c.clone();
                s.spawn(move || match point.arrivals {
                    Arrivals::Closed => {
                        closed_loop_client(&c, point, interval, n, seed, who)
                    }
                    Arrivals::OpenFixed | Arrivals::OpenPoisson => {
                        open_loop_client(&c, point, interval, n, seed, who)
                    }
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client panicked"));
        }
        all
    });
    let elapsed = t0.elapsed().as_secs_f64();
    c.shutdown();
    worker.join().expect("worker panicked");
    let stats = c.stats();
    assert_eq!(
        stats.accepted + stats.rejected(),
        stats.submitted,
        "admission counters must reconcile"
    );
    assert_eq!(
        stats.completed + stats.expired,
        stats.accepted,
        "every admitted request must resolve"
    );
    let mut sorted = latencies;
    sorted.sort_unstable();
    SweepResult {
        arrivals: point.arrivals.as_str(),
        offered_qps: point.offered_qps,
        submitted: stats.submitted,
        completed: stats.completed,
        rejected_overload: stats.rejected_overload,
        deadline_misses: stats.deadline_misses(),
        achieved_qps: stats.completed as f64 / elapsed.max(1e-9),
        p50_us: quantile_us(&sorted, 0.50),
        p99_us: quantile_us(&sorted, 0.99),
        mean_batch_size: stats.mean_batch_size(),
        miss_rate: if stats.submitted == 0 {
            0.0
        } else {
            stats.deadline_misses() as f64 / stats.submitted as f64
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_serving_slo.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out requires a value").clone();
            }
            _ => {}
        }
    }

    let cores = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get);
    println!("{cores} core(s) available");
    let snapshot = fitted_snapshot(smoke, seed);
    let n_pairs_probe = if smoke { 200 } else { 600 };

    // --- Correctness first: coalesced == direct, bit for bit. ---
    let bit_identical = check_bit_identity(&snapshot, seed);
    assert!(bit_identical, "coalesced scores diverged from score_batch");
    println!("bit-identity: coalesced == score_batch on 200 pairs");

    // --- Baselines: serial per-pair and the warm-batch ceiling. ---
    let n = snapshot.graph().node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let probe: Vec<(NodeId, NodeId)> =
        (0..n_pairs_probe).map(|_| pair_for(&mut rng, n)).collect();
    let t0 = Instant::now();
    for &(u, v) in &probe {
        let _ = snapshot.score(u, v);
    }
    let per_pair_qps =
        probe.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let t0 = Instant::now();
    let _ = snapshot.score_batch(&probe);
    let warm_batch_qps =
        probe.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    println!(
        "baselines: per-pair {per_pair_qps:.0} pairs/s, \
         warm batch {warm_batch_qps:.0} pairs/s"
    );

    // --- The sweep: paced points, then an unpaced saturation point. ---
    let worker_threads = cores.clamp(1, 4);
    let clients = if smoke { 3 } else { 4 };
    let duration = if smoke {
        Duration::from_millis(200)
    } else {
        Duration::from_secs(2)
    };
    let offered: Vec<Option<f64>> = if smoke {
        vec![Some(100.0), None]
    } else {
        vec![Some(200.0), Some(1000.0), Some(5000.0), None]
    };
    let mut sweep: Vec<SweepResult> = Vec::new();
    for offered_qps in offered {
        let point = SweepPoint {
            offered_qps,
            duration,
            clients,
            arrivals: Arrivals::Closed,
        };
        let r = run_point(&snapshot, &point, worker_threads, seed);
        print_point(&r);
        sweep.push(r);
    }

    // --- Open-loop points: fixed-rate and Poisson arrivals at a
    // sustainable rate, then a deliberate overload (an offered rate far
    // above the per-pair ceiling) where sheds and deadline misses are
    // the expected, measured outcome. ---
    let sustainable = (per_pair_qps * 0.5).clamp(50.0, 2000.0);
    let overload = (per_pair_qps * 4.0).max(2000.0);
    let open_points: Vec<(Arrivals, f64)> = if smoke {
        vec![
            (Arrivals::OpenFixed, sustainable),
            (Arrivals::OpenPoisson, overload),
        ]
    } else {
        vec![
            (Arrivals::OpenFixed, sustainable),
            (Arrivals::OpenPoisson, sustainable),
            (Arrivals::OpenFixed, overload),
            (Arrivals::OpenPoisson, overload),
        ]
    };
    let mut open_sweep: Vec<SweepResult> = Vec::new();
    for (arrivals, qps) in open_points {
        let point = SweepPoint {
            offered_qps: Some(qps),
            duration,
            clients,
            arrivals,
        };
        let r = run_point(&snapshot, &point, worker_threads, seed);
        print_point(&r);
        open_sweep.push(r);
    }
    let overload_shed: u64 =
        open_sweep.iter().map(|r| r.rejected_overload).sum();
    let overload_point =
        open_sweep.last().expect("open-loop sweep is non-empty");
    println!(
        "open-loop overload ({} at {:.0} qps offered): shed {} at \
         admission, deadline miss rate {:.4}",
        overload_point.arrivals,
        overload_point.offered_qps.unwrap_or(0.0),
        overload_point.rejected_overload,
        overload_point.miss_rate,
    );

    let sustained_at = |limit_us: f64| {
        sweep
            .iter()
            .filter(|r| r.p99_us < limit_us && r.completed > 0)
            .map(|r| r.achieved_qps)
            .fold(0.0f64, f64::max)
    };
    // The headline SLO plus a relaxed companion: on a starved host the
    // p99 can sit just above 1ms at every point (scheduler jitter, not
    // scoring cost) and the 1ms figure reads 0 — the 5ms figure keeps
    // the checked-in single-core run informative.
    let sustained = sustained_at(1_000.0);
    let sustained_5ms = sustained_at(5_000.0);
    println!(
        "sustained QPS: {sustained:.0} at p99 < 1ms, \
         {sustained_5ms:.0} at p99 < 5ms"
    );
    let trivial_miss_rate = sweep.first().map_or(0.0, |r| r.miss_rate);
    let top = sweep.last().expect("sweep is non-empty");
    // Cores-conditioned batching target: the unpaced coalesced path
    // must at least match the serial per-pair path. Below 4 cores the
    // clients/worker/scorer all contend for the same core and the
    // comparison measures the scheduler, not the coalescer.
    let target_speedup_met = if cores < 4 {
        "\"unmeasurable\"".to_string()
    } else {
        (top.achieved_qps >= per_pair_qps).to_string()
    };
    let batching_gain = top.achieved_qps / per_pair_qps.max(1e-9);
    println!(
        "unpaced coalesced throughput {:.0} qps = {batching_gain:.2}x \
         the per-pair path (target met: {target_speedup_met})",
        top.achieved_qps
    );

    let sweep_json: Vec<String> = sweep.iter().map(point_json).collect();
    let open_json: Vec<String> = open_sweep.iter().map(point_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"ssf.bench.serving_slo.v2\",\n  \
         \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"available_parallelism\": {cores},\n  \
         \"worker_threads\": {worker_threads},\n  \
         \"clients\": {clients},\n  \
         \"deadline_budget_ms\": {},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"counters_reconcile\": true,\n  \
         \"per_pair_qps\": {per_pair_qps:.1},\n  \
         \"warm_batch_qps\": {warm_batch_qps:.1},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"open_loop\": [\n{}\n  ],\n  \
         \"open_loop_overload_shed\": {overload_shed},\n  \
         \"open_loop_overload_miss_rate\": {:.6},\n  \
         \"sustained_qps_p99_under_1ms\": {sustained:.1},\n  \
         \"sustained_qps_p99_under_5ms\": {sustained_5ms:.1},\n  \
         \"deadline_miss_rate_at_trivial_load\": {trivial_miss_rate:.6},\n  \
         \"batching_gain_vs_per_pair\": {batching_gain:.3},\n  \
         \"target_speedup_met\": {target_speedup_met}\n}}\n",
        DEADLINE_BUDGET.as_millis(),
        sweep_json.join(",\n"),
        open_json.join(",\n"),
        overload_point.miss_rate,
    );
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
