//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! 1. entry encoding (normalized influence vs reciprocal distance vs link
//!    count vs binary) for SSFNM;
//! 2. decay factor θ sweep (default encoding);
//! 3. structure-node merging on/off (SSFNM-W vs WLNM shares everything but
//!    the merging — reported side by side).
//!
//! Run: `cargo run -p ssf-bench --release --bin ablation [--fast]
//!       [--datasets coauthor,digg]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ssf_bench::{prepare, HarnessOptions};
use ssf_core::EntryEncoding;
use ssf_repro::methods::{Method, MethodOptions};

fn main() {
    let mut opts = HarnessOptions::parse(std::env::args().skip(1));
    if opts.datasets.is_empty() {
        // Two contrasting topologies by default.
        opts.datasets = vec!["coauthor".to_string(), "digg".to_string()];
    }
    let mut method_opts = MethodOptions {
        seed: opts.seed,
        ..MethodOptions::default()
    };
    if opts.fast {
        method_opts.nm_epochs = 60;
    }

    for spec in opts.selected_specs() {
        let prep = match prepare(&spec, &opts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: skipped ({e})", spec.name);
                continue;
            }
        };
        println!("=== {} (window {} ticks)", spec.name, prep.window);

        println!("-- entry encoding (SSFNM):");
        for (label, enc) in [
            ("influence", EntryEncoding::NormalizedInfluence),
            ("recip-dist", EntryEncoding::ReciprocalDistance),
            ("link-count", EntryEncoding::LinkCount),
            ("binary", EntryEncoding::Binary),
        ] {
            let r = Method::Ssfnm.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &MethodOptions {
                    ssf_encoding: enc,
                    ..method_opts
                },
            );
            println!("   {label:<10} auc={:.3} f1={:.3}", r.auc, r.f1);
        }

        println!("-- decay factor θ (SSFNM, default encoding):");
        for theta in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let r = Method::Ssfnm.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &MethodOptions {
                    theta,
                    ..method_opts
                },
            );
            println!("   θ={theta:<4} auc={:.3} f1={:.3}", r.auc, r.f1);
        }

        println!("-- structure-node merging (same K, same model):");
        for m in [Method::Wlnm, Method::SsfnmW] {
            let r = m.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &method_opts,
            );
            println!(
                "   {:<8} auc={:.3} f1={:.3}   ({})",
                r.name,
                r.auc,
                r.f1,
                if m == Method::Wlnm {
                    "plain nodes"
                } else {
                    "structure nodes"
                }
            );
        }
        println!();
    }
}
