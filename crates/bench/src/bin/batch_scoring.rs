//! Batch-scoring throughput benchmark: amortized `score_batch` vs the
//! per-pair `score` path, on a ~1k-node generated HubDominated network.
//!
//! The workload is the recommendation shape from the paper's
//! introduction: a set of focal users each scored against many
//! candidates, so batches share endpoints and repeat pairs — exactly
//! what the graph-versioned extraction cache amortizes.
//!
//! Emits machine-readable `BENCH_batch_scoring.json` (pairs/sec for
//! each path, cache hit rate, p50/p99 per-pair latency, and the
//! snapshot-parallel speedup with an honest `"unmeasurable"` verdict
//! when the host has fewer than 4 cores) and asserts that cached and
//! uncached scores are bit-identical.
//!
//! Run: `cargo run -p ssf-bench --release --bin batch_scoring
//!       [--smoke] [--seed <n>] [--out <path>]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fs;
use std::sync::Arc;
use std::time::Instant;

use datasets::DatasetSpec;
use dyngraph::NodeId;
use obs::{ObsHandle, Registry, Snapshot};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssf_repro::methods::MethodOptions;
use ssf_repro::{OnlineLinkPredictor, OnlinePredictorConfig};

/// Per-path timing summary. Latencies are per pair, in microseconds;
/// for the batch paths they are measured over chunks of
/// [`CHUNK`] pairs and divided down.
struct PathTiming {
    pairs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

const CHUNK: usize = 64;

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn summarize(per_pair_us: &mut [f64], total_secs: f64, n: usize) -> PathTiming {
    per_pair_us.sort_by(f64::total_cmp);
    PathTiming {
        pairs_per_sec: n as f64 / total_secs,
        p50_us: percentile(per_pair_us, 0.50),
        p99_us: percentile(per_pair_us, 0.99),
    }
}

/// Times the per-pair `score` path, one call per pair.
fn run_per_pair(
    p: &OnlineLinkPredictor,
    pairs: &[(NodeId, NodeId)],
) -> (Vec<Option<f64>>, PathTiming) {
    let mut lat = Vec::with_capacity(pairs.len());
    let mut out = Vec::with_capacity(pairs.len());
    let start = Instant::now();
    for &(u, v) in pairs {
        let t0 = Instant::now();
        out.push(p.score(u, v));
        lat.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let total = start.elapsed().as_secs_f64();
    (out, summarize(&mut lat, total, pairs.len()))
}

/// Times `score_batch` in chunks of [`CHUNK`] pairs.
fn run_batch(
    p: &mut OnlineLinkPredictor,
    pairs: &[(NodeId, NodeId)],
) -> (Vec<Option<f64>>, PathTiming) {
    let mut lat = Vec::new();
    let mut out = Vec::with_capacity(pairs.len());
    let start = Instant::now();
    for chunk in pairs.chunks(CHUNK) {
        let t0 = Instant::now();
        out.extend(p.score_batch(chunk));
        let us = t0.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
        lat.extend(std::iter::repeat_n(us, chunk.len()));
    }
    let total = start.elapsed().as_secs_f64();
    (out, summarize(&mut lat, total, pairs.len()))
}

/// Per-stage timing breakdown from the recorder's span histograms:
/// every `ssf.*` stage with its call count, total time and latency
/// quantiles (the `obs` crate's fixed-bucket estimates).
fn stages_json(snap: &Snapshot) -> String {
    let mut out = String::from("  \"stages\": {");
    let mut first = true;
    for (name, h) in &snap.histograms {
        if !name.starts_with("ssf.") {
            continue;
        }
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!(
            "    \"{name}\": {{ \"count\": {}, \"total_ms\": {:.3}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1} }}",
            h.count(),
            h.sum() as f64 / 1e6,
            h.quantile(0.50) as f64 / 1e3,
            h.quantile(0.95) as f64 / 1e3,
            h.quantile(0.99) as f64 / 1e3,
        ));
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push('}');
    out
}

fn timing_json(name: &str, t: &PathTiming) -> String {
    format!(
        "  \"{name}\": {{\n    \"pairs_per_sec\": {:.1},\n    \
         \"p50_us\": {:.2},\n    \"p99_us\": {:.2}\n  }}",
        t.pairs_per_sec, t.p50_us, t.p99_us
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_batch_scoring.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out requires a value").clone();
            }
            _ => {}
        }
    }

    // Prosper scaled to ~1k nodes (smoke: ~250) — HubDominated topology,
    // so candidate pairs concentrate around hubs and share endpoints.
    let spec = if smoke {
        DatasetSpec::prosper().scaled(0.2)
    } else {
        DatasetSpec::prosper().scaled(0.8)
    };
    let g = spec.generate(seed);
    println!(
        "network: {} nodes, {} links ({})",
        g.node_count(),
        g.link_count(),
        spec.name
    );

    // Ingest the whole stream without intermediate refits, then fit once.
    // The recorder feeds the per-stage breakdown in the JSON output.
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    let config = OnlinePredictorConfig::builder()
        .method(MethodOptions {
            seed,
            nm_epochs: if smoke { 15 } else { 40 },
            ..MethodOptions::default()
        })
        .refit_every(u32::MAX)
        .min_positives(if smoke { 20 } else { 60 })
        .history_folds(0)
        .build()
        .expect("valid benchmark configuration");
    let mut p = OnlineLinkPredictor::with_recorder(config, obs);
    let mut links: Vec<_> = g.links().collect();
    links.sort_by_key(|l| l.t);
    for l in links {
        p.observe(l.u, l.v, l.t);
    }
    p.try_refit().expect("benchmark network must support a fit");

    // Recommendation-shaped batch: focal nodes × candidates, shuffled-ish
    // by the RNG, with every 4th pair repeating an earlier one.
    let n = p.network().node_count() as NodeId;
    let (focals, cands) = if smoke { (16, 24) } else { (48, 64) };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(focals * cands);
    for _ in 0..focals {
        let u = rng.gen_range(0..n);
        for _ in 0..cands {
            let pair = if pairs.len() % 4 == 3 && !pairs.is_empty() {
                pairs[rng.gen_range(0..pairs.len())]
            } else {
                (u, rng.gen_range(0..n))
            };
            pairs.push(pair);
        }
    }
    println!("scoring {} pairs", pairs.len());

    // One shared vCPU makes single measurements noisy (±2x observed),
    // so each path is measured three times and the run with the median
    // `pairs_per_sec` is reported. The cold path clears the extraction
    // cache before every repetition so each run really starts cold;
    // every repetition must produce identical scores.
    const REPS: usize = 3;
    let median = |mut runs: Vec<(Vec<Option<f64>>, PathTiming)>| {
        runs.sort_by(|a, b| a.1.pairs_per_sec.total_cmp(&b.1.pairs_per_sec));
        for w in runs.windows(2) {
            assert_eq!(w[0].0, w[1].0, "repeated runs changed scores");
        }
        runs.swap_remove(REPS / 2)
    };
    let (base, per_pair) =
        median((0..REPS).map(|_| run_per_pair(&p, &pairs)).collect());
    let (cold_scores, cold) = median(
        (0..REPS)
            .map(|_| {
                p.clear_cache();
                run_batch(&mut p, &pairs)
            })
            .collect(),
    );
    let (warm_scores, warm) =
        median((0..REPS).map(|_| run_batch(&mut p, &pairs)).collect());
    let stats = p.cache_stats();

    // Parallel read path on a published snapshot: serial `score_batch`
    // baseline vs `score_batch_parallel` at 4 workers.
    let cores = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get);
    let snapshot = p.snapshot();
    let t0 = Instant::now();
    let snap_serial = snapshot.score_batch(&pairs);
    let snap_serial_pps =
        pairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let t0 = Instant::now();
    let snap_parallel = snapshot.score_batch_parallel(&pairs, 4);
    let snap_parallel_pps =
        pairs.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(snap_serial, snap_parallel, "parallel read path diverged");
    let speedup_parallel = snap_parallel_pps / snap_serial_pps;
    // A 4-thread speedup target is meaningless on a host without 4
    // cores: report "unmeasurable" instead of a misleading `false` so
    // dashboards distinguish "too slow" from "could not be measured".
    let target_speedup_met = if cores < 4 {
        "\"unmeasurable\"".to_string()
    } else {
        (speedup_parallel >= 3.0).to_string()
    };

    // Bit-identity: every batch slot must equal the per-pair path.
    for (i, (b, s)) in cold_scores.iter().zip(&base).enumerate() {
        let same = match (b, s) {
            (Some(b), Some(s)) => b.to_bits() == s.to_bits(),
            (None, None) => true,
            _ => false,
        };
        assert!(same, "pair {:?} diverged: {b:?} vs {s:?}", pairs[i]);
    }
    assert_eq!(cold_scores, warm_scores, "warm batch changed scores");

    let speedup_warm = warm.pairs_per_sec / per_pair.pairs_per_sec;
    let speedup_cold = cold.pairs_per_sec / per_pair.pairs_per_sec;
    println!(
        "per-pair: {:>9.1} pairs/s   (p50 {:.1}us, p99 {:.1}us)",
        per_pair.pairs_per_sec, per_pair.p50_us, per_pair.p99_us
    );
    println!(
        "batch cold: {:>7.1} pairs/s   ({speedup_cold:.2}x)",
        cold.pairs_per_sec
    );
    println!(
        "batch warm: {:>7.1} pairs/s   ({speedup_warm:.2}x)",
        warm.pairs_per_sec
    );
    println!(
        "snapshot parallel x4: {snap_parallel_pps:>7.1} pairs/s \
         ({speedup_parallel:.2}x vs serial snapshot, {cores} core(s), \
         target met: {target_speedup_met})"
    );
    println!(
        "cache: {} ball hits / {} misses, {} pair hits / {} misses \
         (hit rate {:.3})",
        stats.ball_hits,
        stats.ball_misses,
        stats.pair_hits,
        stats.pair_misses,
        stats.hit_rate()
    );

    let snap = registry.snapshot();
    for (name, h) in &snap.histograms {
        if name.starts_with("ssf.") {
            println!(
                "stage {name}: {} calls, {:.1}ms total, p50 {:.1}us",
                h.count(),
                h.sum() as f64 / 1e6,
                h.quantile(0.50) as f64 / 1e3,
            );
        }
    }

    let json = format!(
        "{{\n  \"spec\": \"{}\",\n  \"smoke\": {smoke},\n  \
         \"seed\": {seed},\n  \"nodes\": {},\n  \"links\": {},\n  \
         \"pairs\": {},\n{},\n{},\n{},\n  \
         \"speedup_batch_cold\": {speedup_cold:.3},\n  \
         \"speedup_batch_warm\": {speedup_warm:.3},\n  \
         \"available_parallelism\": {cores},\n  \
         \"snapshot_parallel\": {{\n    \"threads\": 4,\n    \
         \"serial_pairs_per_sec\": {snap_serial_pps:.1},\n    \
         \"parallel_pairs_per_sec\": {snap_parallel_pps:.1},\n    \
         \"speedup\": {speedup_parallel:.3},\n    \
         \"target_speedup_met\": {target_speedup_met}\n  }},\n  \
         \"cache\": {{\n    \
         \"ball_hits\": {},\n    \"ball_misses\": {},\n    \
         \"pair_hits\": {},\n    \"pair_misses\": {},\n    \
         \"invalidations\": {},\n    \"hit_rate\": {:.4}\n  }},\n{},\n  \
         \"bit_identical\": true\n}}\n",
        spec.name,
        g.node_count(),
        g.link_count(),
        pairs.len(),
        timing_json("per_pair", &per_pair),
        timing_json("batch_cold", &cold),
        timing_json("batch_warm", &warm),
        stats.ball_hits,
        stats.ball_misses,
        stats.pair_hits,
        stats.pair_misses,
        stats.invalidations,
        stats.hit_rate(),
        stages_json(&snap),
    );
    fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
