//! Window-dynamics benchmark: the cost and correctness of sliding-
//! window expiry across the whole stack.
//!
//! Three experiments, one binary (the unified experiment-interface
//! idiom):
//!
//! 1. **Bit-identity** — a [`WindowedView`] maintained incrementally
//!    through interleaved inserts and advances must equal a from-
//!    scratch [`DynamicNetwork`] rebuilt out of only the in-window
//!    links, and a fitted model must score both graphs bit-identically
//!    — across Wide and Compact frozen layouts, the cached and uncached
//!    extraction paths, and a kill-and-replay WAL recovery of a durable
//!    windowed predictor. CI gates on the emitted `bit_identical` flag.
//! 2. **Expiry cost vs. window width** — the same stream ingested at a
//!    sweep of widths, reporting how many links aged out and the
//!    amortized cost per expired link (narrow windows expire almost
//!    everything; the unbounded width expires nothing).
//! 3. **Cache hit-rate across advances** — an [`ExtractionCache`] kept
//!    in sync through a run of horizon advances must invalidate
//!    selectively (never a blanket flush) and keep serving hits for the
//!    balls that did not lose a link.
//!
//! Emits machine-readable `BENCH_window.json`.
//!
//! Run: `cargo run -p ssf-bench --release --bin window_dynamics
//!       [--smoke] [--seed <n>] [--out <path>]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fs;
use std::time::Instant;

use datasets::DatasetSpec;
use dyngraph::{
    DynamicNetwork, FrozenGraph, GraphView, NodeId, StorageMode, Timestamp,
    Window, WindowedView,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssf_core::ExtractionCache;
use ssf_eval::{Split, SplitConfig};
use ssf_repro::methods::MethodOptions;
use ssf_repro::model::SsfnmModel;
use ssf_repro::{
    DurabilityPolicy, FsyncPolicy, OnlineLinkPredictor, OnlinePredictorConfig,
};

/// Sorted `(u, v, t)` event stream plus the timeline it spans.
struct Stream {
    events: Vec<(NodeId, NodeId, Timestamp)>,
    nodes: usize,
    max_t: Timestamp,
}

fn stream(smoke: bool, seed: u64) -> Stream {
    let spec = if smoke {
        DatasetSpec::coauthor().scaled(0.15)
    } else {
        DatasetSpec::coauthor().scaled(0.6)
    };
    let g = spec.generate(seed);
    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);
    println!(
        "network: {} nodes, {} links, timestamps 0..={} ({})",
        g.node_count(),
        events.len(),
        g.max_timestamp().unwrap_or(0),
        spec.name
    );
    Stream {
        nodes: g.node_count(),
        max_t: g.max_timestamp().unwrap_or(0),
        events,
    }
}

/// Oracle: a fresh network holding only the in-window links, inserted
/// in stable time order over the preserved node set — the canonical
/// layout a `WindowedView` must converge to after any advance history.
fn rebuild_in_window(s: &Stream, window: Window) -> DynamicNetwork {
    let mut survivors: Vec<_> = s
        .events
        .iter()
        .copied()
        .filter(|&(_, _, t)| window.contains(t))
        .collect();
    survivors.sort_by_key(|&(_, _, t)| t);
    let mut net = DynamicNetwork::new();
    if s.nodes > 0 {
        net.ensure_node(s.nodes as NodeId - 1);
    }
    for (u, v, t) in survivors {
        net.try_add_link(u, v, t).expect("stream events are clean");
    }
    net
}

/// Deterministic candidate pairs over the node space.
fn candidate_pairs(
    rng: &mut StdRng,
    n: usize,
    count: usize,
) -> Vec<(u32, u32)> {
    let n = n as u32;
    (0..count)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let mut v = rng.gen_range(0..n);
            if u == v {
                v = (v + 1) % n;
            }
            (u, v)
        })
        .collect()
}

/// Scores `pairs` against `g` with `model`, skipping degenerate pairs.
fn score_all<G: GraphView + ?Sized>(
    model: &SsfnmModel,
    g: &G,
    pairs: &[(u32, u32)],
    present: Timestamp,
) -> Vec<Option<u64>> {
    pairs
        .iter()
        .map(|&(u, v)| model.try_score(g, u, v, present).ok().map(f64::to_bits))
        .collect()
}

/// Experiment 1: incremental windowed maintenance vs. from-scratch
/// rebuild — graph equality and score bit-identity across layouts and
/// extraction paths. Returns `true` only if every comparison held.
fn check_bit_identity(s: &Stream, model: &SsfnmModel, seed: u64) -> bool {
    let width = (s.max_t / 2).max(1);
    let mut wv = WindowedView::with_width(width);
    let mut cache = ExtractionCache::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51de_caff);
    let pairs = candidate_pairs(&mut rng, s.nodes, 64);
    let mut ok = true;
    // Interleave the stream with explicit advances at one-third and
    // two-thirds of the timeline, checking at each advance and at the
    // end — the horizon both jumps (implicit advances on insert) and
    // slides (explicit advances with no insert).
    let checkpoints = [s.max_t / 3, 2 * s.max_t / 3, s.max_t + width];
    let mut fed = 0usize;
    for &to in &checkpoints {
        while fed < s.events.len() && s.events[fed].2 <= to {
            let (u, v, t) = s.events[fed];
            if let Ok(report) = wv.try_add_link(u, v, t) {
                let footprint = report.as_ref().map(|r| r.affected.clone());
                cache.sync_affected(
                    wv.network(),
                    wv.window().map(|w| (w.width, w.horizon)),
                    footprint.as_deref().unwrap_or(&[u, v]),
                );
            }
            fed += 1;
        }
        if let Ok(Some(report)) = wv.advance(to) {
            cache.sync_affected(
                wv.network(),
                wv.window().map(|w| (w.width, w.horizon)),
                &report.affected,
            );
        }
        let window = wv.window().expect("view is windowed");
        let fresh = rebuild_in_window(s, window);
        if wv.network() != &fresh {
            println!("FAIL: graph diverged from rebuild at horizon {to}");
            ok = false;
            continue;
        }
        let present = window.horizon.saturating_add(1);
        let incremental = score_all(model, &wv, &pairs, present);
        let scratch = score_all(model, &fresh, &pairs, present);
        let wide = FrozenGraph::from_view_with(&wv, StorageMode::Wide)
            .expect("wide freeze never fails");
        let compact = FrozenGraph::from_view_with(&wv, StorageMode::Compact)
            .expect("benchmark graphs fit the compact limits");
        let frozen_wide = score_all(model, &wide, &pairs, present);
        let frozen_compact = score_all(model, &compact, &pairs, present);
        let cached: Vec<Option<u64>> = pairs
            .iter()
            .map(|&(u, v)| {
                model
                    .try_score_cached(&wv, u, v, present, &mut cache)
                    .ok()
                    .map(f64::to_bits)
            })
            .collect();
        for (name, got) in [
            ("from-scratch", &scratch),
            ("frozen-wide", &frozen_wide),
            ("frozen-compact", &frozen_compact),
            ("cached", &cached),
        ] {
            if got != &incremental {
                println!("FAIL: {name} scores diverged at horizon {to}");
                ok = false;
            }
        }
    }
    ok
}

/// Experiment 1b: a durable windowed predictor killed after interleaved
/// observes/advances must reopen to bit-identical scores against an
/// in-memory twin fed the same sequence.
fn check_recovery_bit_identity(s: &Stream, seed: u64) -> bool {
    let dir = std::env::temp_dir()
        .join(format!("ssf-window-dynamics-{seed}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let width = (s.max_t / 2).max(1);
    let config = OnlinePredictorConfig::builder()
        .method(MethodOptions {
            seed,
            nm_epochs: 15,
            ..MethodOptions::default()
        })
        .refit_every(64)
        .min_positives(10)
        .history_folds(0)
        .window(Some(width))
        .build()
        .expect("valid benchmark configuration");
    let policy = DurabilityPolicy {
        fsync: FsyncPolicy::Never,
        ..DurabilityPolicy::default()
    };
    let mut p =
        OnlineLinkPredictor::with_durability(config.clone(), &dir, policy)
            .expect("fresh durable predictor");
    let mut twin = OnlineLinkPredictor::new(config.clone());
    let mid = s.events.len() / 2;
    for &(u, v, t) in &s.events[..mid] {
        p.observe(u, v, t);
        twin.observe(u, v, t);
    }
    let to = p.horizon().saturating_add(1);
    assert_eq!(
        p.advance(to).expect("monotone"),
        twin.advance(to).expect("monotone")
    );
    p.checkpoint().expect("checkpoint");
    for &(u, v, t) in &s.events[mid..] {
        p.observe(u, v, t);
        twin.observe(u, v, t);
    }
    let to = p.horizon().saturating_add(width / 2 + 1);
    assert_eq!(
        p.advance(to).expect("monotone"),
        twin.advance(to).expect("monotone")
    );
    drop(p); // kill: recovery must replay the WAL tail past the snapshot
    let (r, report) = OnlineLinkPredictor::open(config, &dir)
        .expect("recovery of a windowed predictor");
    let mut ok = !report.is_lossy();
    ok &= r.window() == twin.window();
    ok &= r.network().revision() == twin.network().revision();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_10cc);
    let pairs = candidate_pairs(&mut rng, s.nodes, 64);
    for &(u, v) in &pairs {
        if r.score(u, v).map(f64::to_bits) != twin.score(u, v).map(f64::to_bits)
        {
            println!("FAIL: recovered score diverged on ({u}, {v})");
            ok = false;
        }
    }
    let _ = fs::remove_dir_all(&dir);
    ok
}

struct WidthCost {
    width: Timestamp,
    ingested: usize,
    expired: usize,
    advances: usize,
    advance_ns: u128,
    surviving: usize,
}

/// Experiment 2: ingest the stream at each width, then slide the
/// horizon off the end one width at a time until the window empties.
fn expiry_cost(s: &Stream, widths: &[Timestamp]) -> Vec<WidthCost> {
    widths
        .iter()
        .map(|&width| {
            let mut wv = WindowedView::with_width(width);
            let mut expired = 0usize;
            let mut advances = 0usize;
            let mut advance_ns = 0u128;
            let mut ingested = 0usize;
            for &(u, v, t) in &s.events {
                let t0 = Instant::now();
                match wv.try_add_link(u, v, t) {
                    Ok(report) => {
                        advance_ns += t0.elapsed().as_nanos();
                        ingested += 1;
                        if let Some(r) = report {
                            advances += 1;
                            expired += r.expired_links;
                        }
                    }
                    Err(_) => advance_ns += t0.elapsed().as_nanos(),
                }
            }
            // Slide the window off the end of the timeline.
            let step = width.saturating_add(1).max(1);
            while wv.link_count() > 0 {
                let to = wv.horizon().saturating_add(step);
                let t0 = Instant::now();
                let report = wv.advance(to).expect("monotone");
                advance_ns += t0.elapsed().as_nanos();
                let Some(r) = report else { break };
                advances += 1;
                expired += r.expired_links;
                if to == u32::MAX {
                    break;
                }
            }
            WidthCost {
                width,
                ingested,
                expired,
                advances,
                advance_ns,
                surviving: wv.link_count(),
            }
        })
        .collect()
}

struct AdvancePoint {
    horizon: Timestamp,
    expired: usize,
    entries_invalidated: u64,
    hit_rate: f64,
}

/// Experiment 3: hit-rate across a run of advances. The cache is warmed
/// on the full window, then the horizon slides one tick at a time; each
/// advance invalidates selectively and the next batch re-probes.
fn cache_across_advances(
    s: &Stream,
    model: &SsfnmModel,
    seed: u64,
    ticks: usize,
) -> (Vec<AdvancePoint>, bool) {
    let width = s.max_t; // everything in-window at ingest end
    let mut wv = WindowedView::with_width(width);
    let mut cache = ExtractionCache::new();
    for &(u, v, t) in &s.events {
        wv.try_add_link(u, v, t).expect("stream events are clean");
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcac4_e000);
    let pairs = candidate_pairs(&mut rng, s.nodes, 128);
    let probe = |wv: &WindowedView, cache: &mut ExtractionCache| {
        let present = wv.horizon().saturating_add(1);
        for &(u, v) in &pairs {
            let _ = model.try_score_cached(wv, u, v, present, cache);
        }
    };
    cache.sync_affected(
        wv.network(),
        wv.window().map(|w| (w.width, w.horizon)),
        &[],
    );
    probe(&wv, &mut cache);
    probe(&wv, &mut cache); // warm: second pass all hits
    let mut points = Vec::new();
    let mut no_blanket_flush = true;
    for _ in 0..ticks {
        let to = wv.horizon().saturating_add(1);
        let Ok(Some(report)) = wv.advance(to) else {
            break;
        };
        let before = cache.stats();
        cache.sync_affected(
            wv.network(),
            wv.window().map(|w| (w.width, w.horizon)),
            &report.affected,
        );
        probe(&wv, &mut cache);
        let after = cache.stats();
        no_blanket_flush &= after.invalidations == before.invalidations;
        let lookups =
            (after.total_lookups() - before.total_lookups()).max(1) as f64;
        let hits = (after.ball_hits + after.pair_hits)
            - (before.ball_hits + before.pair_hits);
        points.push(AdvancePoint {
            horizon: to,
            expired: report.expired_links,
            entries_invalidated: after.entries_invalidated
                - before.entries_invalidated,
            hit_rate: hits as f64 / lookups,
        });
    }
    (points, no_blanket_flush)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_window.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out requires a value").clone();
            }
            _ => {}
        }
    }

    let s = stream(smoke, seed);

    // One model fitted on the full history scores every graph variant:
    // bit-identity is a property of the extraction pipeline, not of any
    // particular set of weights.
    let full = rebuild_in_window(
        &s,
        Window {
            width: u32::MAX,
            horizon: s.max_t,
        },
    );
    let split = Split::with_min_positives(
        &full,
        &SplitConfig {
            seed,
            max_positives: Some(300),
            ..SplitConfig::default()
        },
        10,
    )
    .expect("benchmark network must split");
    let opts = MethodOptions {
        seed,
        nm_epochs: if smoke { 15 } else { 40 },
        ..MethodOptions::default()
    };
    let model = SsfnmModel::try_fit(&split, &[], &opts).expect("benchmark fit");

    // --- Correctness first: the bit-identity gate. ---
    let maintained = check_bit_identity(&s, &model, seed);
    println!(
        "bit-identity (incremental vs rebuild, wide/compact, \
         cached/uncached): {maintained}"
    );
    let recovered = check_recovery_bit_identity(&s, seed);
    println!("bit-identity (kill-and-replay recovery): {recovered}");
    let bit_identical = maintained && recovered;

    // --- Expiry cost vs. window width. ---
    let span = s.max_t.max(1);
    let widths: Vec<Timestamp> = if smoke {
        vec![0, span / 4, span, u32::MAX]
    } else {
        vec![0, 1, span / 8, span / 4, span / 2, span, u32::MAX]
    };
    let costs = expiry_cost(&s, &widths);
    for c in &costs {
        let per_expired = c.advance_ns as f64 / c.expired.max(1) as f64;
        println!(
            "width {:>10}: ingested {} expired {} over {} advances, \
             {:.0} ns/expired link, {} surviving",
            c.width,
            c.ingested,
            c.expired,
            c.advances,
            per_expired,
            c.surviving
        );
    }

    // --- Cache hit-rate across advances. ---
    let ticks = if smoke { 3 } else { 8 };
    let (points, no_blanket_flush) =
        cache_across_advances(&s, &model, seed, ticks);
    for p in &points {
        println!(
            "advance to {:>3}: expired {:>4} links, invalidated {:>4} \
             cache entries, next-batch hit rate {:.3}",
            p.horizon, p.expired, p.entries_invalidated, p.hit_rate
        );
    }
    let mean_hit_rate = if points.is_empty() {
        0.0
    } else {
        points.iter().map(|p| p.hit_rate).sum::<f64>() / points.len() as f64
    };
    println!(
        "cache across {} advances: mean hit rate {mean_hit_rate:.3}, \
         selective only: {no_blanket_flush}",
        points.len()
    );

    let widths_json: Vec<String> = costs
        .iter()
        .map(|c| {
            format!(
                "    {{ \"width\": {}, \"ingested\": {}, \
                 \"expired_links\": {}, \"advances\": {}, \
                 \"advance_ns_total\": {}, \"ns_per_expired\": {:.1}, \
                 \"surviving_links\": {} }}",
                c.width,
                c.ingested,
                c.expired,
                c.advances,
                c.advance_ns,
                c.advance_ns as f64 / c.expired.max(1) as f64,
                c.surviving
            )
        })
        .collect();
    let advances_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"horizon\": {}, \"expired_links\": {}, \
                 \"entries_invalidated\": {}, \"hit_rate\": {:.6} }}",
                p.horizon, p.expired, p.entries_invalidated, p.hit_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"ssf.bench.window_dynamics.v1\",\n  \
         \"smoke\": {smoke},\n  \"seed\": {seed},\n  \
         \"nodes\": {},\n  \"links\": {},\n  \"max_timestamp\": {},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"expiry_cost_by_width\": [\n{}\n  ],\n  \
         \"cache_across_advances\": [\n{}\n  ],\n  \
         \"mean_hit_rate_across_advances\": {mean_hit_rate:.6},\n  \
         \"selective_invalidation_only\": {no_blanket_flush}\n}}\n",
        s.nodes,
        s.events.len(),
        s.max_t,
        widths_json.join(",\n"),
        advances_json.join(",\n"),
    );
    fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
    assert!(bit_identical, "bit-identity gate failed");
}
