//! Top-N recommendation view of the methods — the application framing of
//! the paper's introduction ("personalized recommendation in social or
//! e-commerce networks").
//!
//! Instead of the balanced-classification AUC/F1 of Table III, this bin
//! scores every test candidate, ranks them, and reports precision@10 /
//! precision@50 / average precision per method and dataset.
//!
//! Run: `cargo run -p ssf-bench --release --bin topn [--fast] [--datasets …]
//!       [--methods cn,ssflr,…]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ssf_bench::{prepare, HarnessOptions};
use ssf_eval::metrics::{average_precision, precision_at_k};
use ssf_repro::methods::{Method, MethodOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::parse(args.clone());
    let mut method_opts = MethodOptions {
        seed: opts.seed,
        ..MethodOptions::default()
    };
    if opts.fast {
        method_opts.nm_epochs = 60;
    }
    let mut methods = vec![
        Method::Cn,
        Method::Katz,
        Method::Wllr,
        Method::Ssflr,
        Method::Ssfnm,
    ];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--methods" {
            let v = it.next().expect("--methods requires a value");
            methods = v
                .split(',')
                .map(|name| {
                    Method::parse(name.trim())
                        .unwrap_or_else(|| panic!("unknown method {name:?}"))
                })
                .collect();
        }
    }

    println!("Top-N recommendation metrics (ranked test candidates)");
    for spec in opts.selected_specs() {
        let prep = match prepare(&spec, &opts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: skipped ({e})", spec.name);
                continue;
            }
        };
        println!(
            "\n=== {} ({} test candidates, {} relevant)",
            spec.name,
            prep.split.test.len(),
            prep.split.test.iter().filter(|s| s.label).count()
        );
        println!(
            "{:<8} {:>6} {:>6} {:>8}",
            "method", "P@10", "P@50", "avg.prec"
        );
        for m in &methods {
            let r = m.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &method_opts,
            );
            let scored: Vec<(f64, bool)> = r
                .test_scores
                .iter()
                .zip(&prep.split.test)
                .map(|(&score, sample)| (score, sample.label))
                .collect();
            println!(
                "{:<8} {:>6.3} {:>6.3} {:>8.3}   (auc {:.3})",
                r.name,
                precision_at_k(&scored, 10),
                precision_at_k(&scored, 50),
                average_precision(&scored),
                r.auc
            );
        }
    }
}
