//! Concurrent-serving benchmark: the immutable-snapshot read path vs
//! the serial batch path, plus sharded ingest scaling.
//!
//! Three measurements on a generated HubDominated network:
//!
//! 1. `score_batch_parallel` throughput at 1/2/4/8 reader threads
//!    against the serial `score_batch` baseline on one published
//!    [`ScoringSnapshot`], with bit-identity asserted at every thread
//!    count (the contract, not a tolerance).
//! 2. Snapshot-publish latency (p50/p95 from the
//!    `ssf.serve.snapshot_publish` span histogram) and the epoch-lag
//!    gauge after writes land behind a published model.
//! 3. Delta proportionality: publish latency sampled as the copy-on-write
//!    overlay grows (1/16/64 extra observes), demonstrating the O(delta)
//!    publish contract — latency tracks the overlay, not the graph.
//! 4. Ingest throughput of [`ShardedPredictor::observe_batch_parallel`]
//!    at 1/2/4 shards over the same event stream.
//!
//! Emits machine-readable `BENCH_concurrent_serving.json`. The ≥3×
//! speedup target at 4 threads is *recorded*, not asserted: on a
//! single-core host (`available_parallelism` is in the JSON) parallel
//! throughput is honestly reported below 1×.
//!
//! Run: `cargo run -p ssf-bench --release --bin concurrent_serving
//!       [--smoke] [--seed <n>] [--out <path>]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::fs;
use std::sync::Arc;
use std::time::Instant;

use datasets::DatasetSpec;
use dyngraph::NodeId;
use obs::{ObsHandle, Registry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssf_repro::methods::MethodOptions;
use ssf_repro::{
    OnlineLinkPredictor, OnlinePredictorConfig, ScoringSnapshot,
    ShardedPredictor,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Snapshot publishes measured for the latency histogram.
const PUBLISHES: usize = 24;
/// Hard floor on multi-shard ingest throughput relative to one shard.
/// Sharding may not *help* on a starved host (no spare cores), but it
/// must never cost real throughput: an earlier revision spawned one
/// thread per shard unconditionally and dropped 1→4-shard ingest by
/// ~20% on a single-core host. The floor leaves headroom for timer
/// noise, not for regressions of that size.
const INGEST_REGRESSION_FLOOR: f64 = 0.5;

fn config(smoke: bool, seed: u64) -> OnlinePredictorConfig {
    OnlinePredictorConfig::builder()
        .method(MethodOptions {
            seed,
            nm_epochs: if smoke { 15 } else { 40 },
            ..MethodOptions::default()
        })
        .refit_every(u32::MAX) // refits are explicit in this benchmark
        .min_positives(if smoke { 20 } else { 60 })
        .history_folds(0)
        .build()
        .expect("valid benchmark configuration")
}

/// Recommendation-shaped candidate batch: focal nodes × candidates with
/// every 4th pair repeating an earlier one (shared endpoints amortize).
fn candidate_pairs(n: NodeId, smoke: bool, seed: u64) -> Vec<(NodeId, NodeId)> {
    let (focals, cands) = if smoke { (12, 20) } else { (32, 48) };
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(focals * cands);
    for _ in 0..focals {
        let u = rng.gen_range(0..n);
        for _ in 0..cands {
            let pair = if pairs.len() % 4 == 3 && !pairs.is_empty() {
                pairs[rng.gen_range(0..pairs.len())]
            } else {
                (u, rng.gen_range(0..n))
            };
            pairs.push(pair);
        }
    }
    pairs
}

fn assert_bit_identical(
    base: &[Option<f64>],
    other: &[Option<f64>],
    what: &str,
) {
    assert_eq!(base.len(), other.len(), "{what}: length diverged");
    for (i, (a, b)) in base.iter().zip(other).enumerate() {
        let same = match (a, b) {
            (Some(a), Some(b)) => a.to_bits() == b.to_bits(),
            (None, None) => true,
            _ => false,
        };
        assert!(same, "{what}: slot {i} diverged: {a:?} vs {b:?}");
    }
}

/// Times one scoring pass; returns (scores, pairs/sec).
fn timed<F: FnOnce() -> Vec<Option<f64>>>(
    pairs: usize,
    f: F,
) -> (Vec<Option<f64>>, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, pairs as f64 / t0.elapsed().as_secs_f64().max(1e-9))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out_path = String::from("BENCH_concurrent_serving.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a value");
                seed = v.parse().expect("--seed must be an integer");
            }
            "--out" => {
                out_path = it.next().expect("--out requires a value").clone();
            }
            _ => {}
        }
    }

    let cores = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get);
    let spec = if smoke {
        DatasetSpec::prosper().scaled(0.2)
    } else {
        DatasetSpec::prosper().scaled(0.8)
    };
    let g = spec.generate(seed);
    println!(
        "network: {} nodes, {} links ({}), {cores} core(s)",
        g.node_count(),
        g.link_count(),
        spec.name
    );

    let mut events: Vec<_> = g.links().map(|l| (l.u, l.v, l.t)).collect();
    events.sort_by_key(|&(_, _, t)| t);

    // --- Writer: single-core ingest, one fit, repeated publishes. ---
    let registry = Arc::new(Registry::new());
    let obs = ObsHandle::of_registry(Arc::clone(&registry));
    let mut p =
        OnlineLinkPredictor::with_recorder(config(smoke, seed), obs.clone());
    // Hold back a tail of events so publishes happen against a moving
    // graph: every post-refit observe widens the epoch lag the gauge
    // reports.
    let held_back = PUBLISHES.min(events.len() / 10);
    let (head, tail) = events.split_at(events.len() - held_back);
    for &(u, v, t) in head {
        p.observe(u, v, t);
    }
    p.try_refit().expect("benchmark network must support a fit");
    let mut snapshot: ScoringSnapshot = p.snapshot();
    // Sum of overlay delta links carried by each publish: the work a
    // publish actually pays for under the O(delta) contract.
    let mut rebase_delta_links: usize = snapshot.delta_links();
    for &(u, v, t) in tail {
        p.observe(u, v, t);
        snapshot = p.snapshot();
        rebase_delta_links += snapshot.delta_links();
    }
    println!(
        "published {} snapshots (epoch {}, model epoch {:?}, \
         {rebase_delta_links} delta links carried)",
        tail.len() + 1,
        snapshot.epoch(),
        snapshot.model_epoch()
    );

    // --- Read path: serial baseline, then the parallel ladder. ---
    let n = p.network().node_count() as NodeId;
    let pairs = candidate_pairs(n, smoke, seed);
    println!("scoring {} pairs", pairs.len());
    let (serial_scores, serial_pps) =
        timed(pairs.len(), || snapshot.score_batch(&pairs));
    println!("serial batch: {serial_pps:>9.1} pairs/s");
    let mut parallel: Vec<(usize, f64, f64)> = Vec::new();
    for &t in &THREAD_COUNTS {
        let (scores, pps) =
            timed(pairs.len(), || snapshot.score_batch_parallel(&pairs, t));
        assert_bit_identical(&serial_scores, &scores, "parallel read path");
        let speedup = pps / serial_pps;
        println!("parallel x{t}: {pps:>8.1} pairs/s ({speedup:.2}x)");
        parallel.push((t, pps, speedup));
    }
    let speedup_at_4 = parallel
        .iter()
        .find(|&&(t, _, _)| t == 4)
        .map_or(0.0, |&(_, _, s)| s);
    // A 4-thread speedup target is meaningless on a host without 4
    // cores: report "unmeasurable" instead of a misleading `false` so
    // dashboards distinguish "too slow" from "could not be measured".
    let target_speedup_met = if cores < 4 {
        "\"unmeasurable\"".to_string()
    } else {
        (speedup_at_4 >= 3.0).to_string()
    };

    // --- Publish latency + epoch lag from the recorder. ---
    let snap = registry.snapshot();
    let publish = snap
        .histogram("ssf.serve.snapshot_publish")
        .expect("publish span must be recorded");
    let (pub_p50_us, pub_p95_us) = (
        publish.quantile(0.50) as f64 / 1e3,
        publish.quantile(0.95) as f64 / 1e3,
    );
    let epoch_lag = snap.gauge("ssf.serve.epoch_lag");
    println!(
        "snapshot publish: {} publishes, p50 {pub_p50_us:.1}us, \
         p95 {pub_p95_us:.1}us; epoch lag {epoch_lag}",
        publish.count()
    );

    // --- Delta proportionality: publish latency vs overlay size. ---
    // Grow the delta in steps and time publishes at each size; under the
    // O(delta) contract latency must track the overlay, not the graph.
    let mut max_t = p.network().max_timestamp().unwrap_or(0);
    let mut drng = StdRng::seed_from_u64(seed ^ 0x51f0_aa11);
    let mut proportionality: Vec<(usize, f64)> = Vec::new();
    for &step in &[1usize, 16, 64] {
        let mut added = 0usize;
        while added < step {
            let u = drng.gen_range(0..n);
            let v = drng.gen_range(0..n);
            if u == v {
                continue;
            }
            max_t += 1;
            if p.observe(u, v, max_t).is_accepted() {
                added += 1;
            }
        }
        let delta_now = p.delta_link_count();
        const REPS: usize = 32;
        let t0 = Instant::now();
        let mut last = p.snapshot();
        for _ in 1..REPS {
            last = p.snapshot();
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / REPS as f64;
        println!(
            "publish at delta {delta_now}: {us:.1}us \
             (epoch {})",
            last.epoch()
        );
        proportionality.push((delta_now, us));
    }

    // --- Sharded ingest scaling over the same event stream. ---
    let mut ingest: Vec<(usize, f64, f64)> = Vec::new();
    for &shards in &SHARD_COUNTS {
        let mut sharded = ShardedPredictor::new(config(smoke, seed), shards)
            .expect("valid benchmark configuration");
        let t0 = Instant::now();
        let accepted = sharded.observe_batch_parallel(&events);
        let eps = accepted as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let ratio = if ingest.is_empty() {
            1.0
        } else {
            eps / ingest[0].1
        };
        println!("ingest x{shards}: {eps:>10.0} events/s ({ratio:.2}x)");
        assert!(
            ratio >= INGEST_REGRESSION_FLOOR,
            "sharded ingest regressed: {shards} shards ran at {ratio:.2}x \
             the 1-shard baseline (floor {INGEST_REGRESSION_FLOOR})"
        );
        ingest.push((shards, eps, ratio));
    }

    let parallel_json: Vec<String> = parallel
        .iter()
        .map(|(t, pps, s)| {
            format!(
                "    {{ \"threads\": {t}, \"pairs_per_sec\": {pps:.1}, \
                 \"speedup\": {s:.3} }}"
            )
        })
        .collect();
    let proportionality_json: Vec<String> = proportionality
        .iter()
        .map(|(delta, us)| {
            format!(
                "    {{ \"delta_links\": {delta}, \
                 \"publish_us\": {us:.2} }}"
            )
        })
        .collect();
    let ingest_json: Vec<String> = ingest
        .iter()
        .map(|(shards, eps, ratio)| {
            format!(
                "    {{ \"shards\": {shards}, \
                 \"events_per_sec\": {eps:.0}, \
                 \"vs_one_shard\": {ratio:.3} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"spec\": \"{}\",\n  \"smoke\": {smoke},\n  \
         \"seed\": {seed},\n  \"nodes\": {},\n  \"links\": {},\n  \
         \"pairs\": {},\n  \"available_parallelism\": {cores},\n  \
         \"serial_pairs_per_sec\": {serial_pps:.1},\n  \
         \"parallel\": [\n{}\n  ],\n  \
         \"speedup_at_4_threads\": {speedup_at_4:.3},\n  \
         \"target_speedup_met\": {target_speedup_met},\n  \
         \"snapshot_publish\": {{\n    \
         \"count\": {},\n    \"p50_us\": {pub_p50_us:.1},\n    \
         \"p95_us\": {pub_p95_us:.1},\n    \
         \"rebase_delta_links\": {rebase_delta_links}\n  }},\n  \
         \"delta_proportionality\": [\n{}\n  ],\n  \
         \"epoch_lag\": {epoch_lag},\n  \
         \"ingest_regression_floor\": {INGEST_REGRESSION_FLOOR},\n  \
         \"ingest\": [\n{}\n  ],\n  \"bit_identical\": true\n}}\n",
        spec.name,
        g.node_count(),
        g.link_count(),
        pairs.len(),
        parallel_json.join(",\n"),
        publish.count(),
        proportionality_json.join(",\n"),
        ingest_json.join(",\n"),
    );
    fs::write(&out_path, json).expect("write benchmark json");
    println!("wrote {out_path}");
}
