//! Table III reproduction: AUC and F1 of all 15 methods on the 7 datasets.
//!
//! Run: `cargo run -p ssf-bench --release --bin table3 [--fast]
//!       [--datasets digg,contact] [--methods ssfnm,cn] [--extended]
//!       [--epochs N] [--k N] [--out results/table3.csv]`
//!
//! `--extended` adds the related-work rows (LP, TMF) beyond the paper's 15.
//!
//! The shape to compare against the paper: SSFLR/SSFNM lead on most
//! datasets, the temporal variants beat their `-W` (timestamp-blind)
//! counterparts, WLF/SSF-based methods are consistent across topologies
//! while the local indices crater on the sparse hub networks.

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ssf_bench::{prepare, HarnessOptions};
use ssf_eval::ResultsTable;
use ssf_repro::methods::{Method, MethodOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::parse(args.clone());
    let mut method_opts = MethodOptions {
        seed: opts.seed,
        ..MethodOptions::default()
    };
    if opts.fast {
        method_opts.nm_epochs = 60;
        method_opts.nmf.iterations = 40;
    }
    let mut methods: Vec<Method> = if args.iter().any(|a| a == "--extended") {
        Method::extended()
    } else {
        Method::all().to_vec()
    };
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--methods" => {
                let v = it.next().expect("--methods requires a value");
                methods = v
                    .split(',')
                    .map(|name| {
                        Method::parse(name.trim()).unwrap_or_else(|| {
                            panic!("unknown method {name:?}")
                        })
                    })
                    .collect();
            }
            "--epochs" => {
                method_opts.nm_epochs = it
                    .next()
                    .expect("--epochs requires a value")
                    .parse()
                    .expect("--epochs must be an integer");
            }
            "--k" => {
                method_opts.k = it
                    .next()
                    .expect("--k requires a value")
                    .parse()
                    .expect("--k must be an integer");
            }
            "--out" => {
                out_path =
                    Some(it.next().expect("--out requires a value").clone())
            }
            _ => {}
        }
    }

    let mut table = ResultsTable::new();
    for spec in opts.selected_specs() {
        eprint!("preparing {} … ", spec.name);
        let prep = match prepare(&spec, &opts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipped ({e})");
                continue;
            }
        };
        let (pos, total) = (
            prep.split.test.iter().filter(|s| s.label).count()
                + prep.split.train.iter().filter(|s| s.label).count(),
            prep.split.test.len() + prep.split.train.len(),
        );
        eprintln!(
            "window={} ticks, {} samples ({} positives)",
            prep.window, total, pos
        );
        for m in &methods {
            let start = std::time::Instant::now();
            let r = m.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &method_opts,
            );
            eprintln!(
                "  {:<8} auc={:.3} f1={:.3}  ({:.1?})",
                r.name,
                r.auc,
                r.f1,
                start.elapsed()
            );
            table.record(spec.name, &r);
        }
    }

    println!();
    println!(
        "Table III reproduction (K={}, θ={}, NM epochs={}{})",
        method_opts.k,
        method_opts.theta,
        method_opts.nm_epochs,
        if opts.fast { ", --fast" } else { "" }
    );
    println!();
    print!("{table}");
    println!();
    for d in table.datasets().to_vec() {
        if let Some((best, auc)) = table.best_by_auc(&d) {
            println!("best on {d}: {best} (AUC {auc:.3})");
        }
    }
    if let Some(path) = out_path {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        println!("wrote {path}");
    }
}
