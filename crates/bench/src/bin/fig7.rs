//! Figure 7 reproduction: SSFNM's AUC and F1 across K ∈ {5, 10, 15, 20}.
//!
//! The paper's finding: peaks mostly fall at K ≤ 15 — larger windows add
//! noise rather than signal.
//!
//! Run: `cargo run -p ssf-bench --release --bin fig7 [--fast] [--datasets …]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use ssf_bench::{prepare, HarnessOptions};
use ssf_repro::methods::{Method, MethodOptions};

fn main() {
    let opts = HarnessOptions::parse(std::env::args().skip(1));
    let ks = [5usize, 10, 15, 20];
    let mut method_opts = MethodOptions {
        seed: opts.seed,
        ..MethodOptions::default()
    };
    if opts.fast {
        method_opts.nm_epochs = 60;
    }

    println!("Figure 7 reproduction — SSFNM across K = {ks:?}");
    println!();
    println!(
        "{:<10} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6} | {:>6} {:>6}",
        "Dataset",
        "AUC@5",
        "F1@5",
        "AUC@10",
        "F1@10",
        "AUC@15",
        "F1@15",
        "AUC@20",
        "F1@20"
    );
    println!("{}", "-".repeat(10 + 4 * 17));
    for spec in opts.selected_specs() {
        let prep = match prepare(&spec, &opts) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: skipped ({e})", spec.name);
                continue;
            }
        };
        print!("{:<10}", spec.name);
        let mut peak = (0usize, f64::NEG_INFINITY);
        for &k in &ks {
            let r = Method::Ssfnm.evaluate_augmented(
                &prep.split,
                &prep.extra_train,
                &MethodOptions { k, ..method_opts },
            );
            if r.auc > peak.1 {
                peak = (k, r.auc);
            }
            print!(" | {:>6.3} {:>6.3}", r.auc, r.f1);
        }
        println!("   (peak AUC at K={})", peak.0);
    }
    println!();
    println!("Expected shape (paper): most peaks at K ≤ 15.");
}
