//! Table II reproduction: statistics of the seven datasets.
//!
//! Prints the generated (or loaded) networks' statistics next to the
//! paper's published numbers.
//!
//! Run: `cargo run -p ssf-bench --release --bin table2 [--fast] [--data-dir data]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use datasets::io::Provenance;
use dyngraph::{metrics, stats::NetworkStats};
use ssf_bench::HarnessOptions;

fn main() {
    let opts = HarnessOptions::parse(std::env::args().skip(1));
    println!("Table II reproduction — dataset statistics (ours vs paper)");
    println!();
    println!(
        "{:<10} {:>7} {:>7} | {:>8} {:>8} | {:>10} {:>10} | {:>6} {:>6} | {:>6} {:>5}  source",
        "Dataset", "|V|", "paper", "|E|", "paper", "avg.deg", "paper", "span", "paper", "clust", "gini"
    );
    println!("{}", "-".repeat(114));
    for spec in opts.selected_specs() {
        let (g, prov) = spec
            .load_or_generate(&opts.data_dir, opts.seed)
            .expect("dataset file exists but is malformed");
        let s = NetworkStats::of(&g);
        let source = match prov {
            Provenance::File(p) => format!("file {}", p.display()),
            Provenance::Generated { seed } => {
                format!("generated (seed {seed})")
            }
        };
        // Paper numbers come from the unscaled spec.
        let paper = datasets::DatasetSpec::paper_datasets()
            .into_iter()
            .find(|p| p.name == spec.name)
            .expect("spec names match");
        let stat = g.to_static();
        println!(
            "{:<10} {:>7} {:>7} | {:>8} {:>8} | {:>10.2} {:>10.2} | {:>6} {:>6} | {:>6.3} {:>5.2}  {}",
            spec.name,
            s.nodes,
            paper.nodes,
            s.links,
            paper.target_links,
            s.avg_degree,
            paper.expected_avg_degree(),
            s.time_span,
            paper.time_span,
            metrics::global_clustering(&stat),
            metrics::degree_gini(&stat),
            source,
        );
    }
    if opts.fast {
        println!();
        println!("(--fast: node/link targets scaled to 15%; span preserved)");
    }
}
