//! Figure 6 reproduction: the most frequent K-structure-subgraph pattern
//! in hub-dominated (Facebook-like) vs community (Co-author-like)
//! networks.
//!
//! The paper samples 2,000 links per dataset at K = 10 and visualizes the
//! top pattern: Facebook's is star-like (links form around high-degree
//! celebrities), Co-author's is dense (links form inside research groups).
//!
//! Run: `cargo run -p ssf-bench --release --bin fig6 [--fast] [--samples N]`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ssf_bench::HarnessOptions;
use ssf_core::{PatternMiner, SsfConfig, SsfExtractor};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = HarnessOptions::parse(args.clone());
    let mut samples = if opts.fast { 200 } else { 2000 };
    let mut k = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--samples" => {
                samples = it
                    .next()
                    .expect("--samples requires a value")
                    .parse()
                    .expect("--samples must be an integer");
            }
            "--k" => {
                k = it
                    .next()
                    .expect("--k requires a value")
                    .parse()
                    .expect("--k must be an integer");
            }
            _ => {}
        }
    }

    println!("Figure 6 reproduction — most frequent K-structure patterns (K={k}, {samples} sampled links)");
    let specs = [
        datasets::DatasetSpec::facebook(),
        datasets::DatasetSpec::coauthor(),
    ];
    for spec in specs {
        let spec = if opts.fast { spec.scaled(0.15) } else { spec };
        let (g, _) = spec
            .load_or_generate(&opts.data_dir, opts.seed)
            .expect("dataset file exists but is malformed");
        let links: Vec<(u32, u32)> = {
            let mut pairs: Vec<(u32, u32)> =
                g.to_static().edges().map(|(u, v, _)| (u, v)).collect();
            let mut rng = StdRng::seed_from_u64(opts.seed);
            pairs.shuffle(&mut rng);
            pairs.truncate(samples);
            pairs
        };
        let ex = SsfExtractor::new(SsfConfig::new(k));
        let mut miner = PatternMiner::new();
        for &(u, v) in &links {
            let (ks, _, _) = ex.k_structure(&g, u, v);
            miner.observe(&ks);
        }
        println!();
        println!(
            "=== {} — {} observations, {} distinct patterns",
            spec.name,
            miner.observations(),
            miner.distinct_patterns()
        );
        for (rank, (sig, count)) in
            miner.ranked().into_iter().take(3).enumerate()
        {
            println!(
                "#{} pattern ({} occurrences, {} structure links):",
                rank + 1,
                count,
                sig.link_count()
            );
            println!("{sig}");
        }
    }
    println!(
        "Expected shape (paper): the hub network's top pattern is sparse and \
         endpoint-centered; the co-author network's is denser with more \
         inter-structure-node links."
    );
}
