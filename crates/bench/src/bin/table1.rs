//! Table I reproduction: feature comparison on the Figure 1 celebrity
//! network.
//!
//! Prints every baseline feature's score for the celebrity pair A-B and
//! the fan pair X-Y. The paper's point: CN/AA/RA/rWRA assign identical
//! scores (can't separate the pairs), PA and Jaccard differ but ignore C's
//! celebrity status, while the SSF feature vectors differ — so a model on
//! SSF *can* tell the pairs apart.
//!
//! Run: `cargo run -p ssf-bench --release --bin table1`

// Bench harness, not the serving data path: a failed expectation
// aborts the run and IS the failure report.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use baselines::local;
use ssf_bench::figure1_network;
use ssf_core::{EntryEncoding, SsfConfig, SsfExtractor};

fn main() {
    let (g, (a, b), (x, y)) = figure1_network();
    let stat = g.to_static();
    let l_t = g.max_timestamp().expect("non-empty") + 1;

    println!("Table I reproduction — Figure 1 celebrity network");
    println!(
        "  A,B,C are celebrities (degree {}, {}, {}); X,Y are fans of C only.",
        stat.degree(a),
        stat.degree(b),
        stat.degree(2)
    );
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>14}",
        "feature", "A-B", "X-Y", "separates?"
    );
    println!("{}", "-".repeat(50));
    for (name, f) in local::ALL {
        let sab = f(&stat, a, b);
        let sxy = f(&stat, x, y);
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>14}",
            name,
            sab,
            sxy,
            if (sab - sxy).abs() > 1e-9 {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // SSF feature vectors (K = 6 like the paper's illustration).
    for (label, encoding) in [
        ("SSF-W", EntryEncoding::LinkCount),
        ("SSF", EntryEncoding::ReciprocalDistance),
    ] {
        let ex = SsfExtractor::new(SsfConfig::new(6).with_encoding(encoding));
        let fab = ex.extract(&g, a, b, l_t);
        let fxy = ex.extract(&g, x, y, l_t);
        let differs = fab.values() != fxy.values();
        println!(
            "{:<8} {:>12} {:>12} {:>14}",
            label,
            "(vector)",
            "(vector)",
            if differs { "yes" } else { "NO" }
        );
        println!("   A-B: {:?}", rounded(fab.values()));
        println!("   X-Y: {:?}", rounded(fxy.values()));
    }
    println!();
    println!(
        "Expected shape (paper): CN, AA, RA, rWRA identical for both pairs; \
         PA and Jaccard differ; SSF vectors differ."
    );
}

fn rounded(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 100.0).round() / 100.0).collect()
}
