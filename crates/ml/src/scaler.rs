//! Feature standardization (zero mean, unit variance per column).

use std::io::{self, BufRead, Write};

use linalg::Matrix;

use crate::persist;

/// A fitted standard scaler.
///
/// Columns with zero variance are passed through centered only, avoiding
/// division by zero (common for SSF features: padded slots are all-zero
/// columns on sparse datasets).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits on the rows of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has no rows.
    pub fn fit(x: &Matrix) -> Self {
        assert!(x.rows() > 0, "cannot fit a scaler on zero samples");
        let (n, d) = (x.rows(), x.cols());
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (m, v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; d];
        for i in 0..n {
            for j in 0..d {
                let c = x[(i, j)] - mean[j];
                var[j] += c * c;
            }
        }
        let std = var
            .into_iter()
            .map(|v| {
                let s = (v / n as f64).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { mean, std }
    }

    /// Returns the standardized copy of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted dimension.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "dimension mismatch");
        Matrix::from_fn(x.rows(), x.cols(), |i, j| {
            (x[(i, j)] - self.mean[j]) / self.std[j]
        })
    }

    /// Standardizes a single feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the fitted dimension.
    pub fn transform_row(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        for (v, (m, s)) in x.iter_mut().zip(self.mean.iter().zip(&self.std)) {
            *v = (*v - m) / s;
        }
    }

    /// Convenience: fit on `x` and return the transformed copy plus the
    /// scaler.
    pub fn fit_transform(x: &Matrix) -> (Matrix, Self) {
        let scaler = Self::fit(x);
        let t = scaler.transform(x);
        (t, scaler)
    }

    /// Persists the fitted statistics (exact bit round-trip).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "ssf-scaler v1")?;
        persist::write_floats(&mut w, "mean", self.mean.iter().copied())?;
        persist::write_floats(&mut w, "std", self.std.iter().copied())
    }

    /// Loads statistics written by [`StandardScaler::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on version or shape mismatches, plus reader errors.
    pub fn read_from<R: BufRead>(mut r: R) -> io::Result<Self> {
        persist::expect_line(&mut r, "ssf-scaler v1")?;
        let mean = persist::read_floats(&mut r, "mean")?;
        let std = persist::read_floats(&mut r, "std")?;
        if mean.len() != std.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "mean/std length mismatch",
            ));
        }
        Ok(StandardScaler { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_columns() {
        let x = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 30.0]]);
        let (t, _) = StandardScaler::fit_transform(&x);
        for j in 0..2 {
            let col: Vec<f64> = (0..2).map(|i| t[(i, j)]).collect();
            assert!((linalg::vector::mean(&col)).abs() < 1e-12);
            assert!((linalg::vector::std_dev(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_centered_not_scaled() {
        let x = Matrix::from_rows(&[&[5.0], &[5.0], &[5.0]]);
        let (t, _) = StandardScaler::fit_transform(&x);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 8.0], &[5.0, 4.0]]);
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        let mut row = x.row(1).to_vec();
        scaler.transform_row(&mut row);
        assert_eq!(row.as_slice(), t.row(1));
    }

    #[test]
    fn persistence_round_trips() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[3.5, 8.25], &[5.0, 4.0]]);
        let scaler = StandardScaler::fit(&x);
        let mut buf = Vec::new();
        scaler.write_to(&mut buf).unwrap();
        let loaded = StandardScaler::read_from(buf.as_slice()).unwrap();
        assert_eq!(scaler, loaded);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let scaler = StandardScaler::fit(&x);
        let y = Matrix::from_rows(&[&[1.0]]);
        let _ = scaler.transform(&y);
    }
}
