//! Typed errors for model fitting.

use std::error::Error;
use std::fmt;

use linalg::solve::NotPositiveDefinite;

/// Why a model fit could not produce a usable model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FitError {
    /// The design matrix has no rows or no columns — nothing to fit.
    EmptyDesign,
    /// The target vector length disagrees with the design's row count.
    LengthMismatch {
        /// Number of targets supplied.
        targets: usize,
        /// Number of design-matrix rows.
        rows: usize,
    },
    /// The (ridge-augmented) normal matrix failed its Cholesky
    /// factorization; only possible with `lambda <= 0` on a
    /// rank-deficient design.
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDesign => {
                write!(f, "design matrix must be non-empty")
            }
            FitError::LengthMismatch { targets, rows } => write!(
                f,
                "target length must match sample count \
                 ({targets} targets vs {rows} rows)"
            ),
            FitError::NotPositiveDefinite { pivot } => write!(
                f,
                "normal matrix is not positive definite (pivot {pivot}); \
                 use a positive ridge lambda"
            ),
        }
    }
}

impl Error for FitError {}

impl From<NotPositiveDefinite> for FitError {
    fn from(e: NotPositiveDefinite) -> Self {
        FitError::NotPositiveDefinite { pivot: e.pivot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_actionable() {
        assert!(FitError::EmptyDesign.to_string().contains("non-empty"));
        let e = FitError::LengthMismatch {
            targets: 3,
            rows: 5,
        };
        assert!(e.to_string().contains("3 targets vs 5 rows"));
        let e = FitError::NotPositiveDefinite { pivot: 2 };
        assert!(e.to_string().contains("pivot 2"));
    }

    #[test]
    fn converts_from_linalg_error() {
        let e: FitError = NotPositiveDefinite { pivot: 7 }.into();
        assert_eq!(e, FitError::NotPositiveDefinite { pivot: 7 });
    }
}
