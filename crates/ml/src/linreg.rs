//! Ridge linear regression (the "LR" half of WLLR / SSFLR).
//!
//! The paper treats link prediction as binary classification and feeds the
//! feature vector to a linear regression model; the fitted score is
//! thresholded for F1 and ranked for AUC. We fit the ridge-regularized
//! least-squares problem in closed form via the normal equations (a bias
//! term is always included and never regularized-away — it enters as an
//! extra all-ones column with the same `λ`, which is standard and
//! inconsequential at the small `λ` used).

use linalg::solve::ridge;
use linalg::Matrix;
use obs::ObsHandle;

use crate::error::FitError;

/// A fitted linear regression `score(x) = w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearRegression {
    /// Fits on feature rows `x` and targets `y` (0.0 / 1.0 for
    /// classification) with ridge strength `lambda`.
    ///
    /// # Errors
    ///
    /// [`FitError::EmptyDesign`] when `x` has no rows or columns,
    /// [`FitError::LengthMismatch`] when `y.len() != x.rows()`, and
    /// [`FitError::NotPositiveDefinite`] only for `lambda <= 0` with a
    /// rank-deficient design; any `lambda > 0` with well-shaped inputs
    /// succeeds.
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Self, FitError> {
        Self::fit_observed(x, y, lambda, &ObsHandle::noop())
    }

    /// [`LinearRegression::fit`] with telemetry: the normal-equation solve
    /// runs under an `ssf.ml.solver` span, and the mean squared training
    /// residual of the fitted model lands in the `ssf.ml.solver_residual`
    /// gauge (computed only when the handle is enabled, so the plain
    /// [`LinearRegression::fit`] path does no extra work).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LinearRegression::fit`].
    pub fn fit_observed(
        x: &Matrix,
        y: &[f64],
        lambda: f64,
        obs: &ObsHandle,
    ) -> Result<Self, FitError> {
        let span = obs.span("ssf.ml.solver");
        let fitted = Self::fit_inner(x, y, lambda);
        span.finish();
        if obs.enabled() {
            if let Ok(m) = &fitted {
                let sse: f64 = (0..x.rows())
                    .map(|i| {
                        let r = m.predict(x.row(i)) - y[i];
                        r * r
                    })
                    .sum();
                obs.gauge("ssf.ml.solver_residual", sse / x.rows() as f64);
            }
        }
        fitted
    }

    fn fit_inner(x: &Matrix, y: &[f64], lambda: f64) -> Result<Self, FitError> {
        if x.rows() == 0 || x.cols() == 0 {
            return Err(FitError::EmptyDesign);
        }
        if y.len() != x.rows() {
            return Err(FitError::LengthMismatch {
                targets: y.len(),
                rows: x.rows(),
            });
        }
        // Augment with a bias column of ones.
        let (n, d) = (x.rows(), x.cols());
        let aug =
            Matrix::from_fn(
                n,
                d + 1,
                |i, j| {
                    if j < d {
                        x[(i, j)]
                    } else {
                        1.0
                    }
                },
            );
        let mut w = ridge(&aug, y, lambda)?;
        let Some(bias) = w.pop() else {
            // d + 1 >= 1 columns, so ridge always returns at least one
            // coefficient; keep a typed escape hatch anyway.
            return Err(FitError::EmptyDesign);
        };
        Ok(LinearRegression { weights: w, bias })
    }

    /// The fitted weight vector (without the bias).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The fitted bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Regression score of one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        linalg::vector::dot(&self.weights, x) + self.bias
    }

    /// Binary decision at the conventional 0.5 threshold.
    pub fn classify(&self, x: &[f64]) -> bool {
        self.predict(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_relation_with_bias() {
        // y = 3 x0 - 2 x1 + 0.5
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, -1.0],
        ]);
        let y: Vec<f64> = (0..x.rows())
            .map(|i| 3.0 * x[(i, 0)] - 2.0 * x[(i, 1)] + 0.5)
            .collect();
        let m = LinearRegression::fit(&x, &y, 1e-9).unwrap();
        assert!((m.weights()[0] - 3.0).abs() < 1e-5);
        assert!((m.weights()[1] + 2.0).abs() < 1e-5);
        assert!((m.bias() - 0.5).abs() < 1e-5);
        assert!((m.predict(&[2.0, 2.0]) - 2.5).abs() < 1e-5);
    }

    #[test]
    fn separates_labeled_classes() {
        // Class 1 has large first feature.
        let x = Matrix::from_rows(&[
            &[5.0, 1.0],
            &[6.0, 0.5],
            &[5.5, 0.0],
            &[0.1, 1.0],
            &[0.3, 0.2],
            &[0.0, 0.8],
        ]);
        let y = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let m = LinearRegression::fit(&x, &y, 1e-6).unwrap();
        assert!(m.classify(&[5.8, 0.4]));
        assert!(!m.classify(&[0.2, 0.6]));
    }

    #[test]
    fn ridge_handles_collinear_features() {
        // Second column duplicates the first: singular without ridge.
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let y = [1.0, 2.0, 3.0];
        let m = LinearRegression::fit(&x, &y, 1e-3).unwrap();
        assert!((m.predict(&[2.0, 2.0]) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn constant_features_fall_back_to_bias() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0], &[1.0]]);
        let y = [0.0, 1.0, 0.0, 1.0];
        let m = LinearRegression::fit(&x, &y, 1e-3).unwrap();
        // Prediction collapses to the (ridge-shrunk) mean.
        assert!((m.predict(&[1.0]) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn shape_violations_are_typed_errors() {
        let x = Matrix::from_rows(&[&[1.0]]);
        assert_eq!(
            LinearRegression::fit(&x, &[1.0, 2.0], 0.1),
            Err(FitError::LengthMismatch {
                targets: 2,
                rows: 1
            })
        );
        let empty = Matrix::from_fn(0, 0, |_, _| 0.0);
        assert_eq!(
            LinearRegression::fit(&empty, &[], 0.1),
            Err(FitError::EmptyDesign)
        );
    }
}
