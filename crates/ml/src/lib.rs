//! Learning machinery for the SSF link-prediction methods.
//!
//! The paper applies its feature to two models (§VI-C1):
//!
//! * a **linear regression** model (SSFLR / WLLR) — [`LinearRegression`],
//!   closed-form ridge fit via the normal equations;
//! * a **neural machine** (SSFNM / WLNM) — [`NeuralMachine`], a
//!   fully-connected network with three hidden layers (32, 32, 16 neurons,
//!   ReLU) and a softmax output, trained with minibatch gradient descent
//!   (batch 10, learning rate 0.001 in the paper) — implemented from
//!   scratch on [`linalg::Matrix`] because the Rust neural-network
//!   ecosystem is thin (see DESIGN.md).
//!
//! [`StandardScaler`] provides the usual feature standardization.

pub mod error;
pub mod linreg;
pub mod nn;
pub mod persist;
pub mod scaler;

pub use error::FitError;
pub use linreg::LinearRegression;
pub use nn::{MlpConfig, NeuralMachine, Optimizer};
pub use scaler::StandardScaler;
