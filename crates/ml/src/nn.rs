//! The "neural machine": a fully-connected classification network
//! implemented from scratch (§VI-C2 of the paper).
//!
//! Architecture: `input → 32 → 32 → 16 → softmax(2)`, ReLU activations,
//! cross-entropy loss, minibatch training (batch size 10, learning rate
//! 0.001 in the paper). [`Optimizer::Adam`] is the default — plain SGD at
//! lr 0.001 needs the paper's 2000 epochs to converge, Adam reaches the
//! same plateau in a fraction; both are available.

use std::io::{self, BufRead, Write};

use linalg::{vector, Matrix};
use obs::ObsHandle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::persist;

/// Gradient-descent flavor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain minibatch stochastic gradient descent.
    Sgd,
    /// Adam with the customary defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e−8).
    Adam,
}

/// Hyperparameters of the neural machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths; the paper uses `[32, 32, 16]`.
    pub hidden: Vec<usize>,
    /// Number of output classes (softmax width); 2 for link prediction.
    pub classes: usize,
    /// Learning rate (paper: 0.001).
    pub learning_rate: f64,
    /// Training epochs (paper: 2000; Adam typically saturates much
    /// earlier).
    pub epochs: u32,
    /// Minibatch size (paper: 10).
    pub batch_size: usize,
    /// Optimizer flavor.
    pub optimizer: Optimizer,
    /// Decoupled L2 weight decay (AdamW-style; also applied under SGD).
    /// The link-prediction training sets are small (a few hundred samples
    /// against ~44 features), so some regularization is load-bearing.
    pub weight_decay: f64,
    /// Early stopping: hold out this fraction of the training rows as a
    /// validation set and stop when its cross-entropy has not improved
    /// for [`MlpConfig::patience`] epochs, restoring the best weights.
    /// 0.0 disables early stopping (the paper trains a fixed epoch count).
    pub validation_fraction: f64,
    /// Early-stopping patience in epochs (only with a validation split).
    pub patience: u32,
    /// RNG seed for weight init and batch shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    /// The paper's architecture with Adam and a practical epoch budget.
    fn default() -> Self {
        MlpConfig {
            hidden: vec![32, 32, 16],
            classes: 2,
            learning_rate: 0.001,
            epochs: 200,
            batch_size: 10,
            optimizer: Optimizer::Adam,
            weight_decay: 1e-3,
            validation_fraction: 0.0,
            patience: 20,
            seed: 17,
        }
    }
}

/// One dense layer plus its Adam moment buffers.
#[derive(Debug, Clone, PartialEq)]
struct Dense {
    w: Matrix, // in × out
    b: Vec<f64>,
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Dense {
    fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = Matrix::from_fn(inputs, outputs, |_, _| {
            rng.gen_range(-1.0..1.0) * scale
        });
        Dense {
            mw: Matrix::zeros(inputs, outputs),
            vw: Matrix::zeros(inputs, outputs),
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
            b: vec![0.0; outputs],
            w,
        }
    }

    /// `x (B×in) → x·W + b (B×out)`.
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        for i in 0..z.rows() {
            vector::axpy(1.0, &self.b, z.row_mut(i));
        }
        z
    }
}

/// A trained neural machine.
///
/// # Example
///
/// ```rust
/// use linalg::Matrix;
/// use ssf_ml::{MlpConfig, NeuralMachine};
///
/// // XOR-ish toy data.
/// let x = Matrix::from_rows(&[
///     &[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0],
/// ]);
/// let y = [0, 1, 1, 0];
/// let cfg = MlpConfig { hidden: vec![8, 8], epochs: 800, ..MlpConfig::default() };
/// let nm = NeuralMachine::train(&x, &y, cfg);
/// assert!(nm.score(&[0.0, 1.0]) > 0.5);
/// assert!(nm.score(&[1.0, 1.0]) < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralMachine {
    layers: Vec<Dense>,
    config: MlpConfig,
}

impl NeuralMachine {
    /// Trains on feature rows `x` with class labels `y` (`y[i] <
    /// config.classes`).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, a label is out of range,
    /// or `config` has a zero batch size / learning rate.
    pub fn train(x: &Matrix, y: &[usize], config: MlpConfig) -> Self {
        Self::train_observed(x, y, config, &ObsHandle::noop())
    }

    /// [`NeuralMachine::train`] with telemetry: wraps the run in an
    /// `ssf.ml.fit` span, times each epoch into `ssf.ml.fit_epoch`, counts
    /// `ssf.ml.epochs`, and publishes the latest validation loss as the
    /// `ssf.ml.val_loss` gauge. Training math is identical — the recorder
    /// only watches.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NeuralMachine::train`].
    pub fn train_observed(
        x: &Matrix,
        y: &[usize],
        config: MlpConfig,
        obs: &ObsHandle,
    ) -> Self {
        let _fit_span = obs.span("ssf.ml.fit");
        assert!(
            x.rows() > 0 && x.cols() > 0,
            "training set must be non-empty"
        );
        assert_eq!(y.len(), x.rows(), "label length must match sample count");
        assert!(config.batch_size > 0, "batch size must be positive");
        assert!(config.learning_rate > 0.0, "learning rate must be positive");
        assert!(config.classes >= 2, "need at least two classes");
        assert!(
            y.iter().all(|&c| c < config.classes),
            "labels must be < classes"
        );

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dims = vec![x.cols()];
        dims.extend_from_slice(&config.hidden);
        dims.push(config.classes);
        let layers = dims
            .windows(2)
            .map(|w| Dense::new(w[0], w[1], &mut rng))
            .collect();
        let mut nm = NeuralMachine { layers, config };

        let n = x.rows();
        let mut index: Vec<usize> = (0..n).collect();
        index.shuffle(&mut rng);
        // Optional validation holdout for early stopping.
        let vf = nm.config.validation_fraction;
        assert!(
            (0.0..0.9).contains(&vf),
            "validation_fraction must be in [0, 0.9)"
        );
        let val_len = if vf > 0.0 {
            ((n as f64 * vf) as usize).clamp(1, n.saturating_sub(2))
        } else {
            0
        };
        let (val_idx, train_idx) = index.split_at(val_len);
        let val_idx = val_idx.to_vec();
        let mut index: Vec<usize> = train_idx.to_vec();

        let mut step = 0u64;
        let mut best: Option<(f64, Vec<Dense>)> = None;
        let mut since_best = 0u32;
        for _ in 0..nm.config.epochs {
            let epoch_span = obs.span("ssf.ml.fit_epoch");
            obs.counter("ssf.ml.epochs", 1);
            index.shuffle(&mut rng);
            for batch in index.chunks(nm.config.batch_size) {
                step += 1;
                nm.train_batch(x, y, batch, step);
            }
            if val_len > 0 {
                let loss = nm.subset_cross_entropy(x, y, &val_idx);
                obs.gauge("ssf.ml.val_loss", loss);
                if best.as_ref().is_none_or(|(b, _)| loss < *b) {
                    best = Some((loss, nm.layers.clone()));
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= nm.config.patience {
                        epoch_span.finish();
                        break;
                    }
                }
            }
            epoch_span.finish();
        }
        if let Some((_, layers)) = best {
            nm.layers = layers;
        }
        nm
    }

    /// Persists the trained network (architecture + weights) to a plain
    /// text stream. Training hyperparameters and optimizer state are not
    /// persisted — a loaded model is for inference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "ssf-nm v1")?;
        persist::write_usizes(
            &mut w,
            "hidden",
            self.config.hidden.iter().copied(),
        )?;
        persist::write_usizes(&mut w, "classes", [self.config.classes])?;
        persist::write_usizes(&mut w, "layers", [self.layers.len()])?;
        for layer in &self.layers {
            persist::write_usizes(
                &mut w,
                "dims",
                [layer.w.rows(), layer.w.cols()],
            )?;
            persist::write_floats(
                &mut w,
                "w",
                layer.w.as_slice().iter().copied(),
            )?;
            persist::write_floats(&mut w, "b", layer.b.iter().copied())?;
        }
        Ok(())
    }

    /// Loads a network written by [`NeuralMachine::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on version/shape mismatches, plus reader I/O errors.
    pub fn read_from<R: BufRead>(mut r: R) -> io::Result<Self> {
        persist::expect_line(&mut r, "ssf-nm v1")?;
        let hidden = persist::read_usizes(&mut r, "hidden")?;
        let classes = persist::read_usizes(&mut r, "classes")?;
        let nlayers = persist::read_usizes(&mut r, "layers")?;
        let (Some(&classes), Some(&nlayers)) =
            (classes.first(), nlayers.first())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "missing classes/layers counts",
            ));
        };
        let mut layers = Vec::with_capacity(nlayers);
        for _ in 0..nlayers {
            let dims = persist::read_usizes(&mut r, "dims")?;
            let (Some(&rows), Some(&cols)) = (dims.first(), dims.get(1)) else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad layer dims",
                ));
            };
            let w = persist::read_floats(&mut r, "w")?;
            let b = persist::read_floats(&mut r, "b")?;
            if w.len() != rows * cols || b.len() != cols {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "layer shape mismatch",
                ));
            }
            layers.push(Dense {
                mw: Matrix::zeros(rows, cols),
                vw: Matrix::zeros(rows, cols),
                mb: vec![0.0; cols],
                vb: vec![0.0; cols],
                w: Matrix::from_vec(rows, cols, w),
                b,
            });
        }
        Ok(NeuralMachine {
            layers,
            config: MlpConfig {
                hidden,
                classes,
                ..MlpConfig::default()
            },
        })
    }

    /// Mean cross-entropy over an index subset (validation loss).
    fn subset_cross_entropy(
        &self,
        x: &Matrix,
        y: &[usize],
        idx: &[usize],
    ) -> f64 {
        let mut loss = 0.0;
        for &i in idx {
            let p = self.predict_proba(x.row(i));
            loss -= p[y[i]].max(1e-15).ln();
        }
        loss / idx.len() as f64
    }

    /// Class-probability vector for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec());
        let (activations, _) = self.forward(&xm);
        #[allow(clippy::expect_used)] // structural invariant: ≥1 layer
        let logits = activations.last().expect("network has layers");
        vector::softmax(logits.row(0))
    }

    /// Probability of class 1 — the link score.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training dimension.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.predict_proba(x)[1]
    }

    /// Predicted class (argmax of the probabilities).
    pub fn classify(&self, x: &[f64]) -> usize {
        #[allow(clippy::expect_used)] // classes ≥ 2, so never empty
        vector::argmax(&self.predict_proba(x)).expect("non-empty probabilities")
    }

    /// Mean cross-entropy on a labeled set (diagnostic).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn cross_entropy(&self, x: &Matrix, y: &[usize]) -> f64 {
        assert_eq!(y.len(), x.rows(), "label length must match sample count");
        let mut loss = 0.0;
        for i in 0..x.rows() {
            let p = self.predict_proba(x.row(i));
            loss -= (p[y[i]].max(1e-15)).ln();
        }
        loss / x.rows() as f64
    }

    /// Forward pass over a batch; returns per-layer pre-softmax activations
    /// `[A1 … AL]` (post-ReLU for hidden layers, raw logits for the last)
    /// and the pre-activation values `[Z1 … ZL]`.
    fn forward(&self, x: &Matrix) -> (Vec<Matrix>, Vec<Matrix>) {
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut zs = Vec::with_capacity(self.layers.len());
        let mut a = x.clone();
        for (li, layer) in self.layers.iter().enumerate() {
            let z = layer.forward(&a);
            let is_last = li + 1 == self.layers.len();
            a = if is_last {
                z.clone()
            } else {
                z.map(|v| v.max(0.0))
            };
            zs.push(z);
            activations.push(a.clone());
        }
        (activations, zs)
    }

    fn train_batch(
        &mut self,
        x: &Matrix,
        y: &[usize],
        batch: &[usize],
        step: u64,
    ) {
        let bsz = batch.len();
        let xb = Matrix::from_fn(bsz, x.cols(), |i, j| x[(batch[i], j)]);
        let (activations, zs) = self.forward(&xb);

        // Softmax + cross-entropy gradient at the logits: (P − Y)/B.
        #[allow(clippy::expect_used)] // structural invariant: ≥1 layer
        let logits = activations.last().expect("network has layers");
        let mut delta = Matrix::zeros(bsz, self.config.classes);
        for i in 0..bsz {
            let p = vector::softmax(logits.row(i));
            for c in 0..self.config.classes {
                let t = if y[batch[i]] == c { 1.0 } else { 0.0 };
                delta[(i, c)] = (p[c] - t) / bsz as f64;
            }
        }

        // Backward through the layers.
        for li in (0..self.layers.len()).rev() {
            let a_prev = if li == 0 { &xb } else { &activations[li - 1] };
            let grad_w = a_prev.t_matmul(&delta);
            let grad_b: Vec<f64> = (0..delta.cols())
                .map(|c| (0..delta.rows()).map(|r| delta[(r, c)]).sum())
                .collect();
            if li > 0 {
                // δ_{l-1} = (δ_l · W_lᵀ) ∘ ReLU'(Z_{l-1})
                let mut prev = delta.matmul_t(&self.layers[li].w);
                let z_prev = &zs[li - 1];
                for i in 0..prev.rows() {
                    for j in 0..prev.cols() {
                        if z_prev[(i, j)] <= 0.0 {
                            prev[(i, j)] = 0.0;
                        }
                    }
                }
                self.apply_update(li, &grad_w, &grad_b, step);
                delta = prev;
            } else {
                self.apply_update(li, &grad_w, &grad_b, step);
            }
        }
    }

    fn apply_update(
        &mut self,
        li: usize,
        grad_w: &Matrix,
        grad_b: &[f64],
        step: u64,
    ) {
        let lr = self.config.learning_rate;
        let layer = &mut self.layers[li];
        // Decoupled weight decay on the weights (never the biases).
        if self.config.weight_decay > 0.0 {
            let shrink = 1.0 - lr * self.config.weight_decay;
            for w in layer.w.as_mut_slice() {
                *w *= shrink;
            }
        }
        match self.config.optimizer {
            Optimizer::Sgd => {
                for (w, g) in
                    layer.w.as_mut_slice().iter_mut().zip(grad_w.as_slice())
                {
                    *w -= lr * g;
                }
                for (b, g) in layer.b.iter_mut().zip(grad_b) {
                    *b -= lr * g;
                }
            }
            Optimizer::Adam => {
                const B1: f64 = 0.9;
                const B2: f64 = 0.999;
                const EPS: f64 = 1e-8;
                let t = step as f64;
                let corr1 = 1.0 - B1.powf(t);
                let corr2 = 1.0 - B2.powf(t);
                let adam = |p: &mut f64, m: &mut f64, v: &mut f64, g: f64| {
                    *m = B1 * *m + (1.0 - B1) * g;
                    *v = B2 * *v + (1.0 - B2) * g * g;
                    let mhat = *m / corr1;
                    let vhat = *v / corr2;
                    *p -= lr * mhat / (vhat.sqrt() + EPS);
                };
                for ((p, m), (v, g)) in layer
                    .w
                    .as_mut_slice()
                    .iter_mut()
                    .zip(layer.mw.as_mut_slice())
                    .zip(
                        layer
                            .vw
                            .as_mut_slice()
                            .iter_mut()
                            .zip(grad_w.as_slice()),
                    )
                {
                    adam(p, m, v, *g);
                }
                for ((p, m), (v, g)) in layer
                    .b
                    .iter_mut()
                    .zip(layer.mb.iter_mut())
                    .zip(layer.vb.iter_mut().zip(grad_b))
                {
                    adam(p, m, v, *g);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize) -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian-ish blobs on a deterministic lattice.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per {
            let jitter = (i % 7) as f64 * 0.05;
            rows.push(vec![1.0 + jitter, 1.0 - jitter]);
            y.push(1usize);
            rows.push(vec![-1.0 - jitter, -1.0 + jitter]);
            y.push(0usize);
        }
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs), y)
    }

    fn quick_cfg() -> MlpConfig {
        MlpConfig {
            hidden: vec![8, 8],
            epochs: 60,
            learning_rate: 0.01,
            ..MlpConfig::default()
        }
    }

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(30);
        let nm = NeuralMachine::train(&x, &y, quick_cfg());
        assert_eq!(nm.classify(&[1.2, 0.9]), 1);
        assert_eq!(nm.classify(&[-1.1, -0.8]), 0);
        assert!(nm.score(&[1.2, 0.9]) > 0.9);
    }

    #[test]
    fn probabilities_normalized() {
        let (x, y) = blobs(10);
        let nm = NeuralMachine::train(&x, &y, quick_cfg());
        let p = nm.predict_proba(&[0.3, -0.2]);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_cross_entropy() {
        let (x, y) = blobs(20);
        let short = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                epochs: 1,
                ..quick_cfg()
            },
        );
        let long = NeuralMachine::train(&x, &y, quick_cfg());
        assert!(long.cross_entropy(&x, &y) < short.cross_entropy(&x, &y));
    }

    #[test]
    fn sgd_also_learns() {
        let (x, y) = blobs(30);
        let nm = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                optimizer: Optimizer::Sgd,
                epochs: 300,
                learning_rate: 0.05,
                ..quick_cfg()
            },
        );
        assert_eq!(nm.classify(&[1.0, 1.0]), 1);
        assert_eq!(nm.classify(&[-1.0, -1.0]), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, y) = blobs(10);
        let a = NeuralMachine::train(&x, &y, quick_cfg());
        let b = NeuralMachine::train(&x, &y, quick_cfg());
        assert_eq!(a.score(&[0.5, 0.5]), b.score(&[0.5, 0.5]));
    }

    #[test]
    fn learns_xor_nonlinearity() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
        ]);
        let y = [0, 1, 1, 0];
        let nm = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                hidden: vec![8, 8],
                epochs: 1500,
                learning_rate: 0.01,
                batch_size: 4,
                ..MlpConfig::default()
            },
        );
        assert_eq!(nm.classify(&[0.0, 0.0]), 0);
        assert_eq!(nm.classify(&[0.0, 1.0]), 1);
        assert_eq!(nm.classify(&[1.0, 0.0]), 1);
        assert_eq!(nm.classify(&[1.0, 1.0]), 0);
    }

    #[test]
    fn early_stopping_halts_and_keeps_best_weights() {
        let (x, y) = blobs(40);
        let es = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                epochs: 500,
                validation_fraction: 0.2,
                patience: 5,
                ..quick_cfg()
            },
        );
        // Still a working classifier…
        assert_eq!(es.classify(&[1.1, 0.9]), 1);
        assert_eq!(es.classify(&[-1.0, -1.1]), 0);
        // …and deterministic like everything else.
        let es2 = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                epochs: 500,
                validation_fraction: 0.2,
                patience: 5,
                ..quick_cfg()
            },
        );
        assert_eq!(es.score(&[0.3, 0.3]), es2.score(&[0.3, 0.3]));
    }

    #[test]
    fn persistence_round_trips_predictions() {
        let (x, y) = blobs(20);
        let nm = NeuralMachine::train(&x, &y, quick_cfg());
        let mut buf = Vec::new();
        nm.write_to(&mut buf).unwrap();
        let loaded = NeuralMachine::read_from(buf.as_slice()).unwrap();
        for probe in [[0.5, -0.3], [1.2, 0.9], [-1.0, -0.8]] {
            assert_eq!(nm.predict_proba(&probe), loaded.predict_proba(&probe));
        }
    }

    #[test]
    fn corrupted_model_rejected() {
        let (x, y) = blobs(5);
        let nm = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                epochs: 1,
                ..quick_cfg()
            },
        );
        let mut buf = Vec::new();
        nm.write_to(&mut buf).unwrap();
        // Truncate mid-file.
        buf.truncate(buf.len() / 2);
        assert!(NeuralMachine::read_from(buf.as_slice()).is_err());
        assert!(NeuralMachine::read_from(&b"not a model\n"[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "validation_fraction")]
    fn validation_fraction_validated() {
        let (x, y) = blobs(5);
        let _ = NeuralMachine::train(
            &x,
            &y,
            MlpConfig {
                validation_fraction: 0.95,
                ..quick_cfg()
            },
        );
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn label_range_checked() {
        let x = Matrix::from_rows(&[&[1.0]]);
        let _ = NeuralMachine::train(&x, &[5], MlpConfig::default());
    }
}
