//! Plain-text persistence for trained models.
//!
//! A small, versioned, dependency-free line format ("`ssf-ml v1`") that
//! round-trips every `f64` exactly by writing the IEEE-754 bit pattern in
//! hex. Optimizer moment buffers are not persisted — a loaded model is for
//! inference (and deterministic re-training restarts from scratch anyway).

use std::io::{self, BufRead, Write};

/// Writes a named vector of floats as one line: `name hex hex hex …`.
pub fn write_floats<W: Write>(
    mut w: W,
    name: &str,
    values: impl IntoIterator<Item = f64>,
) -> io::Result<()> {
    write!(w, "{name}")?;
    for v in values {
        write!(w, " {:016x}", v.to_bits())?;
    }
    writeln!(w)
}

/// Reads a line written by [`write_floats`], checking the leading name.
///
/// # Errors
///
/// `InvalidData` on EOF, name mismatch, or malformed hex.
pub fn read_floats<R: BufRead>(r: &mut R, name: &str) -> io::Result<Vec<f64>> {
    let line = read_line(r)?;
    let mut fields = line.split_whitespace();
    let got = fields.next().unwrap_or("");
    if got != name {
        return Err(invalid(format!("expected {name:?}, found {got:?}")));
    }
    fields
        .map(|hex| {
            u64::from_str_radix(hex, 16)
                .map(f64::from_bits)
                .map_err(|_| invalid(format!("bad float field {hex:?}")))
        })
        .collect()
}

/// Writes a named list of integers: `name a b c …`.
pub fn write_usizes<W: Write>(
    mut w: W,
    name: &str,
    values: impl IntoIterator<Item = usize>,
) -> io::Result<()> {
    write!(w, "{name}")?;
    for v in values {
        write!(w, " {v}")?;
    }
    writeln!(w)
}

/// Reads a line written by [`write_usizes`].
///
/// # Errors
///
/// `InvalidData` on EOF, name mismatch, or malformed integers.
pub fn read_usizes<R: BufRead>(
    r: &mut R,
    name: &str,
) -> io::Result<Vec<usize>> {
    let line = read_line(r)?;
    let mut fields = line.split_whitespace();
    let got = fields.next().unwrap_or("");
    if got != name {
        return Err(invalid(format!("expected {name:?}, found {got:?}")));
    }
    fields
        .map(|s| s.parse().map_err(|_| invalid(format!("bad integer {s:?}"))))
        .collect()
}

/// Reads one non-empty line.
///
/// # Errors
///
/// `InvalidData` at EOF.
pub fn read_line<R: BufRead>(r: &mut R) -> io::Result<String> {
    let mut line = String::new();
    loop {
        line.clear();
        if r.read_line(&mut line)? == 0 {
            return Err(invalid("unexpected end of model file".to_string()));
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            return Ok(trimmed.to_string());
        }
    }
}

/// Checks a literal header/marker line.
///
/// # Errors
///
/// `InvalidData` when the line differs.
pub fn expect_line<R: BufRead>(r: &mut R, expected: &str) -> io::Result<()> {
    let line = read_line(r)?;
    if line == expected {
        Ok(())
    } else {
        Err(invalid(format!("expected {expected:?}, found {line:?}")))
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        let values = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, -3.25e-17];
        let mut buf = Vec::new();
        write_floats(&mut buf, "w", values).unwrap();
        let mut r = buf.as_slice();
        let back = read_floats(&mut r, "w").unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn usizes_round_trip() {
        let mut buf = Vec::new();
        write_usizes(&mut buf, "dims", [44usize, 32, 16, 2]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_usizes(&mut r, "dims").unwrap(), vec![44, 32, 16, 2]);
    }

    #[test]
    fn name_mismatch_rejected() {
        let mut buf = Vec::new();
        write_floats(&mut buf, "w", [1.0]).unwrap();
        let mut r = buf.as_slice();
        assert!(read_floats(&mut r, "b").is_err());
    }

    #[test]
    fn eof_rejected() {
        let mut r: &[u8] = b"";
        assert!(read_line(&mut r).is_err());
    }

    #[test]
    fn expect_line_checks_literal() {
        let mut r: &[u8] = b"header v1\n";
        assert!(expect_line(&mut r, "header v1").is_ok());
        let mut r: &[u8] = b"other\n";
        assert!(expect_line(&mut r, "header v1").is_err());
    }
}
