//! Property-based tests for the learning machinery.

use proptest::prelude::*;

use linalg::Matrix;
use ssf_ml::{LinearRegression, MlpConfig, NeuralMachine, StandardScaler};

fn design(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Ridge residuals are orthogonal to the (augmented) design within the
    /// regularization pull: `Xᵀ(y − Xw − b) = λw` exactly at the optimum.
    #[test]
    fn ridge_normal_equations_hold(
        x in design(10, 3),
        y in prop::collection::vec(-2.0..2.0f64, 10),
    ) {
        let lambda = 0.7;
        let m = LinearRegression::fit(&x, &y, lambda).expect("ridge fits");
        let residual: Vec<f64> = (0..x.rows())
            .map(|i| y[i] - m.predict(x.row(i)))
            .collect();
        for j in 0..x.cols() {
            let grad: f64 = (0..x.rows())
                .map(|i| x[(i, j)] * residual[i])
                .sum();
            prop_assert!(
                (grad - lambda * m.weights()[j]).abs() < 1e-6,
                "column {j}: grad {grad} vs λw {}",
                lambda * m.weights()[j]
            );
        }
    }

    /// Predictions are affine: predict(αx) interpolates linearly.
    #[test]
    fn linreg_is_affine(
        x in design(8, 2),
        y in prop::collection::vec(-2.0..2.0f64, 8),
        p in prop::collection::vec(-1.0..1.0f64, 2),
        q in prop::collection::vec(-1.0..1.0f64, 2),
        alpha in 0.0..1.0f64,
    ) {
        let m = LinearRegression::fit(&x, &y, 0.1).expect("ridge fits");
        let mix: Vec<f64> = p
            .iter()
            .zip(&q)
            .map(|(&a, &b)| alpha * a + (1.0 - alpha) * b)
            .collect();
        let expected = alpha * m.predict(&p) + (1.0 - alpha) * m.predict(&q);
        prop_assert!((m.predict(&mix) - expected).abs() < 1e-9);
    }

    /// The neural machine always outputs a valid probability distribution,
    /// whatever the weights have learned.
    #[test]
    fn nn_outputs_probabilities(
        x in design(12, 4),
        labels in prop::collection::vec(0..2usize, 12),
        probe in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let nm = NeuralMachine::train(
            &x,
            &labels,
            MlpConfig {
                hidden: vec![6],
                epochs: 3,
                ..MlpConfig::default()
            },
        );
        let p = nm.predict_proba(&probe);
        prop_assert_eq!(p.len(), 2);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        prop_assert!((nm.score(&probe) - p[1]).abs() < 1e-15);
    }

    /// Scaling then unscaling through the stored statistics round-trips.
    #[test]
    fn scaler_is_invertible_on_varying_columns(x in design(9, 3)) {
        let scaler = StandardScaler::fit(&x);
        let t = scaler.transform(&x);
        // Re-fit on the transformed data: mean 0, std 1 (or constant).
        let rescaler = StandardScaler::fit(&t);
        let t2 = rescaler.transform(&t);
        for (a, b) in t.as_slice().iter().zip(t2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
