//! Property-based tests for the dense linear-algebra kernels.

use proptest::prelude::*;

use linalg::{solve, vector, Matrix};

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0..5.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn close(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() < tol)
}

proptest! {
    /// (AB)C = A(BC) within numerical tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix(4, 3),
        b in matrix(3, 5),
        c in matrix(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(close(&left, &right, 1e-9));
    }

    /// (AB)ᵀ = Bᵀ Aᵀ.
    #[test]
    fn transpose_reverses_products(a in matrix(4, 3), b in matrix(3, 5)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&left, &right, 1e-9));
    }

    /// The fused transposed products agree with the naive ones.
    #[test]
    fn fused_products_agree(
        a in matrix(5, 3),
        b in matrix(5, 4),
        c in matrix(6, 3),
    ) {
        prop_assert!(close(&a.t_matmul(&b), &a.transpose().matmul(&b), 1e-9));
        prop_assert!(close(&a.matmul_t(&c), &a.matmul(&c.transpose()), 1e-9));
    }

    /// Cholesky solve inverts SPD systems built as MᵀM + I.
    #[test]
    fn spd_solve_round_trips(m in matrix(6, 6), x in prop::collection::vec(-3.0..3.0f64, 6)) {
        let mut a = m.t_matmul(&m);
        for i in 0..6 {
            a[(i, i)] += 1.0;
        }
        let b = a.matvec(&x);
        let solved = solve::solve_spd(&a, &b).expect("SPD by construction");
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-6, "{solved:?} vs {x:?}");
        }
    }

    /// Ridge solution minimizes the regularized objective: perturbing the
    /// weights never decreases the loss.
    #[test]
    fn ridge_is_a_minimum(
        x in matrix(8, 3),
        y in prop::collection::vec(-2.0..2.0f64, 8),
        delta in prop::collection::vec(-0.1..0.1f64, 3),
    ) {
        let lambda = 0.5;
        let w = solve::ridge(&x, &y, lambda).expect("ridge succeeds");
        let loss = |w: &[f64]| -> f64 {
            let mut l = 0.0;
            for (i, target) in y.iter().enumerate() {
                let pred = vector::dot(x.row(i), w);
                l += (pred - target).powi(2);
            }
            l + lambda * vector::dot(w, w)
        };
        let mut w2 = w.clone();
        for (wi, d) in w2.iter_mut().zip(&delta) {
            *wi += d;
        }
        prop_assert!(loss(&w) <= loss(&w2) + 1e-9);
    }

    /// Softmax output is a probability distribution, invariant to shifts.
    #[test]
    fn softmax_properties(z in prop::collection::vec(-30.0..30.0f64, 1..8), shift in -10.0..10.0f64) {
        let p = vector::softmax(&z);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let shifted: Vec<f64> = z.iter().map(|v| v + shift).collect();
        let p2 = vector::softmax(&shifted);
        for (a, b) in p.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
