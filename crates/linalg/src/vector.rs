//! Slice helpers shared by the models: dot products, norms, softmax, argmax.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Numerically stable softmax (subtracts the max before exponentiating).
///
/// Returns an empty vector for empty input.
pub fn softmax(z: &[f64]) -> Vec<f64> {
    let Some(max) = z.iter().copied().reduce(f64::max) else {
        return Vec::new();
    };
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Index of the largest element (first on ties).
///
/// Returns `None` for empty input.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Mean of a slice; 0.0 for empty input.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation; 0.0 for empty input.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_checks_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }
}
