use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
///
/// Sized for this project's workloads (feature matrices of a few thousand
/// rows, adjacency matrices of a few thousand nodes): straightforward
/// triple-loop matmul with the `ikj` ordering for cache friendliness, no
/// blocking or SIMD.
///
/// # Example
///
/// ```rust
/// use linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(0, 1)], 5.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "t_matmul shape mismatch: ({}x{})ᵀ * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let lrow = &self.data[k * self.cols..(k + 1) * self.cols];
            let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &l) in lrow.iter().enumerate() {
                if l == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += l * r;
                }
            }
        }
        out
    }

    /// `self * rhsᵀ` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_t shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lrow = self.row(i);
            for j in 0..rhs.rows {
                let rrow = rhs.row(j);
                out.data[i * rhs.rows + j] = crate::vector::dot(lrow, rrow);
            }
        }
        out
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect()
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| {
            self.data[j * self.cols + i]
        })
    }

    /// Elementwise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Sum of squares of all entries (squared Frobenius norm).
    pub fn frobenius_sq(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum()
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "elementwise shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.data[i * self.cols + j])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64 * 0.5);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        let c = Matrix::from_fn(5, 4, |i, j| (i as f64) - (j as f64));
        assert_eq!(a.matmul_t(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_sq(), 25.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * j) as f64 + 1.0);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }
}
