//! Dense matrix/vector kernels.
//!
//! A deliberately small, dependency-free linear-algebra layer sized for this
//! reproduction's needs: the non-negative matrix factorization baseline,
//! closed-form ridge regression (normal equations via Cholesky), and the
//! "neural machine" MLP's forward/backward passes.
//!
//! * [`Matrix`] — row-major `f64` matrix with the usual arithmetic, matmul
//!   (plus transposed variants for backprop), and elementwise maps.
//! * [`solve`] — Cholesky factorization and SPD linear solves.
//! * [`vector`] — slice helpers: dot products, norms, softmax, argmax.
//!
//! # Example
//!
//! ```rust
//! use linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

mod matrix;
pub mod solve;
pub mod vector;

pub use matrix::Matrix;
