//! Symmetric positive-definite linear solves via Cholesky factorization.
//!
//! Used for the closed-form ridge-regression fit of the paper's linear
//! models (WLLR / SSFLR): `w = (XᵀX + λI)⁻¹ Xᵀ y`, where `XᵀX + λI` is SPD
//! for any `λ > 0`.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// Error returned when a matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// The pivot index where factorization broke down.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
///
/// # Errors
///
/// Returns [`NotPositiveDefinite`] if a pivot is non-positive.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn cholesky(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    assert_eq!(a.rows(), a.cols(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for SPD `A` via Cholesky.
///
/// # Errors
///
/// Returns [`NotPositiveDefinite`] if `A` is not positive definite.
///
/// # Panics
///
/// Panics if `a` is not square or `b.len() != a.rows()`.
pub fn solve_spd(
    a: &Matrix,
    b: &[f64],
) -> Result<Vec<f64>, NotPositiveDefinite> {
    assert_eq!(b.len(), a.rows(), "rhs length must match matrix size");
    let l = cholesky(a)?;
    let n = b.len();
    // Forward substitution: L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Back substitution: Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

/// Closed-form ridge regression: returns `w` minimizing
/// `‖X w − y‖² + λ‖w‖²`, i.e. `w = (XᵀX + λI)⁻¹ Xᵀ y`.
///
/// # Errors
///
/// Returns [`NotPositiveDefinite`] only if `λ <= 0` makes the normal matrix
/// singular; any `λ > 0` guarantees success.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()`.
pub fn ridge(
    x: &Matrix,
    y: &[f64],
    lambda: f64,
) -> Result<Vec<f64>, NotPositiveDefinite> {
    assert_eq!(y.len(), x.rows(), "target length must match sample count");
    let mut gram = x.t_matmul(x);
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let yv = Matrix::from_vec(y.len(), 1, y.to_vec());
    let xty = x.t_matmul(&yv);
    solve_spd(&gram, xty.as_slice())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(cholesky(&a), Err(NotPositiveDefinite { pivot: 1 }));
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-12);
    }

    #[test]
    fn ridge_recovers_exact_linear_relation() {
        // y = 2*x0 - x1, plenty of samples, tiny lambda.
        let x = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[0.0, 1.0],
            &[1.0, 1.0],
            &[2.0, 1.0],
            &[1.0, 3.0],
        ]);
        let y: Vec<f64> = (0..5).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)]).collect();
        let w = ridge(&x, &y, 1e-9).unwrap();
        assert_close(&w, &[2.0, -1.0], 1e-6);
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let y = [1.0, 1.0];
        let w_small = ridge(&x, &y, 1e-9).unwrap()[0];
        let w_big = ridge(&x, &y, 100.0).unwrap()[0];
        assert!(w_big.abs() < w_small.abs());
    }

    #[test]
    fn solve_larger_random_spd() {
        // Build SPD as MᵀM + I with deterministic pseudo-random M.
        let n = 12;
        let m = Matrix::from_fn(n, n, |i, j| {
            (((i * 31 + j * 17 + 7) % 13) as f64 - 6.0) / 6.0
        });
        let mut a = m.t_matmul(&m);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 5.0).collect();
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert_close(&x, &x_true, 1e-9);
    }
}
