//! The baseline link-prediction methods the paper compares SSF against
//! (Table I and §VI-C1).
//!
//! * [`local`] — the local similarity indices CN, Jaccard, PA, AA, RA and
//!   the weighted rWRA, as plain scoring functions over a
//!   [`dyngraph::StaticGraph`].
//! * [`katz`] — the truncated Katz index `Σ β^l (A^l)_{xy}` via repeated
//!   sparse mat-vec with per-source caching.
//! * [`rw`] — Liu & Lü's local random walk similarity
//!   `s_xy = q_x π_{xy}(t) + q_y π_{yx}(t)`.
//! * [`wlf`] — Zhang & Chen's Weisfeiler–Lehman link feature (WLNM,
//!   KDD'17): the K-node enclosing subgraph ordered by Palette-WL and
//!   unfolded as a 0/1 adjacency vector. This is the feature behind the
//!   WLLR / WLNM baselines.
//! * [`nmf`] — non-negative matrix factorization of the adjacency matrix
//!   with multiplicative updates (sparse-aware), scoring pairs by the
//!   reconstructed entry.
//!
//! Two additional related-work baselines beyond Table III round out the
//! comparison families:
//!
//! * [`lp`] — the Local Path index `A² + εA³` (the paper's reference \[8\]).
//! * [`tmf`] — temporal matrix factorization over the decay-weighted
//!   adjacency (after the paper's reference \[28\], the source of its
//!   influence-decay function).

pub mod katz;
pub mod local;
pub mod lp;
pub mod nmf;
pub mod rw;
pub mod tmf;
pub mod wlf;

pub use katz::KatzIndex;
pub use lp::LocalPathIndex;
pub use nmf::{Nmf, NmfConfig};
pub use rw::LocalRandomWalk;
pub use tmf::TemporalNmf;
pub use wlf::{WlfConfig, WlfExtractor};
