//! The Weisfeiler–Lehman link feature (Zhang & Chen, KDD'17; "WLF" in the
//! paper's Table I).
//!
//! WLF is the feature behind the WLLR and WLNM baselines: the enclosing
//! subgraph of the `K` nodes nearest the target link — *plain* nodes, no
//! structure-node merging — ordered by Palette-WL and unfolded as the 0/1
//! upper triangle of its adjacency matrix (minus the target entry). The
//! difference to SSF is exactly the paper's central claim: without merging
//! identical-neighborhood nodes, a `K`-node window captures far less of the
//! surrounding topology.

use std::collections::HashMap;

use dyngraph::{traversal, NodeId, StaticGraph};
use ssf_core::palette::palette_wl;

/// Configuration of the WLF extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WlfConfig {
    /// Number of enclosing-subgraph nodes `K` (the paper uses 10).
    pub k: usize,
    /// Cap on the hop radius growth.
    pub max_h: u32,
}

impl WlfConfig {
    /// Configuration with `K = k` and the default radius cap.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "k must be at least 3 for a non-empty feature");
        WlfConfig { k, max_h: 10 }
    }

    /// Feature dimension `K(K−1)/2 − 1`, identical to SSF's.
    pub fn feature_dim(&self) -> usize {
        self.k * (self.k - 1) / 2 - 1
    }
}

/// Extracts WLF vectors from a static graph.
///
/// # Example
///
/// ```rust
/// use baselines::{WlfConfig, WlfExtractor};
/// use dyngraph::StaticGraph;
///
/// let g = StaticGraph::from_edges([(0, 2), (1, 2), (2, 3)]);
/// let ex = WlfExtractor::new(WlfConfig::new(4));
/// let f = ex.extract(&g, 0, 1);
/// assert_eq!(f.len(), WlfConfig::new(4).feature_dim());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WlfExtractor {
    config: WlfConfig,
}

impl WlfExtractor {
    /// Creates an extractor.
    pub fn new(config: WlfConfig) -> Self {
        WlfExtractor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &WlfConfig {
        &self.config
    }

    /// Extracts the WLF vector of target link `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is outside `g`.
    pub fn extract(&self, g: &StaticGraph, a: NodeId, b: NodeId) -> Vec<f64> {
        assert_ne!(a, b, "target link endpoints must differ");
        let k = self.config.k;

        // Grow the radius until at least K nodes are enclosed.
        let mut h = 1;
        let mut reached = traversal::bfs_bounded(g, &[a, b], h);
        while reached.len() < k && h < self.config.max_h {
            h += 1;
            let grown = traversal::bfs_bounded(g, &[a, b], h);
            if grown.len() == reached.len() {
                break;
            }
            reached = grown;
        }

        // Induced adjacency over local ids, target edge excluded.
        let mut local_of: HashMap<NodeId, usize> = HashMap::new();
        for (i, &(node, _)) in reached.iter().enumerate() {
            local_of.insert(node, i);
        }
        let n = reached.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &(node, _)) in reached.iter().enumerate() {
            for &v in g.neighbors(node) {
                if (node == a && v == b) || (node == b && v == a) {
                    continue;
                }
                if let Some(&j) = local_of.get(&v) {
                    adj[i].push(j);
                }
            }
        }
        // Distance init refined as in `ssf_core`: common neighbors of the
        // endpoints precede the rest of their distance class, so they stay
        // inside the K-window on dense graphs.
        let dist: Vec<u32> = reached
            .iter()
            .enumerate()
            .map(|(i, &(_, d))| {
                let both = adj[i].contains(&0) && adj[i].contains(&1);
                2 * d + u32::from(d >= 1 && !both)
            })
            .collect();
        let tiebreak: Vec<u64> =
            reached.iter().map(|&(node, _)| node as u64).collect();
        let order = palette_wl(&adj, &dist, (0, 1), &tiebreak);

        // slot[m] = local node with order m+1 (None → zero padding).
        let mut slot: Vec<Option<usize>> = vec![None; k];
        for (i, &ord) in order.iter().enumerate() {
            if ord <= k {
                slot[ord - 1] = Some(i);
            }
        }
        let connected = |m: usize, n2: usize| -> bool {
            match (slot[m], slot[n2]) {
                (Some(i), Some(j)) => adj[i].contains(&j),
                _ => false,
            }
        };
        let mut values = Vec::with_capacity(self.config.feature_dim());
        for n2 in 2..k {
            for m in 0..n2 {
                values.push(if connected(m, n2) { 1.0 } else { 0.0 });
            }
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fan_graph() -> StaticGraph {
        // target (0,1); 2 common neighbor; pendants 3,4,5 on 0.
        StaticGraph::from_edges([(0, 2), (1, 2), (0, 3), (0, 4), (0, 5)])
    }

    #[test]
    fn dimension_matches_config() {
        for k in [3, 5, 10] {
            let cfg = WlfConfig::new(k);
            let f = WlfExtractor::new(cfg).extract(&fan_graph(), 0, 1);
            assert_eq!(f.len(), cfg.feature_dim());
        }
    }

    #[test]
    fn entries_are_binary() {
        let f =
            WlfExtractor::new(WlfConfig::new(6)).extract(&fan_graph(), 0, 1);
        assert!(f.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(f.contains(&1.0));
    }

    #[test]
    fn target_edge_excluded() {
        let with_edge =
            StaticGraph::from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]);
        let without = StaticGraph::from_edges([(0, 2), (1, 2), (2, 3)]);
        let ex = WlfExtractor::new(WlfConfig::new(4));
        assert_eq!(ex.extract(&with_edge, 0, 1), ex.extract(&without, 0, 1));
    }

    #[test]
    fn small_component_zero_padded() {
        let g = StaticGraph::from_edges([(0, 1), (0, 2)]);
        let f = WlfExtractor::new(WlfConfig::new(8)).extract(&g, 0, 1);
        assert_eq!(f.len(), WlfConfig::new(8).feature_dim());
        // Far slots are padding → zero columns at the tail.
        assert_eq!(f[f.len() - 1], 0.0);
    }

    #[test]
    fn wlf_cannot_see_beyond_k_nodes() {
        // SSF's motivating example: with K = 3 the fan pendants fall outside
        // the window, so graphs differing only in pendant count look alike.
        let few = StaticGraph::from_edges([(0, 2), (1, 2), (0, 3)]);
        let many =
            StaticGraph::from_edges([(0, 2), (1, 2), (0, 3), (0, 4), (0, 5)]);
        let ex = WlfExtractor::new(WlfConfig::new(3));
        assert_eq!(ex.extract(&few, 0, 1), ex.extract(&many, 0, 1));
    }

    #[test]
    fn deterministic() {
        let g = fan_graph();
        let ex = WlfExtractor::new(WlfConfig::new(6));
        assert_eq!(ex.extract(&g, 0, 1), ex.extract(&g, 0, 1));
    }
}
