//! Temporal matrix factorization baseline (after Yu et al., IJCAI'17 —
//! the paper's reference \[28\] and the source of its influence-decay
//! function, Eq. 2).
//!
//! The dynamic network is collapsed into a *decay-weighted* adjacency
//! `Â_xy = Σ_{links (x,y,l)} exp(−θ·(l_t − l))` — recent interactions
//! weigh more — which is then factorized with the same multiplicative
//! updates as the static [`crate::nmf`] baseline. Scores are reconstructed
//! entries. This gives the matrix-factorization family a temporal member
//! to compare against SSF's temporal feature.

use dyngraph::{DynamicNetwork, NodeId, Timestamp};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::nmf::NmfConfig;

/// A fitted temporal factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalNmf {
    w: Matrix, // n × r
    h: Matrix, // r × n
}

impl TemporalNmf {
    /// Factorizes the decay-weighted adjacency of `g` as seen from time
    /// `l_t` with damping `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `config.rank == 0`, `g` has no nodes, or `theta <= 0`.
    pub fn factorize(
        g: &DynamicNetwork,
        l_t: Timestamp,
        theta: f64,
        config: NmfConfig,
    ) -> Self {
        assert!(config.rank > 0, "rank must be positive");
        assert!(g.node_count() > 0, "graph must have nodes");
        assert!(theta > 0.0, "theta must be positive");
        let n = g.node_count();
        // Decay-weighted adjacency, symmetric, as sparse lists.
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for link in g.links() {
            let age = l_t.saturating_sub(link.t) as f64;
            let w = (-theta * age).exp();
            if w > 0.0 {
                merge_weight(&mut adj[link.u as usize], link.v as usize, w);
                merge_weight(&mut adj[link.v as usize], link.u as usize, w);
            }
        }

        let r = config.rank;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = Matrix::from_fn(n, r, |_, _| rng.gen_range(0.01..1.0));
        let mut h = Matrix::from_fn(r, n, |_, _| rng.gen_range(0.01..1.0));
        const EPS: f64 = 1e-12;
        for _ in 0..config.iterations {
            // H ← H ∘ (Wᵀ V) ⊘ (Wᵀ W H)
            let wtv = left_product(&w, &adj);
            let wtw = w.t_matmul(&w);
            let wtwh = wtw.matmul(&h);
            for i in 0..r {
                for j in 0..n {
                    h[(i, j)] = (h[(i, j)] * wtv[(i, j)]
                        / (wtwh[(i, j)] + EPS))
                        .max(0.0);
                }
            }
            // W ← W ∘ (V Hᵀ) ⊘ (W H Hᵀ)
            let vht = right_product(&adj, &h);
            let hht = h.matmul_t(&h);
            let whht = w.matmul(&hht);
            for i in 0..n {
                for j in 0..r {
                    w[(i, j)] = (w[(i, j)] * vht[(i, j)]
                        / (whht[(i, j)] + EPS))
                        .max(0.0);
                }
            }
        }
        TemporalNmf { w, h }
    }

    /// Reconstructed decay-weighted adjacency entry — the link score.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score(&self, x: NodeId, y: NodeId) -> f64 {
        let (x, y) = (x as usize, y as usize);
        (0..self.h.rows())
            .map(|k| self.w[(x, k)] * self.h[(k, y)])
            .sum()
    }
}

fn merge_weight(row: &mut Vec<(usize, f64)>, v: usize, w: f64) {
    match row.iter_mut().find(|(u, _)| *u == v) {
        Some((_, acc)) => *acc += w,
        None => row.push((v, w)),
    }
}

/// `Wᵀ V` for sparse symmetric weighted `V`: result `r × n`.
fn left_product(w: &Matrix, adj: &[Vec<(usize, f64)>]) -> Matrix {
    let (n, r) = (w.rows(), w.cols());
    let mut out = Matrix::zeros(r, n);
    for (u, row) in adj.iter().enumerate() {
        for &(v, weight) in row {
            for k in 0..r {
                out[(k, v)] += weight * w[(u, k)];
            }
        }
    }
    out
}

/// `V Hᵀ` for sparse symmetric weighted `V`: result `n × r`.
fn right_product(adj: &[Vec<(usize, f64)>], h: &Matrix) -> Matrix {
    let (r, n) = (h.rows(), h.cols());
    let mut out = Matrix::zeros(n, r);
    for (u, row) in adj.iter().enumerate() {
        for &(v, weight) in row {
            for k in 0..r {
                out[(u, k)] += weight * h[(k, v)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_eras() -> DynamicNetwork {
        // Era 1 (old): clique {0,1,2}. Era 2 (recent): clique {3,4,5}.
        // Bridge 2-3 in the middle.
        [
            (0, 1, 1),
            (1, 2, 1),
            (0, 2, 1),
            (2, 3, 5),
            (3, 4, 10),
            (4, 5, 10),
            (3, 5, 10),
        ]
        .into_iter()
        .collect()
    }

    fn fit(g: &DynamicNetwork) -> TemporalNmf {
        TemporalNmf::factorize(
            g,
            11,
            0.3,
            NmfConfig {
                rank: 4,
                iterations: 250,
                seed: 3,
            },
        )
    }

    #[test]
    fn recent_structure_scores_higher_than_stale() {
        let g = two_eras();
        let m = fit(&g);
        // Both are real edges, but 3-4 is recent while 0-1 is ancient.
        assert!(m.score(3, 4) > m.score(0, 1));
    }

    #[test]
    fn within_recent_clique_beats_cross_era() {
        let g = two_eras();
        let m = fit(&g);
        assert!(m.score(4, 5) > m.score(0, 5));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_eras();
        assert_eq!(fit(&g), fit(&g));
    }

    #[test]
    fn scores_nonnegative() {
        let g = two_eras();
        let m = fit(&g);
        for u in 0..6 {
            for v in 0..6 {
                assert!(m.score(u, v) >= 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_validated() {
        let g = two_eras();
        let _ = TemporalNmf::factorize(&g, 11, 0.0, NmfConfig::default());
    }
}
