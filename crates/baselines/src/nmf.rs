//! Non-negative matrix factorization link prediction (Lin 2007; "NMF" in
//! §VI-C1).
//!
//! The static adjacency matrix `V` (n×n, multi-link counts as weights) is
//! factorized as `V ≈ W H` with `W ≥ 0` (n×r) and `H ≥ 0` (r×n) using Lee &
//! Seung multiplicative updates. The predicted adjacency is `Ŵ = W H`; the
//! score of a candidate pair is the reconstructed entry `Ŵ_xy`. All products
//! against `V` exploit its sparsity, so an update round costs
//! `O(nnz·r + n·r²)`.

use dyngraph::{NodeId, StaticGraph};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NMF hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NmfConfig {
    /// Latent rank `r`.
    pub rank: usize,
    /// Multiplicative-update rounds.
    pub iterations: u32,
    /// RNG seed for the initial factors (NMF is non-convex; the seed makes
    /// runs reproducible).
    pub seed: u64,
}

impl Default for NmfConfig {
    fn default() -> Self {
        NmfConfig {
            rank: 16,
            iterations: 100,
            seed: 7,
        }
    }
}

/// A fitted factorization.
#[derive(Debug, Clone, PartialEq)]
pub struct Nmf {
    w: Matrix, // n × r
    h: Matrix, // r × n
}

impl Nmf {
    /// Factorizes the static adjacency of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `config.rank == 0` or `g` has no nodes.
    pub fn factorize(g: &StaticGraph, config: NmfConfig) -> Self {
        let n = g.node_count();
        assert!(config.rank > 0, "rank must be positive");
        assert!(n > 0, "graph must have nodes");
        let r = config.rank;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut w = Matrix::from_fn(n, r, |_, _| rng.gen_range(0.01..1.0));
        let mut h = Matrix::from_fn(r, n, |_, _| rng.gen_range(0.01..1.0));
        const EPS: f64 = 1e-12;

        for _ in 0..config.iterations {
            // H ← H ∘ (Wᵀ V) ⊘ (Wᵀ W H)
            let wtv = sparse_left_product(&w, g); // r × n
            let wtw = w.t_matmul(&w); // r × r
            let wtwh = wtw.matmul(&h); // r × n
            for i in 0..r {
                for j in 0..n {
                    let v = h[(i, j)] * wtv[(i, j)] / (wtwh[(i, j)] + EPS);
                    h[(i, j)] = v.max(0.0);
                }
            }
            // W ← W ∘ (V Hᵀ) ⊘ (W H Hᵀ)
            let vht = sparse_right_product(g, &h); // n × r
            let hht = h.matmul_t(&h); // r × r
            let whht = w.matmul(&hht); // n × r
            for i in 0..n {
                for j in 0..r {
                    let v = w[(i, j)] * vht[(i, j)] / (whht[(i, j)] + EPS);
                    w[(i, j)] = v.max(0.0);
                }
            }
        }
        Nmf { w, h }
    }

    /// Reconstructed adjacency entry `(W H)_{xy}` — the link score.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score(&self, x: NodeId, y: NodeId) -> f64 {
        let (x, y) = (x as usize, y as usize);
        (0..self.h.rows())
            .map(|k| self.w[(x, k)] * self.h[(k, y)])
            .sum()
    }

    /// Squared Frobenius reconstruction error `‖V − W H‖²` against the
    /// graph's adjacency (diagnostic; `O(n²r)`, use on small graphs).
    pub fn reconstruction_error(&self, g: &StaticGraph) -> f64 {
        let n = g.node_count();
        let mut err = 0.0;
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                let target = g.weight(u, v) as f64;
                let d = target - self.score(u, v);
                err += d * d;
            }
        }
        err
    }
}

/// `Wᵀ V` with sparse symmetric `V` from the graph: result is `r × n`.
fn sparse_left_product(w: &Matrix, g: &StaticGraph) -> Matrix {
    let (n, r) = (w.rows(), w.cols());
    let mut out = Matrix::zeros(r, n);
    for u in 0..n {
        for &v in g.neighbors(u as NodeId) {
            let weight = g.weight(u as NodeId, v) as f64;
            // out[:, v] += weight * w[u, :]
            for k in 0..r {
                out[(k, v as usize)] += weight * w[(u, k)];
            }
        }
    }
    out
}

/// `V Hᵀ` with sparse symmetric `V`: result is `n × r`.
fn sparse_right_product(g: &StaticGraph, h: &Matrix) -> Matrix {
    let (r, n) = (h.rows(), h.cols());
    let mut out = Matrix::zeros(n, r);
    for u in 0..n {
        for &v in g.neighbors(u as NodeId) {
            let weight = g.weight(u as NodeId, v) as f64;
            for k in 0..r {
                out[(u, k)] += weight * h[(k, v as usize)];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cliques() -> StaticGraph {
        // Clique {0,1,2} and clique {3,4,5}, joined weakly by 2-3.
        StaticGraph::from_edges([
            (0, 1),
            (1, 2),
            (0, 2),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 3),
        ])
    }

    fn fit(g: &StaticGraph) -> Nmf {
        Nmf::factorize(
            g,
            NmfConfig {
                rank: 4,
                iterations: 300,
                seed: 42,
            },
        )
    }

    #[test]
    fn factors_stay_nonnegative() {
        let g = two_cliques();
        let m = fit(&g);
        assert!(m.w.as_slice().iter().all(|&x| x >= 0.0));
        assert!(m.h.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn updates_reduce_reconstruction_error() {
        let g = two_cliques();
        let early = Nmf::factorize(
            &g,
            NmfConfig {
                rank: 4,
                iterations: 2,
                seed: 42,
            },
        );
        let late = fit(&g);
        assert!(late.reconstruction_error(&g) < early.reconstruction_error(&g));
    }

    #[test]
    fn within_clique_pairs_score_above_cross_clique() {
        let g = two_cliques();
        let m = fit(&g);
        // 0-1 is a real edge, 0-5 crosses the cliques.
        assert!(m.score(0, 1) > m.score(0, 5));
        // missing within-clique-ish pair 1-... all within-pairs exist;
        // compare reconstructed intensity instead:
        assert!(m.score(3, 4) > m.score(1, 4));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = two_cliques();
        assert_eq!(fit(&g), fit(&g));
    }

    #[test]
    fn sparse_products_match_dense() {
        let g = two_cliques();
        let n = g.node_count();
        let dense_v = Matrix::from_fn(n, n, |i, j| {
            g.weight(i as NodeId, j as NodeId) as f64
        });
        let w = Matrix::from_fn(n, 3, |i, j| ((i + 2 * j) % 5) as f64 * 0.3);
        let h = Matrix::from_fn(3, n, |i, j| ((2 * i + j) % 4) as f64 * 0.7);
        let lhs = sparse_left_product(&w, &g);
        let rhs = w.t_matmul(&dense_v);
        for (a, b) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
        let lhs2 = sparse_right_product(&g, &h);
        let rhs2 = dense_v.matmul(&h.transpose());
        for (a, b) in lhs2.as_slice().iter().zip(rhs2.as_slice()) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
