//! Truncated Katz index (Katz 1953; Table I): `Σ_{l≥1} β^l (A^l)_{xy}`.
//!
//! Computed by repeated sparse matrix–vector products from each queried
//! source node, truncated at `max_len` (the series converges geometrically
//! for `β < 1/λ_max`, and paths beyond a few hops contribute negligibly at
//! the paper's `β = 0.001`). Per-source score vectors are cached so that
//! evaluating many pairs sharing a source costs one propagation.

use std::collections::HashMap;

use dyngraph::{NodeId, StaticGraph};

/// Katz similarity index over a static graph.
#[derive(Debug, Clone)]
pub struct KatzIndex<'g> {
    g: &'g StaticGraph,
    beta: f64,
    max_len: u32,
    cache: HashMap<NodeId, Vec<f64>>,
}

impl<'g> KatzIndex<'g> {
    /// Creates the index with damping `beta` and path-length cutoff
    /// `max_len` (the paper's experiments use `β = 0.001`; 5 hops is ample
    /// at that damping).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < beta < 1` and `max_len >= 1`.
    pub fn new(g: &'g StaticGraph, beta: f64, max_len: u32) -> Self {
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
        assert!(max_len >= 1, "max_len must be at least 1");
        KatzIndex {
            g,
            beta,
            max_len,
            cache: HashMap::new(),
        }
    }

    /// Katz score of the pair `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score(&mut self, x: NodeId, y: NodeId) -> f64 {
        // Propagate from the lower-degree endpoint: same result by symmetry.
        let (src, dst) = if self.g.degree(x) <= self.g.degree(y) {
            (x, y)
        } else {
            (y, x)
        };
        if !self.cache.contains_key(&src) {
            let scores = self.propagate(src);
            self.cache.insert(src, scores);
        }
        self.cache[&src][dst as usize]
    }

    /// Full score vector `Σ_l β^l A^l e_src`.
    fn propagate(&self, src: NodeId) -> Vec<f64> {
        let n = self.g.node_count();
        let mut p = vec![0.0; n];
        p[src as usize] = 1.0;
        let mut acc = vec![0.0; n];
        let mut beta_l = 1.0;
        for _ in 0..self.max_len {
            let mut next = vec![0.0; n];
            for (u, pu) in p.iter().enumerate() {
                if *pu == 0.0 {
                    continue;
                }
                for &v in self.g.neighbors(u as NodeId) {
                    next[v as usize] += pu;
                }
            }
            beta_l *= self.beta;
            for (a, x) in acc.iter_mut().zip(&next) {
                *a += beta_l * x;
            }
            p = next;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> StaticGraph {
        StaticGraph::from_edges([(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn single_path_contributions() {
        let g = path4();
        let mut katz = KatzIndex::new(&g, 0.5, 4);
        // Walks 0→3: exactly one of length 3 (plus longer ones within 4:
        // none of length 4 exist 0→3 on a path? 0-1-2-1-2-3 no, length 4
        // walk 0→3: 0-1-0-1-2-3 is length 5. So only β³.
        assert!((katz.score(0, 3) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn adjacent_nodes_score_highest() {
        let g = path4();
        let mut katz = KatzIndex::new(&g, 0.1, 5);
        assert!(katz.score(0, 1) > katz.score(0, 2));
        assert!(katz.score(0, 2) > katz.score(0, 3));
    }

    #[test]
    fn symmetric() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut katz = KatzIndex::new(&g, 0.2, 6);
        let a = katz.score(0, 3);
        let b = katz.score(3, 0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn triangle_counts_multiple_walks() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 0)]);
        let mut katz = KatzIndex::new(&g, 0.5, 2);
        // 0→1: direct (β) + via 2 (β²) = 0.5 + 0.25.
        assert!((katz.score(0, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn disconnected_pair_scores_zero() {
        let g = StaticGraph::from_edges([(0, 1), (2, 3)]);
        let mut katz = KatzIndex::new(&g, 0.5, 8);
        assert_eq!(katz.score(0, 3), 0.0);
    }

    #[test]
    fn cache_reuse_consistent() {
        let g = path4();
        let mut katz = KatzIndex::new(&g, 0.3, 5);
        let first = katz.score(1, 3);
        let second = katz.score(1, 3);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_validated() {
        let g = path4();
        let _ = KatzIndex::new(&g, 1.5, 3);
    }
}
