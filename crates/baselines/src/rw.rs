//! Local Random Walk similarity (Liu & Lü, EPL 2010; "RW" in Table I).
//!
//! A walker starts at `x` and moves by the row-normalized transition matrix
//! `M` (`p_x^t = Mᵀ p_x^{t−1}`). After `t` steps the similarity is
//!
//! ```text
//! s_xy = q_x · π_xy(t) + q_y · π_yx(t),   q_x = k_x / 2|E|
//! ```
//!
//! where `π_xy(t)` is the probability the walker from `x` sits on `y` at
//! step `t`. The exact-`t` variant suffers a parity artifact on (locally)
//! bipartite structure — nodes an even distance apart score 0 for odd `t` —
//! so Liu & Lü also define the *superposed* random walk, which replaces
//! `π(t)` with `Σ_{τ=1..t} π(τ)`. [`LocalRandomWalk::score`] uses the
//! superposed form (the experiments' default); the exact form is available
//! as [`LocalRandomWalk::score_at_exact_step`].

use std::collections::HashMap;

use dyngraph::{NodeId, StaticGraph};

/// Per-source walk distributions: probability at exactly step `t` and
/// summed over steps `1..=t`.
#[derive(Debug, Clone)]
struct WalkDist {
    exact: Vec<f64>,
    superposed: Vec<f64>,
}

/// Local random walk scorer with per-source probability caching.
#[derive(Debug, Clone)]
pub struct LocalRandomWalk<'g> {
    g: &'g StaticGraph,
    steps: u32,
    cache: HashMap<NodeId, WalkDist>,
}

impl<'g> LocalRandomWalk<'g> {
    /// Creates the scorer with a walk length of `steps` (3 is the customary
    /// local-walk horizon).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn new(g: &'g StaticGraph, steps: u32) -> Self {
        assert!(steps >= 1, "walk must take at least one step");
        LocalRandomWalk {
            g,
            steps,
            cache: HashMap::new(),
        }
    }

    /// Superposed random walk similarity of the pair `(x, y)` — the robust
    /// default.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score(&mut self, x: NodeId, y: NodeId) -> f64 {
        self.score_with(x, y, |d| &d.superposed)
    }

    /// Exact-step LRW similarity (walker position at exactly step `t`).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score_at_exact_step(&mut self, x: NodeId, y: NodeId) -> f64 {
        self.score_with(x, y, |d| &d.exact)
    }

    fn score_with(
        &mut self,
        x: NodeId,
        y: NodeId,
        pick: impl Fn(&WalkDist) -> &Vec<f64>,
    ) -> f64 {
        let two_e = (2 * self.g.edge_count()) as f64;
        if two_e == 0.0 {
            return 0.0;
        }
        let qx = self.g.degree(x) as f64 / two_e;
        let qy = self.g.degree(y) as f64 / two_e;
        self.ensure(x);
        self.ensure(y);
        let pxy = pick(&self.cache[&x])[y as usize];
        let pyx = pick(&self.cache[&y])[x as usize];
        qx * pxy + qy * pyx
    }

    fn ensure(&mut self, src: NodeId) {
        if !self.cache.contains_key(&src) {
            let dist = self.propagate(src);
            self.cache.insert(src, dist);
        }
    }

    fn propagate(&self, src: NodeId) -> WalkDist {
        let n = self.g.node_count();
        let mut p = vec![0.0; n];
        p[src as usize] = 1.0;
        let mut superposed = vec![0.0; n];
        for _ in 0..self.steps {
            let mut next = vec![0.0; n];
            for (u, pu) in p.iter().enumerate() {
                if *pu == 0.0 {
                    continue;
                }
                let nbrs = self.g.neighbors(u as NodeId);
                if nbrs.is_empty() {
                    next[u] += pu; // dangling node keeps its mass
                    continue;
                }
                let share = pu / nbrs.len() as f64;
                for &v in nbrs {
                    next[v as usize] += share;
                }
            }
            for (s, x) in superposed.iter_mut().zip(&next) {
                *s += x;
            }
            p = next;
        }
        WalkDist {
            exact: p,
            superposed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_mass_conserved() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let rw = LocalRandomWalk::new(&g, 3);
        let d = rw.propagate(0);
        assert!((d.exact.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d.superposed.iter().sum::<f64>() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_step_is_uniform_over_neighbors() {
        let g = StaticGraph::from_edges([(0, 1), (0, 2), (0, 3)]);
        let rw = LocalRandomWalk::new(&g, 1);
        let d = rw.propagate(0);
        assert!((d.exact[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.exact[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.exact[0], 0.0);
    }

    #[test]
    fn symmetric_score() {
        let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut rw = LocalRandomWalk::new(&g, 3);
        assert!((rw.score(0, 2) - rw.score(2, 0)).abs() < 1e-12);
        assert!(
            (rw.score_at_exact_step(0, 2) - rw.score_at_exact_step(2, 0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn close_pairs_beat_far_pairs() {
        let g = StaticGraph::from_edges([
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (4, 5),
            (5, 6),
            (0, 4),
        ]);
        let mut rw = LocalRandomWalk::new(&g, 3);
        // 0 and 1 share two common neighbors; 0 and 6 are three hops away.
        assert!(rw.score(0, 1) > rw.score(0, 6));
    }

    #[test]
    fn superposed_fixes_parity_blindness() {
        // 0 and 1 are both adjacent to {2, 3} only: even distance, so odd-t
        // exact walks assign them probability 0.
        let g = StaticGraph::from_edges([(0, 2), (1, 2), (0, 3), (1, 3)]);
        let mut rw = LocalRandomWalk::new(&g, 3);
        assert_eq!(rw.score_at_exact_step(0, 1), 0.0);
        assert!(rw.score(0, 1) > 0.0);
    }

    #[test]
    fn dangling_nodes_hold_mass() {
        let mut d: dyngraph::DynamicNetwork = [(0, 1, 1)].into_iter().collect();
        d.ensure_node(2); // isolated
        let g = d.to_static();
        let dist = LocalRandomWalk::new(&g, 2).propagate(2);
        assert_eq!(dist.exact[2], 1.0);
    }

    #[test]
    fn empty_graph_scores_zero() {
        let mut d = dyngraph::DynamicNetwork::new();
        d.ensure_node(1);
        let g = d.to_static();
        let mut rw = LocalRandomWalk::new(&g, 3);
        assert_eq!(rw.score(0, 1), 0.0);
    }
}
