//! Local similarity indices (Table I of the paper).
//!
//! Each function scores the closeness of a node pair from the surrounding
//! static topology; an unsupervised ranking model classifies the pairs with
//! the highest scores as future links.

use dyngraph::{NodeId, StaticGraph};

/// Common Neighbors (Liben-Nowell & Kleinberg): `|Γ_x ∩ Γ_y|`.
pub fn common_neighbors(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    g.common_neighbors(x, y).len() as f64
}

/// Jaccard index: `|Γ_x ∩ Γ_y| / |Γ_x ∪ Γ_y|` (0 when both are isolated).
pub fn jaccard(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    let inter = g.common_neighbors(x, y).len();
    let union = g.degree(x) + g.degree(y) - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Preferential Attachment (Barabási & Albert): `|Γ_x| · |Γ_y|`.
pub fn preferential_attachment(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    (g.degree(x) * g.degree(y)) as f64
}

/// Adamic–Adar: `Σ_{z ∈ Γ_x ∩ Γ_y} 1/log|Γ_z|`.
///
/// Degree-1 common neighbors (where `log` would be 0) are skipped, the
/// conventional guard.
pub fn adamic_adar(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    g.common_neighbors(x, y)
        .into_iter()
        .filter(|&z| g.degree(z) > 1)
        .map(|z| 1.0 / (g.degree(z) as f64).ln())
        .sum()
}

/// Resource Allocation (Zhou, Lü & Zhang): `Σ_{z ∈ Γ_x ∩ Γ_y} 1/|Γ_z|`.
pub fn resource_allocation(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    g.common_neighbors(x, y)
        .into_iter()
        .map(|z| 1.0 / g.degree(z) as f64)
        .sum()
}

/// Reliable-route Weighted Resource Allocation (Zhao et al.):
/// `Σ_{z ∈ Γ_x ∩ Γ_y} (W_xz · W_yz) / S_z`, with multi-link counts as
/// weights and `S_z` the strength of `z` (§VI-C2 sets "the weights of links
/// for rWRA … as the number of history links between two nodes").
pub fn rwra(g: &StaticGraph, x: NodeId, y: NodeId) -> f64 {
    g.common_neighbors(x, y)
        .into_iter()
        .map(|z| {
            let s = g.strength(z);
            if s == 0 {
                0.0
            } else {
                (g.weight(x, z) as f64 * g.weight(y, z) as f64) / s as f64
            }
        })
        .sum()
}

/// A named local-similarity scoring function.
pub type NamedIndex = (&'static str, fn(&StaticGraph, NodeId, NodeId) -> f64);

/// The six local indices as named function pointers, for harnesses that
/// iterate over all of them (Table III rows CN … rWRA).
pub const ALL: [NamedIndex; 6] = [
    ("CN", common_neighbors),
    ("Jac.", jaccard),
    ("PA", preferential_attachment),
    ("AA", adamic_adar),
    ("RA", resource_allocation),
    ("rWRA", rwra),
];

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::DynamicNetwork;

    /// 0 and 1 share neighbors {2, 3}; 2 also touches 4; the 0-2 edge is
    /// doubled (weight 2).
    fn sample() -> StaticGraph {
        let g: DynamicNetwork = [
            (0, 2, 1),
            (0, 2, 2),
            (1, 2, 3),
            (0, 3, 4),
            (1, 3, 5),
            (2, 4, 6),
        ]
        .into_iter()
        .collect();
        g.to_static()
    }

    #[test]
    fn cn_counts_shared() {
        let g = sample();
        assert_eq!(common_neighbors(&g, 0, 1), 2.0);
        assert_eq!(common_neighbors(&g, 0, 4), 1.0);
        assert_eq!(common_neighbors(&g, 3, 4), 0.0);
    }

    #[test]
    fn jaccard_normalizes() {
        let g = sample();
        // Γ0 = {2,3}, Γ1 = {2,3} → 2/2.
        assert_eq!(jaccard(&g, 0, 1), 1.0);
        // Γ0 = {2,3}, Γ4 = {2} → 1/2.
        assert_eq!(jaccard(&g, 0, 4), 0.5);
    }

    #[test]
    fn jaccard_isolated_is_zero() {
        let mut d: DynamicNetwork = [(0, 1, 1)].into_iter().collect();
        d.ensure_node(3);
        let g = d.to_static();
        assert_eq!(jaccard(&g, 2, 3), 0.0);
    }

    #[test]
    fn pa_multiplies_degrees() {
        let g = sample();
        assert_eq!(preferential_attachment(&g, 0, 1), 4.0);
        assert_eq!(preferential_attachment(&g, 2, 3), 6.0);
    }

    #[test]
    fn aa_weights_rare_neighbors_higher() {
        let g = sample();
        // common {2,3}: deg(2)=3, deg(3)=2.
        let expect = 1.0 / 3.0f64.ln() + 1.0 / 2.0f64.ln();
        assert!((adamic_adar(&g, 0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn aa_skips_degree_one_neighbors() {
        let g = StaticGraph::from_edges([(0, 2), (1, 2)]);
        // z = 2 has degree 2 → fine; pendant case:
        let g2 = StaticGraph::from_edges([(0, 2), (1, 2), (0, 3), (1, 3)]);
        assert!(adamic_adar(&g2, 0, 1).is_finite());
        assert!(adamic_adar(&g, 0, 1).is_finite());
    }

    #[test]
    fn ra_inverse_degree() {
        let g = sample();
        let expect = 1.0 / 3.0 + 1.0 / 2.0;
        assert!((resource_allocation(&g, 0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn rwra_uses_multi_link_weights() {
        let g = sample();
        // z=2: W02=2, W12=1, S2 = 2+1+1 = 4 → 2/4.
        // z=3: W03=1, W13=1, S3 = 2 → 1/2.
        let expect = 0.5 + 0.5;
        assert!((rwra(&g, 0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn rwra_reduces_to_ra_on_unit_weights() {
        let g = StaticGraph::from_edges([(0, 2), (1, 2), (2, 3)]);
        assert!((rwra(&g, 0, 1) - resource_allocation(&g, 0, 1)).abs() < 1e-12);
    }

    #[test]
    fn all_table_has_six_entries() {
        let g = sample();
        for (name, f) in ALL {
            let s = f(&g, 0, 1);
            assert!(s.is_finite(), "{name} produced a non-finite score");
        }
    }

    /// The paper's Figure 1 argument: CN/AA/RA/rWRA cannot separate the
    /// celebrity pair A-B from the fan pair X-Y, while PA and Jaccard can.
    #[test]
    fn figure1_celebrity_indistinguishability() {
        // Celebrities A=0, B=1, C=2 all high degree; A,B interact with C.
        // Fans X=3, Y=4 are both fans of C only.
        let mut edges = vec![(0, 2), (1, 2), (3, 2), (4, 2)];
        // fans of A and B to make them high-degree:
        for f in 5..10 {
            edges.push((0, f));
        }
        for f in 10..15 {
            edges.push((1, f));
        }
        // more fans of C:
        for f in 15..20 {
            edges.push((2, f));
        }
        let g = StaticGraph::from_edges(edges);
        // Indistinguishable: one common neighbor (C) each, same degree of C.
        assert_eq!(common_neighbors(&g, 0, 1), common_neighbors(&g, 3, 4));
        assert_eq!(adamic_adar(&g, 0, 1), adamic_adar(&g, 3, 4));
        assert_eq!(
            resource_allocation(&g, 0, 1),
            resource_allocation(&g, 3, 4)
        );
        assert_eq!(rwra(&g, 0, 1), rwra(&g, 3, 4));
        // Distinguishable by degree-aware features:
        assert!(
            preferential_attachment(&g, 0, 1)
                > preferential_attachment(&g, 3, 4)
        );
        assert!(jaccard(&g, 0, 1) != jaccard(&g, 3, 4));
    }
}
