//! Local Path index (Lü, Jin & Zhou, Phys. Rev. E 2009 — the paper's
//! reference \[8\]): `LP = A² + ε·A³`, a cheap middle ground between CN
//! (paths of length 2 only) and Katz (all lengths).

use std::collections::HashMap;

use dyngraph::{NodeId, StaticGraph};

/// Local Path similarity over a static graph, with per-source caching.
#[derive(Debug, Clone)]
pub struct LocalPathIndex<'g> {
    g: &'g StaticGraph,
    epsilon: f64,
    cache: HashMap<NodeId, Vec<f64>>,
}

impl<'g> LocalPathIndex<'g> {
    /// Creates the index; the customary `ε` is a small constant like 0.01
    /// so length-3 paths only break ties between equal CN counts.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(g: &'g StaticGraph, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        LocalPathIndex {
            g,
            epsilon,
            cache: HashMap::new(),
        }
    }

    /// `(A²)_{xy} + ε (A³)_{xy}`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn score(&mut self, x: NodeId, y: NodeId) -> f64 {
        let (src, dst) = if self.g.degree(x) <= self.g.degree(y) {
            (x, y)
        } else {
            (y, x)
        };
        if !self.cache.contains_key(&src) {
            let scores = self.propagate(src);
            self.cache.insert(src, scores);
        }
        self.cache[&src][dst as usize]
    }

    /// `A²e_src + ε A³e_src` via two/three sparse mat-vecs.
    fn propagate(&self, src: NodeId) -> Vec<f64> {
        let n = self.g.node_count();
        let matvec = |p: &[f64]| -> Vec<f64> {
            let mut next = vec![0.0; n];
            for (u, pu) in p.iter().enumerate() {
                if *pu == 0.0 {
                    continue;
                }
                for &v in self.g.neighbors(u as NodeId) {
                    next[v as usize] += pu;
                }
            }
            next
        };
        let mut e = vec![0.0; n];
        e[src as usize] = 1.0;
        let a1 = matvec(&e);
        let a2 = matvec(&a1);
        let a3 = matvec(&a2);
        a2.iter()
            .zip(&a3)
            .map(|(&p2, &p3)| p2 + self.epsilon * p3)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StaticGraph {
        // Square 0-1-2-3-0 plus chord 0-2.
        StaticGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn length_two_paths_counted() {
        let g = sample();
        let mut lp = LocalPathIndex::new(&g, 0.01);
        // paths 1→3 of length 2: via 0 and via 2 ⇒ (A²)₁₃ = 2.
        // length 3: 1-0-2-3, 1-2-0-3 ⇒ 2.
        assert!((lp.score(1, 3) - (2.0 + 0.02)).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let g = sample();
        let mut lp = LocalPathIndex::new(&g, 0.05);
        assert!((lp.score(0, 3) - lp.score(3, 0)).abs() < 1e-12);
    }

    #[test]
    fn reduces_to_cn_as_epsilon_vanishes() {
        let g = sample();
        let mut lp = LocalPathIndex::new(&g, 1e-9);
        let cn = crate::local::common_neighbors(&g, 1, 3);
        assert!((lp.score(1, 3) - cn).abs() < 1e-6);
    }

    #[test]
    fn three_hop_pairs_get_nonzero_score() {
        let path = StaticGraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let mut lp = LocalPathIndex::new(&path, 0.1);
        assert_eq!(crate::local::common_neighbors(&path, 0, 3), 0.0);
        assert!(lp.score(0, 3) > 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn epsilon_validated() {
        let g = sample();
        let _ = LocalPathIndex::new(&g, 1.5);
    }
}
