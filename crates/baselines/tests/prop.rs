//! Property-based tests for the baseline scorers.

use proptest::prelude::*;

use baselines::{
    local, KatzIndex, LocalPathIndex, LocalRandomWalk, WlfConfig, WlfExtractor,
};
use dyngraph::{DynamicNetwork, NodeId, StaticGraph};

fn graph() -> impl Strategy<Value = StaticGraph> {
    prop::collection::vec(
        (0..15u32, 0..15u32).prop_filter("no loops", |(u, v)| u != v),
        3..60,
    )
    .prop_map(|edges| {
        let mut g = DynamicNetwork::new();
        for i in 0..14u32 {
            g.add_link(i, i + 1, 1); // connected spine
        }
        for (u, v) in edges {
            g.add_link(u, v, 1);
        }
        g.to_static()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every local index is symmetric and non-negative.
    #[test]
    fn local_indices_symmetric_nonnegative(
        g in graph(),
        u in 0..15u32,
        v in 0..15u32,
    ) {
        prop_assume!(u != v);
        for (name, f) in local::ALL {
            let a = f(&g, u, v);
            let b = f(&g, v, u);
            prop_assert!(a >= 0.0, "{name} negative");
            prop_assert!((a - b).abs() < 1e-12, "{name} asymmetric");
        }
    }

    /// Jaccard is bounded by 1; CN bounds RA·min-degree relations hold.
    #[test]
    fn index_bounds(g in graph(), u in 0..15u32, v in 0..15u32) {
        prop_assume!(u != v);
        prop_assert!(local::jaccard(&g, u, v) <= 1.0 + 1e-12);
        let cn = local::common_neighbors(&g, u, v);
        prop_assert!(local::resource_allocation(&g, u, v) <= cn + 1e-12);
        prop_assert!(
            cn <= (g.degree(u).min(g.degree(v))) as f64 + 1e-12
        );
    }

    /// Katz grows with β (more weight on every path).
    #[test]
    fn katz_monotone_in_beta(g in graph(), u in 0..15u32, v in 0..15u32) {
        prop_assume!(u != v);
        let mut lo = KatzIndex::new(&g, 0.05, 4);
        let mut hi = KatzIndex::new(&g, 0.2, 4);
        prop_assert!(hi.score(u, v) >= lo.score(u, v) - 1e-12);
    }

    /// LP is symmetric and at least CN (it adds ε·A³ ≥ 0).
    #[test]
    fn lp_dominates_cn(g in graph(), u in 0..15u32, v in 0..15u32) {
        prop_assume!(u != v);
        let mut lp = LocalPathIndex::new(&g, 0.05);
        let s = lp.score(u, v);
        prop_assert!(s >= local::common_neighbors(&g, u, v) - 1e-12);
        prop_assert!((s - lp.score(v, u)).abs() < 1e-9);
    }

    /// The superposed random walk score is finite, non-negative and
    /// symmetric.
    #[test]
    fn rw_sane(g in graph(), u in 0..15u32, v in 0..15u32) {
        prop_assume!(u != v);
        let mut rw = LocalRandomWalk::new(&g, 3);
        let s = rw.score(u, v);
        prop_assert!(s.is_finite() && s >= 0.0);
        prop_assert!((s - rw.score(v, u)).abs() < 1e-12);
    }

    /// WLF vectors always have the configured dimension and binary entries.
    #[test]
    fn wlf_well_formed(g in graph(), k in 3..9usize) {
        let ex = WlfExtractor::new(WlfConfig::new(k));
        let f = ex.extract(&g, 0, 5);
        prop_assert_eq!(f.len(), k * (k - 1) / 2 - 1);
        prop_assert!(f.iter().all(|&x| x == 0.0 || x == 1.0));
    }
}

/// Katz over the whole graph agrees with a brute-force dense power series
/// on a fixed small graph (non-proptest exactness check).
#[test]
fn katz_matches_dense_power_series() {
    let g = StaticGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    let n = g.node_count();
    let beta = 0.1;
    let adj = |i: usize, j: usize| -> f64 {
        f64::from(g.has_edge(i as NodeId, j as NodeId))
    };
    // Dense A^l entries by naive multiplication.
    let mut power: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| adj(i, j)).collect())
        .collect();
    let mut expect = vec![vec![0.0; n]; n];
    let mut beta_l = beta;
    for _ in 0..4 {
        for i in 0..n {
            for j in 0..n {
                expect[i][j] += beta_l * power[i][j];
            }
        }
        // power ← power · A
        let mut next = vec![vec![0.0; n]; n];
        for (i, prow) in power.iter().enumerate() {
            for (k, &pik) in prow.iter().enumerate() {
                for (j, cell) in next[i].iter_mut().enumerate() {
                    *cell += pik * adj(k, j);
                }
            }
        }
        power = next;
        beta_l *= beta;
    }
    let mut katz = KatzIndex::new(&g, beta, 4);
    for i in 0..n as NodeId {
        for j in 0..n as NodeId {
            assert!(
                (katz.score(i, j) - expect[i as usize][j as usize]).abs()
                    < 1e-9,
                "({i},{j})"
            );
        }
    }
}
