//! Sliding-window backtesting — an extension beyond the paper's single
//! last-timestamp split.
//!
//! The paper evaluates once, at the network's final tick. A single split
//! has high variance on sparse ticks; backtesting slides the prediction
//! time backwards through the stream and aggregates the per-window
//! metrics, giving a mean ± standard deviation per method. This is the
//! natural "temporal cross-validation" for Definition 2's problem and is
//! what a practitioner deploying the predictor would monitor.

use dyngraph::DynamicNetwork;

use crate::runner::MethodResult;
use crate::split::{Split, SplitConfig, SplitError};

/// Configuration of a backtest sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BacktestConfig {
    /// Split settings reused at every evaluation point.
    pub split: SplitConfig,
    /// Number of evaluation points (windows), newest first.
    pub folds: u32,
    /// Tick stride between consecutive evaluation points.
    pub stride: u32,
    /// Minimum positives per fold; folds below it are skipped.
    pub min_positives: usize,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        BacktestConfig {
            split: SplitConfig::default(),
            folds: 5,
            stride: 1,
            min_positives: 20,
        }
    }
}

/// Aggregated backtest metrics for one method.
#[derive(Debug, Clone, PartialEq)]
pub struct BacktestResult {
    /// Method name.
    pub name: String,
    /// Per-fold results, newest fold first.
    pub folds: Vec<MethodResult>,
    /// Mean test AUC over the evaluated folds.
    pub mean_auc: f64,
    /// Population standard deviation of the AUC.
    pub std_auc: f64,
    /// Mean test F1.
    pub mean_f1: f64,
}

/// Builds the per-fold splits of a backtest: fold `i` truncates the stream
/// at `l_t − i·stride` and splits there.
///
/// Folds whose truncated network cannot produce `min_positives` positives
/// are skipped (sparse early history). The result is never empty on
/// success.
///
/// # Errors
///
/// Returns the last [`SplitError`] if *no* fold produces a usable split.
pub fn backtest_splits(
    g: &DynamicNetwork,
    config: &BacktestConfig,
) -> Result<Vec<Split>, SplitError> {
    let l_t = g.max_timestamp().ok_or(SplitError::EmptyNetwork)?;
    let t_min = g.min_timestamp().ok_or(SplitError::EmptyNetwork)?;
    let mut splits = Vec::new();
    let mut last_err = SplitError::NoPositives;
    for fold in 0..config.folds {
        let cut = l_t.saturating_sub(fold * config.stride);
        if cut <= t_min {
            break;
        }
        let truncated = match g.period(t_min, cut + 1) {
            Ok(t) => t,
            Err(_) => break,
        };
        match Split::with_min_positives(
            &truncated,
            &SplitConfig {
                seed: config.split.seed.wrapping_add(fold as u64),
                ..config.split
            },
            config.min_positives,
        ) {
            Ok(split) => splits.push(split),
            Err(e) => last_err = e,
        }
    }
    if splits.is_empty() {
        Err(last_err)
    } else {
        Ok(splits)
    }
}

/// Aggregates per-fold results into a [`BacktestResult`].
///
/// # Panics
///
/// Panics if `folds` is empty or the fold names disagree.
pub fn aggregate(folds: Vec<MethodResult>) -> BacktestResult {
    assert!(!folds.is_empty(), "need at least one fold");
    let name = folds[0].name.clone();
    assert!(
        folds.iter().all(|f| f.name == name),
        "folds must come from one method"
    );
    let aucs: Vec<f64> = folds.iter().map(|f| f.auc).collect();
    let f1s: Vec<f64> = folds.iter().map(|f| f.f1).collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mean_auc = mean(&aucs);
    let var = aucs.iter().map(|a| (a - mean_auc).powi(2)).sum::<f64>()
        / aucs.len() as f64;
    BacktestResult {
        name,
        mean_auc,
        std_auc: var.sqrt(),
        mean_f1: mean(&f1s),
        folds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::evaluate_ranking;

    /// Ring with fresh chords appearing at every late tick.
    fn evolving_network() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        for i in 0..60u32 {
            g.add_link(i, (i + 1) % 60, 1 + (i % 5));
        }
        for t in 6..=12u32 {
            for j in 0..6u32 {
                let u = (t * 7 + j * 11) % 60;
                let v = (u + 13 + t) % 60;
                if u != v && !g.has_link(u, v) {
                    g.add_link(u, v, t);
                }
            }
        }
        g
    }

    fn quick_config() -> BacktestConfig {
        BacktestConfig {
            min_positives: 2,
            folds: 4,
            ..BacktestConfig::default()
        }
    }

    #[test]
    fn produces_multiple_folds() {
        let g = evolving_network();
        let splits = backtest_splits(&g, &quick_config()).unwrap();
        assert!(splits.len() >= 2, "got {} folds", splits.len());
        // Newest fold predicts the latest tick; older folds earlier ones.
        assert!(splits[0].l_t > splits[splits.len() - 1].l_t);
    }

    #[test]
    fn folds_do_not_see_their_future() {
        let g = evolving_network();
        for split in backtest_splits(&g, &quick_config()).unwrap() {
            assert!(
                split.history.max_timestamp().unwrap() < split.l_t,
                "history must precede the prediction time"
            );
        }
    }

    #[test]
    fn aggregate_computes_mean_and_std() {
        let folds = vec![
            MethodResult {
                name: "CN".into(),
                auc: 0.8,
                f1: 0.7,
                threshold: 0.5,
                test_scores: Vec::new(),
            },
            MethodResult {
                name: "CN".into(),
                auc: 0.6,
                f1: 0.5,
                threshold: 0.5,
                test_scores: Vec::new(),
            },
        ];
        let agg = aggregate(folds);
        assert!((agg.mean_auc - 0.7).abs() < 1e-12);
        assert!((agg.std_auc - 0.1).abs() < 1e-12);
        assert!((agg.mean_f1 - 0.6).abs() < 1e-12);
        assert_eq!(agg.folds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "one method")]
    fn aggregate_rejects_mixed_methods() {
        let folds = vec![
            MethodResult {
                name: "CN".into(),
                auc: 0.8,
                f1: 0.7,
                threshold: 0.5,
                test_scores: Vec::new(),
            },
            MethodResult {
                name: "PA".into(),
                auc: 0.6,
                f1: 0.5,
                threshold: 0.5,
                test_scores: Vec::new(),
            },
        ];
        let _ = aggregate(folds);
    }

    #[test]
    fn end_to_end_backtest_with_ranking_method() {
        let g = evolving_network();
        let splits = backtest_splits(&g, &quick_config()).unwrap();
        let folds: Vec<MethodResult> = splits
            .iter()
            .map(|split| {
                let stat = split.history.to_static();
                evaluate_ranking("CN", split, |u, v| baseline_cn(&stat, u, v))
            })
            .collect();
        let agg = aggregate(folds);
        assert!((0.0..=1.0).contains(&agg.mean_auc));
        assert!(agg.std_auc >= 0.0);
    }

    /// Local CN to avoid a dev-dependency on the baselines crate.
    fn baseline_cn(g: &dyngraph::StaticGraph, u: u32, v: u32) -> f64 {
        g.common_neighbors(u, v).len() as f64
    }

    #[test]
    fn empty_network_rejected() {
        assert!(matches!(
            backtest_splits(&DynamicNetwork::new(), &quick_config()),
            Err(SplitError::EmptyNetwork)
        ));
    }
}
