//! Evaluation pipeline reproducing the paper's experimental protocol
//! (§VI-C2).
//!
//! * [`split`] — chooses the prediction time `l_t` (the network's last
//!   timestamp), takes the distinct node pairs linking at `l_t` as
//!   positives, samples an equal number of never-linked pairs as negatives,
//!   and splits both 70/30 into train and test. The *history* network
//!   `G_{[t_min, l_t)}` is what features are extracted from.
//! * [`metrics`] — AUC (rank statistic with tie correction), F1, and
//!   train-set threshold selection for the unsupervised ranking baselines.
//! * [`runner`] — glue that scores a split with a ranking function and
//!   returns a [`MethodResult`]; supervised models are trained by the
//!   caller (see the `ssf-bench` crate) and evaluated through the same
//!   scoring helpers.
//! * [`report`] — aligned text tables in the shape of the paper's
//!   Table III, plus CSV export.

pub mod backtest;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod split;

pub use backtest::{
    aggregate, backtest_splits, BacktestConfig, BacktestResult,
};
pub use metrics::{auc, best_f1_threshold, f1_at};
pub use report::ResultsTable;
pub use runner::{evaluate_ranking, evaluate_supervised_scores, MethodResult};
pub use split::{LinkSample, Split, SplitConfig, SplitError};
