//! Scoring glue: turn a scorer + split into AUC/F1 numbers.

use crate::metrics::{auc, best_f1_threshold, f1_at};
use crate::split::Split;
use dyngraph::NodeId;

/// One method's metrics on one dataset — a Table III cell pair.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodResult {
    /// Method name as printed in the tables.
    pub name: String,
    /// Area under the ROC curve on the test set.
    pub auc: f64,
    /// F1 on the test set.
    pub f1: f64,
    /// The decision threshold that was applied.
    pub threshold: f64,
    /// Raw per-sample test scores, aligned with the split's test samples —
    /// lets callers compute any further metric (precision@k, calibration)
    /// without re-scoring.
    pub test_scores: Vec<f64>,
}

/// Evaluates an *unsupervised ranking* method (CN, Katz, NMF, …).
///
/// The scorer is called once per train/test sample; the classification
/// threshold is chosen on the training scores ("we treat the training set
/// as prior knowledge to decide the threshold", §VI-C2) and applied to the
/// test scores.
pub fn evaluate_ranking(
    name: &str,
    split: &Split,
    mut scorer: impl FnMut(NodeId, NodeId) -> f64,
) -> MethodResult {
    let train: Vec<(f64, bool)> = split
        .train
        .iter()
        .map(|s| (scorer(s.u, s.v), s.label))
        .collect();
    let test: Vec<(f64, bool)> = split
        .test
        .iter()
        .map(|s| (scorer(s.u, s.v), s.label))
        .collect();
    let threshold = best_f1_threshold(&train);
    MethodResult {
        name: name.to_string(),
        auc: auc(&test),
        f1: f1_at(&test, threshold),
        threshold,
        test_scores: test.iter().map(|&(s, _)| s).collect(),
    }
}

/// Evaluates a *supervised* method from its already-computed test scores
/// (the caller extracted features and trained a model; class-1 probability
/// or regression output per test sample, aligned with `split.test`).
///
/// The threshold is the conventional 0.5 of a probabilistic classifier.
///
/// # Panics
///
/// Panics if `test_scores.len() != split.test.len()`.
pub fn evaluate_supervised_scores(
    name: &str,
    split: &Split,
    test_scores: &[f64],
) -> MethodResult {
    assert_eq!(
        test_scores.len(),
        split.test.len(),
        "one score per test sample required"
    );
    let test: Vec<(f64, bool)> = test_scores
        .iter()
        .zip(&split.test)
        .map(|(&s, sample)| (s, sample.label))
        .collect();
    MethodResult {
        name: name.to_string(),
        auc: auc(&test),
        f1: f1_at(&test, 0.5),
        threshold: 0.5,
        test_scores: test_scores.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitConfig;
    use dyngraph::DynamicNetwork;

    fn toy_split() -> Split {
        let mut g = DynamicNetwork::new();
        for i in 0..30u32 {
            g.add_link(i, (i + 1) % 30, 1 + (i % 5));
        }
        for i in 0..8u32 {
            g.add_link(i, i + 15, 6);
        }
        Split::new(&g, &SplitConfig::default()).unwrap()
    }

    #[test]
    fn oracle_scorer_is_perfect() {
        let split = toy_split();
        // Cheat: score by the true label (u + 15 == v ⇒ positive here).
        let r = evaluate_ranking("oracle", &split, |u, v| {
            if v == u + 15 {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(r.auc, 1.0);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn constant_scorer_is_uninformative() {
        let split = toy_split();
        let r = evaluate_ranking("const", &split, |_, _| 0.42);
        assert_eq!(r.auc, 0.5);
    }

    #[test]
    fn supervised_scores_evaluated_at_half() {
        let split = toy_split();
        let scores: Vec<f64> = split
            .test
            .iter()
            .map(|s| if s.label { 0.9 } else { 0.1 })
            .collect();
        let r = evaluate_supervised_scores("nm", &split, &scores);
        assert_eq!(r.auc, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.threshold, 0.5);
    }

    #[test]
    #[should_panic(expected = "one score per test sample")]
    fn supervised_length_checked() {
        let split = toy_split();
        let _ = evaluate_supervised_scores("nm", &split, &[0.5]);
    }
}
