//! Table III-style reporting: a method × dataset grid of AUC/F1 pairs,
//! rendered as an aligned text table or CSV.

use std::collections::BTreeMap;
use std::fmt;

use crate::runner::MethodResult;

/// A method × dataset results grid.
///
/// Rows appear in insertion order of the method, columns in insertion
/// order of the dataset — matching how the harness sweeps Table III.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultsTable {
    methods: Vec<String>,
    datasets: Vec<String>,
    cells: BTreeMap<(String, String), (f64, f64)>,
}

impl ResultsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one result cell.
    pub fn record(&mut self, dataset: &str, result: &MethodResult) {
        if !self.methods.iter().any(|m| m == &result.name) {
            self.methods.push(result.name.clone());
        }
        if !self.datasets.iter().any(|d| d == dataset) {
            self.datasets.push(dataset.to_string());
        }
        self.cells.insert(
            (result.name.clone(), dataset.to_string()),
            (result.auc, result.f1),
        );
    }

    /// The recorded `(auc, f1)` for a method/dataset pair.
    pub fn get(&self, method: &str, dataset: &str) -> Option<(f64, f64)> {
        self.cells
            .get(&(method.to_string(), dataset.to_string()))
            .copied()
    }

    /// Method names in insertion order.
    pub fn methods(&self) -> &[String] {
        &self.methods
    }

    /// Dataset names in insertion order.
    pub fn datasets(&self) -> &[String] {
        &self.datasets
    }

    /// The best method per dataset by AUC.
    pub fn best_by_auc(&self, dataset: &str) -> Option<(&str, f64)> {
        self.methods
            .iter()
            .filter_map(|m| {
                self.get(m, dataset).map(|(auc, _)| (m.as_str(), auc))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// CSV rendering: `method,dataset,auc,f1` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("method,dataset,auc,f1\n");
        for m in &self.methods {
            for d in &self.datasets {
                if let Some((auc, f1)) = self.get(m, d) {
                    out.push_str(&format!("{m},{d},{auc:.4},{f1:.4}\n"));
                }
            }
        }
        out
    }
}

impl fmt::Display for ResultsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const METHOD_W: usize = 10;
        write!(f, "{:<METHOD_W$}", "Method")?;
        for d in &self.datasets {
            write!(f, " | {:^13}", truncate(d, 13))?;
        }
        writeln!(f)?;
        write!(f, "{:<METHOD_W$}", "")?;
        for _ in &self.datasets {
            write!(f, " | {:>6} {:>6}", "AUC", "F1")?;
        }
        writeln!(f)?;
        let width = METHOD_W + self.datasets.len() * 16;
        writeln!(f, "{}", "-".repeat(width))?;
        for m in &self.methods {
            write!(f, "{:<METHOD_W$}", truncate(m, METHOD_W))?;
            for d in &self.datasets {
                match self.get(m, d) {
                    Some((auc, f1)) => write!(f, " | {auc:>6.3} {f1:>6.3}")?,
                    None => write!(f, " | {:>6} {:>6}", "-", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn truncate(s: &str, w: usize) -> &str {
    if s.len() <= w {
        s
    } else {
        &s[..w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(name: &str, auc: f64, f1: f64) -> MethodResult {
        MethodResult {
            name: name.to_string(),
            auc,
            f1,
            threshold: 0.5,
            test_scores: Vec::new(),
        }
    }

    #[test]
    fn records_and_reads_back() {
        let mut t = ResultsTable::new();
        t.record("Digg", &result("CN", 0.56, 0.23));
        t.record("Digg", &result("SSFNM", 0.89, 0.89));
        assert_eq!(t.get("CN", "Digg"), Some((0.56, 0.23)));
        assert_eq!(t.get("CN", "Eu-email"), None);
        assert_eq!(t.methods(), &["CN", "SSFNM"]);
        assert_eq!(t.datasets(), &["Digg"]);
    }

    #[test]
    fn best_by_auc_picks_max() {
        let mut t = ResultsTable::new();
        t.record("Digg", &result("CN", 0.56, 0.23));
        t.record("Digg", &result("SSFNM", 0.89, 0.89));
        assert_eq!(t.best_by_auc("Digg"), Some(("SSFNM", 0.89)));
        assert_eq!(t.best_by_auc("nope"), None);
    }

    #[test]
    fn display_aligns_and_marks_missing() {
        let mut t = ResultsTable::new();
        t.record("Digg", &result("CN", 0.5615, 0.2299));
        t.record("Contact", &result("SSFNM", 0.97, 0.97));
        let text = t.to_string();
        assert!(text.contains("0.56"));
        assert!(text.contains('-'), "missing cells rendered as dashes");
        assert!(text.contains("Contact"));
    }

    #[test]
    fn csv_roundtrips_values() {
        let mut t = ResultsTable::new();
        t.record("Digg", &result("CN", 0.5, 0.25));
        let csv = t.to_csv();
        assert!(csv.starts_with("method,dataset,auc,f1"));
        assert!(csv.contains("CN,Digg,0.5000,0.2500"));
    }
}
