//! Classification metrics: AUC and F1 (§VI-C2 uses both).

/// Area under the ROC curve, computed as the normalized Mann–Whitney rank
/// statistic with the standard tie correction (ties contribute ½).
///
/// `scored` holds `(score, is_positive)` pairs. Returns 0.5 when either
/// class is empty (no ranking information).
pub fn auc(scored: &[(f64, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, y)| y).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    // Sort by score; assign average ranks to ties; AUC = (R⁺ − P(P+1)/2)/(PN).
    let mut idx: Vec<usize> = (0..scored.len()).collect();
    // total_cmp keeps the sort total even if a degraded scorer leaks a NaN
    // (NaN ranks above every real score instead of panicking).
    idx.sort_by(|&a, &b| scored[a].0.total_cmp(&scored[b].0));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scored[idx[j + 1]].0 == scored[idx[i]].0 {
            j += 1;
        }
        // Items i..=j share average rank (1-based).
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            if scored[k].1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let p = pos as f64;
    let n = neg as f64;
    (rank_sum_pos - p * (p + 1.0) / 2.0) / (p * n)
}

/// F1 score of the decision `score >= threshold`.
///
/// Returns 0.0 when precision + recall is 0.
pub fn f1_at(scored: &[(f64, bool)], threshold: f64) -> f64 {
    let (mut tp, mut fp, mut fneg) = (0usize, 0usize, 0usize);
    for &(s, y) in scored {
        match (s >= threshold, y) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fneg += 1,
            (false, false) => {}
        }
    }
    if tp == 0 {
        return 0.0;
    }
    let precision = tp as f64 / (tp + fp) as f64;
    let recall = tp as f64 / (tp + fneg) as f64;
    2.0 * precision * recall / (precision + recall)
}

/// Accuracy of the decision `score >= threshold`.
pub fn accuracy_at(scored: &[(f64, bool)], threshold: f64) -> f64 {
    if scored.is_empty() {
        return 0.0;
    }
    let correct = scored
        .iter()
        .filter(|&&(s, y)| (s >= threshold) == y)
        .count();
    correct as f64 / scored.len() as f64
}

/// The threshold maximizing F1 on `scored` — how the paper turns the
/// unsupervised ranking features into classifiers ("we treat the training
/// set as prior knowledge to decide the threshold", §VI-C2).
///
/// Candidate thresholds are the observed scores (decision boundaries only
/// change there). Returns 0.5 for empty input.
pub fn best_f1_threshold(scored: &[(f64, bool)]) -> f64 {
    if scored.is_empty() {
        return 0.5;
    }
    let mut candidates: Vec<f64> = scored.iter().map(|&(s, _)| s).collect();
    candidates.sort_by(f64::total_cmp);
    candidates.dedup();
    let mut best = (f64::NEG_INFINITY, candidates[0]);
    for &t in &candidates {
        let f = f1_at(scored, t);
        if f > best.0 {
            best = (f, t);
        }
    }
    best.1
}

/// Precision@k: fraction of positives among the `k` highest-scored
/// samples — the metric of the top-N recommendation framing the paper's
/// introduction motivates.
///
/// Ties at the cutoff are broken deterministically by input order.
/// Returns 0.0 for empty input or `k == 0`.
pub fn precision_at_k(scored: &[(f64, bool)], k: usize) -> f64 {
    if scored.is_empty() || k == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scored.len()).collect();
    idx.sort_by(|&a, &b| scored[b].0.total_cmp(&scored[a].0).then(a.cmp(&b)));
    let k = k.min(idx.len());
    let hits = idx[..k].iter().filter(|&&i| scored[i].1).count();
    hits as f64 / k as f64
}

/// Average precision: mean of precision@rank over the ranks of the
/// positive samples (the area under the precision–recall curve under the
/// standard interpolation). Returns 0.0 when there are no positives.
pub fn average_precision(scored: &[(f64, bool)]) -> f64 {
    let mut idx: Vec<usize> = (0..scored.len()).collect();
    idx.sort_by(|&a, &b| scored[b].0.total_cmp(&scored[a].0).then(a.cmp(&b)));
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, &i) in idx.iter().enumerate() {
        if scored[i].1 {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    if hits == 0 {
        0.0
    } else {
        sum / hits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let s = [(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        assert_eq!(auc(&s), 1.0);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let s = [(0.1, true), (0.9, false)];
        assert_eq!(auc(&s), 0.0);
    }

    #[test]
    fn random_ties_are_half() {
        let s = [(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        assert_eq!(auc(&s), 0.5);
    }

    #[test]
    fn single_class_defaults_to_half() {
        assert_eq!(auc(&[(0.3, true)]), 0.5);
        assert_eq!(auc(&[]), 0.5);
    }

    #[test]
    fn auc_matches_pairwise_count() {
        let s = [
            (0.9, true),
            (0.7, false),
            (0.6, true),
            (0.5, true),
            (0.3, false),
        ];
        // Pairwise: positives {0.9, 0.6, 0.5}, negatives {0.7, 0.3}.
        // Wins: 0.9>0.7, 0.9>0.3, 0.6>0.3, 0.5>0.3 → 4 of 6.
        assert!((auc(&s) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn f1_perfect_and_zero() {
        let s = [(0.9, true), (0.1, false)];
        assert_eq!(f1_at(&s, 0.5), 1.0);
        assert_eq!(f1_at(&s, 2.0), 0.0);
    }

    #[test]
    fn f1_mixed() {
        let s = [(0.9, true), (0.8, false), (0.1, true)];
        // threshold 0.5: tp=1, fp=1, fn=1 → precision 0.5, recall 0.5 → 0.5.
        assert!((f1_at(&s, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_both_classes() {
        let s = [(0.9, true), (0.8, false), (0.1, false)];
        assert!((accuracy_at(&s, 0.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy_at(&[], 0.5), 0.0);
    }

    #[test]
    fn best_threshold_separates_cleanly() {
        let s = [(5.0, true), (4.0, true), (1.0, false), (0.5, false)];
        let t = best_f1_threshold(&s);
        assert_eq!(f1_at(&s, t), 1.0);
        assert!(t > 1.0 && t <= 4.0);
    }

    #[test]
    fn precision_at_k_counts_top_hits() {
        let s = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert_eq!(precision_at_k(&s, 1), 1.0);
        assert_eq!(precision_at_k(&s, 2), 0.5);
        assert!((precision_at_k(&s, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&s, 10), 0.5); // clamped to len
        assert_eq!(precision_at_k(&s, 0), 0.0);
        assert_eq!(precision_at_k(&[], 3), 0.0);
    }

    #[test]
    fn average_precision_perfect_and_worst() {
        let perfect = [(0.9, true), (0.8, true), (0.1, false)];
        assert!((average_precision(&perfect) - 1.0).abs() < 1e-12);
        let worst = [(0.9, false), (0.8, false), (0.1, true)];
        assert!((average_precision(&worst) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_precision(&[(0.5, false)]), 0.0);
    }

    #[test]
    fn average_precision_interleaved() {
        // ranks of positives: 1 and 3 → (1/1 + 2/3)/2.
        let s = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert!(
            (average_precision(&s) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12
        );
    }

    #[test]
    fn best_threshold_on_overlapping_scores() {
        let s = [
            (0.9, true),
            (0.7, true),
            (0.7, false),
            (0.2, false),
            (0.1, true),
        ];
        let t = best_f1_threshold(&s);
        let best = f1_at(&s, t);
        // No candidate can beat it.
        for cand in [0.1, 0.2, 0.7, 0.9] {
            assert!(f1_at(&s, cand) <= best + 1e-12);
        }
    }
}
