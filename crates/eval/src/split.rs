//! Train/test splitting (§VI-C2 of the paper).
//!
//! "We choose the last timestamp of the dynamic networks as the present
//! time `l_t`, then select 70 percent of the real links at `l_t` as
//! positive samples for training, and the remaining links are selected as
//! positive samples for test. We randomly select fake links as negative
//! samples and set them have the same number as positive samples in both
//! training set and test set."

use std::collections::HashSet;
use std::error::Error;
use std::fmt;

use dyngraph::{DynamicNetwork, NodeId, Timestamp};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One labeled candidate link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkSample {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// `true` = the link really emerges in the prediction window.
    pub label: bool,
}

/// Split configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Fraction of positives (and negatives) assigned to training (paper:
    /// 0.7).
    pub train_fraction: f64,
    /// Width of the prediction window in timestamp ticks. The paper
    /// predicts the single last tick (`window = 1`); sparse synthetic
    /// datasets may need a wider window for statistically meaningful test
    /// sets — EXPERIMENTS.md records what each run used.
    pub window: u32,
    /// RNG seed for negative sampling and shuffling.
    pub seed: u64,
    /// Optional cap on positives (subsampled after shuffling) for fast
    /// runs.
    pub max_positives: Option<usize>,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            train_fraction: 0.7,
            window: 1,
            seed: 1,
            max_positives: None,
        }
    }
}

/// Errors from splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SplitError {
    /// The network has no links at all.
    EmptyNetwork,
    /// No links fall in the prediction window, or no usable positives
    /// remain.
    NoPositives,
    /// The node set is too small to sample enough never-linked negatives.
    NotEnoughNegatives,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::EmptyNetwork => write!(f, "network has no links"),
            SplitError::NoPositives => {
                write!(f, "no positive links in the prediction window")
            }
            SplitError::NotEnoughNegatives => {
                write!(f, "cannot sample enough never-linked negative pairs")
            }
        }
    }
}

impl Error for SplitError {}

/// A prepared experiment: history network + labeled train/test samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Split {
    /// The history `G_{[t_min, window_start)}` features are extracted from.
    pub history: DynamicNetwork,
    /// The prediction time `l_t` (the network's last timestamp).
    pub l_t: Timestamp,
    /// Labeled training samples (balanced, shuffled).
    pub train: Vec<LinkSample>,
    /// Labeled test samples (balanced, shuffled).
    pub test: Vec<LinkSample>,
}

impl Split {
    /// Builds the split.
    ///
    /// Positives are the distinct node pairs with a link in the window
    /// `(l_t − window, l_t]` *that do not also have an earlier history
    /// link* — predicting the re-occurrence of an existing pair is trivial
    /// lookup, and including such pairs would let every history-aware
    /// feature separate the classes perfectly. Negatives are uniformly
    /// sampled pairs with no link at any time.
    ///
    /// # Errors
    ///
    /// * [`SplitError::EmptyNetwork`] — `g` has no links.
    /// * [`SplitError::NoPositives`] — nothing to predict in the window.
    /// * [`SplitError::NotEnoughNegatives`] — pathological tiny/dense
    ///   graph.
    pub fn new(
        g: &DynamicNetwork,
        config: &SplitConfig,
    ) -> Result<Self, SplitError> {
        let l_t = g.max_timestamp().ok_or(SplitError::EmptyNetwork)?;
        let t_min = g.min_timestamp().ok_or(SplitError::EmptyNetwork)?;
        let window = config.window.max(1);
        let window_start = l_t.saturating_sub(window - 1).max(t_min);
        if window_start <= t_min {
            // The window must leave some history.
            return Err(SplitError::NoPositives);
        }
        // `window_start > t_min` makes the period non-empty; a failure
        // would be an internal invariant break, surfaced as NoPositives
        // rather than a panic on the serving path.
        let history = g
            .period(t_min, window_start)
            .map_err(|_| SplitError::NoPositives)?;

        // Distinct new pairs in the window.
        let mut positives: Vec<(NodeId, NodeId)> = Vec::new();
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
        for link in g.links() {
            if link.t >= window_start
                && !history.has_link(link.u, link.v)
                && seen.insert((link.u, link.v))
            {
                positives.push((link.u, link.v));
            }
        }
        if positives.is_empty() {
            return Err(SplitError::NoPositives);
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        positives.shuffle(&mut rng);
        if let Some(cap) = config.max_positives {
            positives.truncate(cap.max(2));
        }

        // Negative pairs: never linked at any time.
        let n = g.node_count() as NodeId;
        if n < 3 {
            return Err(SplitError::NotEnoughNegatives);
        }
        let mut negatives: Vec<(NodeId, NodeId)> = Vec::new();
        let mut used: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut attempts = 0usize;
        let budget = positives.len() * 1000;
        while negatives.len() < positives.len() {
            attempts += 1;
            if attempts > budget {
                return Err(SplitError::NotEnoughNegatives);
            }
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let pair = (a.min(b), a.max(b));
            if g.has_link(pair.0, pair.1) || !used.insert(pair) {
                continue;
            }
            negatives.push(pair);
        }

        // 70/30 split of each class, then interleave and shuffle.
        let cut_pos =
            ((positives.len() as f64) * config.train_fraction).round() as usize;
        let cut_pos =
            cut_pos.clamp(1, positives.len().saturating_sub(1).max(1));
        let cut_neg = cut_pos; // balanced classes
        let mut train: Vec<LinkSample> = Vec::new();
        let mut test: Vec<LinkSample> = Vec::new();
        for (i, &(u, v)) in positives.iter().enumerate() {
            let s = LinkSample { u, v, label: true };
            if i < cut_pos {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        for (i, &(u, v)) in negatives.iter().enumerate() {
            let s = LinkSample { u, v, label: false };
            if i < cut_neg {
                train.push(s);
            } else {
                test.push(s);
            }
        }
        train.shuffle(&mut rng);
        test.shuffle(&mut rng);
        if test.iter().all(|s| !s.label) || test.is_empty() {
            return Err(SplitError::NoPositives);
        }
        Ok(Split {
            history,
            l_t,
            train,
            test,
        })
    }

    /// Builds a split whose prediction window is widened (starting from
    /// `config.window`) until at least `min_positives` positive pairs exist
    /// or the window would swallow the whole history. The paper predicts
    /// the single last tick; synthetic traces with few fresh pairs per tick
    /// need this to obtain statistically meaningful test sets (the window
    /// actually used is visible through the returned split's
    /// [`Split::history`] span and is logged by the harness).
    ///
    /// # Errors
    ///
    /// Same as [`Split::new`], when even the widest window fails.
    pub fn with_min_positives(
        g: &DynamicNetwork,
        config: &SplitConfig,
        min_positives: usize,
    ) -> Result<Self, SplitError> {
        let span = match (g.min_timestamp(), g.max_timestamp()) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => return Err(SplitError::EmptyNetwork),
        };
        let mut window = config.window.max(1);
        let mut last_err = SplitError::NoPositives;
        // Keep at least half the span as history.
        while window <= span / 2 {
            match Split::new(g, &SplitConfig { window, ..*config }) {
                Ok(split) => {
                    let positives = split
                        .train
                        .iter()
                        .chain(&split.test)
                        .filter(|s| s.label)
                        .count();
                    if positives >= min_positives {
                        return Ok(split);
                    }
                    last_err = SplitError::NoPositives;
                }
                Err(e) => last_err = e,
            }
            window *= 2;
        }
        // Fall back to the widest acceptable window even if thin.
        Split::new(
            g,
            &SplitConfig {
                window: (span / 2).max(1),
                ..*config
            },
        )
        .map_err(|_| last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 40-node network: dense early activity at t ∈ [1, 9], fresh pairs at
    /// t = 10.
    fn sample_network() -> DynamicNetwork {
        let mut g = DynamicNetwork::new();
        for i in 0..40u32 {
            let j = (i + 1) % 40;
            g.add_link(i, j, 1 + (i % 9));
        }
        // New links at the last tick between far-apart nodes.
        for i in 0..10u32 {
            g.add_link(i, i + 20, 10);
        }
        g
    }

    #[test]
    fn split_balances_classes() {
        let g = sample_network();
        let s = Split::new(&g, &SplitConfig::default()).unwrap();
        assert_eq!(s.l_t, 10);
        let count = |v: &[LinkSample], label| {
            v.iter().filter(|s| s.label == label).count()
        };
        assert_eq!(count(&s.train, true), count(&s.train, false));
        assert_eq!(count(&s.test, true), count(&s.test, false));
        assert_eq!(count(&s.train, true) + count(&s.test, true), 10);
    }

    #[test]
    fn history_excludes_window() {
        let g = sample_network();
        let s = Split::new(&g, &SplitConfig::default()).unwrap();
        assert_eq!(s.history.max_timestamp(), Some(9));
        assert!(!s.history.has_link(0, 20));
    }

    #[test]
    fn positives_are_new_pairs() {
        let g = sample_network();
        let s = Split::new(&g, &SplitConfig::default()).unwrap();
        for sample in s.train.iter().chain(&s.test) {
            if sample.label {
                assert!(!s.history.has_link(sample.u, sample.v));
                assert!(g.has_link(sample.u, sample.v));
            } else {
                assert!(!g.has_link(sample.u, sample.v));
            }
        }
    }

    #[test]
    fn seed_determines_split() {
        let g = sample_network();
        let a = Split::new(&g, &SplitConfig::default()).unwrap();
        let b = Split::new(&g, &SplitConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = Split::new(
            &g,
            &SplitConfig {
                seed: 99,
                ..SplitConfig::default()
            },
        )
        .unwrap();
        assert!(a.train != c.train || a.test != c.test);
    }

    #[test]
    fn window_widens_positives() {
        let mut g = sample_network();
        g.extend([(3, 30, 9), (5, 33, 9)]);
        let narrow = Split::new(&g, &SplitConfig::default()).unwrap();
        let wide = Split::new(
            &g,
            &SplitConfig {
                window: 2,
                ..SplitConfig::default()
            },
        )
        .unwrap();
        let positives = |s: &Split| {
            s.train.iter().chain(&s.test).filter(|x| x.label).count()
        };
        assert!(positives(&wide) > positives(&narrow));
        assert_eq!(wide.history.max_timestamp(), Some(8));
    }

    #[test]
    fn max_positives_caps() {
        let g = sample_network();
        let s = Split::new(
            &g,
            &SplitConfig {
                max_positives: Some(4),
                ..SplitConfig::default()
            },
        )
        .unwrap();
        let pos = s.train.iter().chain(&s.test).filter(|x| x.label).count();
        assert_eq!(pos, 4);
    }

    #[test]
    fn empty_network_rejected() {
        assert_eq!(
            Split::new(&DynamicNetwork::new(), &SplitConfig::default()),
            Err(SplitError::EmptyNetwork)
        );
    }

    #[test]
    fn single_tick_network_has_no_history() {
        let g: DynamicNetwork = [(0, 1, 5), (1, 2, 5)].into_iter().collect();
        assert_eq!(
            Split::new(&g, &SplitConfig::default()),
            Err(SplitError::NoPositives)
        );
    }

    #[test]
    fn with_min_positives_widens_until_enough() {
        let mut g = DynamicNetwork::new();
        for i in 0..60u32 {
            g.add_link(i, (i + 1) % 60, 1 + (i % 8));
        }
        // One fresh pair per tick at ticks 9 and 10.
        g.add_link(0, 30, 9);
        g.add_link(1, 31, 10);
        let cfg = SplitConfig::default();
        // Window 1 has a single positive — not even splittable into
        // non-empty train and test positives.
        assert!(Split::new(&g, &cfg).is_err());
        let wide = Split::with_min_positives(&g, &cfg, 2).unwrap();
        assert_eq!(
            wide.train
                .iter()
                .chain(&wide.test)
                .filter(|s| s.label)
                .count(),
            2
        );
    }

    #[test]
    fn repeat_only_window_yields_no_positives() {
        // Window links all repeat history pairs.
        let g: DynamicNetwork = [(0, 1, 1), (1, 2, 2), (0, 1, 3), (1, 2, 3)]
            .into_iter()
            .collect();
        assert_eq!(
            Split::new(&g, &SplitConfig::default()),
            Err(SplitError::NoPositives)
        );
    }
}
