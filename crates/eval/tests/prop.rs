//! Property-based tests for the evaluation metrics.

use proptest::prelude::*;

use ssf_eval::metrics::{accuracy_at, auc, best_f1_threshold, f1_at};

fn scored() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec((-10.0..10.0f64, any::<bool>()), 2..60)
}

proptest! {
    /// AUC is bounded and complementation-symmetric: negating scores and
    /// labels flips it around 0.5.
    #[test]
    fn auc_bounded_and_symmetric(s in scored()) {
        let a = auc(&s);
        prop_assert!((0.0..=1.0).contains(&a));
        let flipped: Vec<(f64, bool)> =
            s.iter().map(|&(v, y)| (-v, y)).collect();
        let b = auc(&flipped);
        let pos = s.iter().filter(|&&(_, y)| y).count();
        if pos > 0 && pos < s.len() {
            prop_assert!((a + b - 1.0).abs() < 1e-9);
        }
    }

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_invariant_to_monotone_transform(s in scored()) {
        let transformed: Vec<(f64, bool)> =
            s.iter().map(|&(v, y)| (v.exp(), y)).collect();
        prop_assert!((auc(&s) - auc(&transformed)).abs() < 1e-12);
    }

    /// F1 and accuracy are bounded in [0, 1] at any threshold.
    #[test]
    fn f1_and_accuracy_bounded(s in scored(), t in -12.0..12.0f64) {
        let f = f1_at(&s, t);
        prop_assert!((0.0..=1.0).contains(&f));
        let acc = accuracy_at(&s, t);
        prop_assert!((0.0..=1.0).contains(&acc));
    }

    /// The chosen threshold really maximizes F1 over all candidates.
    #[test]
    fn best_threshold_is_optimal(s in scored()) {
        let t = best_f1_threshold(&s);
        let best = f1_at(&s, t);
        for &(cand, _) in &s {
            prop_assert!(f1_at(&s, cand) <= best + 1e-12);
        }
    }

    /// A perfectly separated sample has AUC 1 and a perfect threshold.
    #[test]
    fn perfect_separation_detected(
        pos in prop::collection::vec(5.0..10.0f64, 1..20),
        neg in prop::collection::vec(-10.0..4.9f64, 1..20),
    ) {
        let s: Vec<(f64, bool)> = pos
            .iter()
            .map(|&v| (v, true))
            .chain(neg.iter().map(|&v| (v, false)))
            .collect();
        prop_assert_eq!(auc(&s), 1.0);
        let t = best_f1_threshold(&s);
        prop_assert_eq!(f1_at(&s, t), 1.0);
    }
}
