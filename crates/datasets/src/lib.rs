//! Dynamic-network datasets for the SSF reproduction.
//!
//! The paper evaluates on seven public traces (Table II): Eu-Email,
//! Contact, Facebook, Co-author, Prosper, Slashdot and Digg. This crate
//! substitutes them with *synthetic temporal generators* parameterized to
//! match each trace's Table II statistics (node count, link count, average
//! degree, time span) and qualitative topology class:
//!
//! * [`Topology::RepeatedContact`] — dense repeated-interaction networks
//!   (Eu-Email, Contact): a small population where most events repeat an
//!   already-active pair (Pólya-urn reinforcement), producing the heavy
//!   multi-link distributions of email/proximity traces.
//! * [`Topology::HubDominated`] — celebrity/reply networks (Facebook,
//!   Prosper, Slashdot, Digg): degree-preferential attachment where most
//!   events attach ordinary users to hubs, matching the paper's Figure 6(a)
//!   observation that "users … write posts to the walls of famous people".
//! * [`Topology::Community`] — collaboration networks (Co-author): links
//!   form inside small dense groups with occasional bridges, matching
//!   Figure 6(b)'s dense co-author pattern.
//!
//! The generators are deterministic given a seed. When the real KONECT
//! edge lists are available on disk, [`DatasetSpec::load_or_generate`]
//! transparently prefers them, so the whole experiment harness runs
//! unchanged on the original data.
//!
//! Beyond the paper's scale, [`ScaleTier`] defines a synthetic S/M/L/XL/
//! Huge ladder (10k to 2M nodes) whose specs stream-build through a
//! bounded-memory generator path — see [`generators::STREAM_THRESHOLD`].
//!
//! # Example
//!
//! ```rust
//! use datasets::DatasetSpec;
//!
//! let spec = DatasetSpec::coauthor();
//! let g = spec.generate(42);
//! assert_eq!(g.link_count(), spec.target_links);
//! assert_eq!(g.max_timestamp(), Some(spec.time_span));
//! ```
//!
//! Custom specs go through the validated builder:
//!
//! ```rust
//! use datasets::{DatasetSpec, ScaleTier, Topology};
//!
//! let spec = DatasetSpec::builder("sandbox")
//!     .nodes(200)
//!     .target_links(2_000)
//!     .time_span(90)
//!     .topology(Topology::Community {
//!         communities: 10,
//!         intra: 0.85,
//!         repeat: 0.3,
//!         drift: 0.01,
//!     })
//!     .build()?;
//! assert_eq!(spec.name, "sandbox");
//! let tier = DatasetSpec::tier(ScaleTier::S);
//! assert_eq!(tier.nodes, 10_000);
//! # Ok::<(), datasets::SpecError>(())
//! ```

pub mod generators;
pub mod io;
pub mod spec;

#[allow(deprecated)] // re-exported one release for migration
pub use generators::generate;
pub use spec::{
    DatasetSpec, DatasetSpecBuilder, PaperDataset, ScaleTier, SpecError,
    Topology,
};
