//! Loading real traces when available, generating otherwise.
//!
//! The paper's seven datasets are public KONECT downloads. Drop their edge
//! lists into a data directory as `<name>.txt` (lowercased spec name,
//! whitespace `u v t` lines) and the harness will evaluate on the real
//! traces; otherwise it falls back to the matched synthetic generator.

use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

use dyngraph::{io::read_edge_list, DynamicNetwork, GraphError};

use crate::spec::DatasetSpec;

/// Where a loaded network came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Parsed from this real edge-list file.
    File(PathBuf),
    /// Generated synthetically with this seed.
    Generated {
        /// The generator seed used.
        seed: u64,
    },
}

/// The expected on-disk file name for a spec: lowercased name + `.txt`
/// (e.g. `eu-email.txt`).
pub fn file_name(spec: &DatasetSpec) -> String {
    format!("{}.txt", spec.name.to_lowercase())
}

/// Loads `<data_dir>/<name>.txt` if present, else generates synthetically.
///
/// Deprecated free-function form of [`DatasetSpec::load_or_generate`].
///
/// # Errors
///
/// Returns [`GraphError`] only when a file exists but cannot be parsed
/// (a malformed real dataset should not silently degrade to synthetic).
#[deprecated(note = "use the `DatasetSpec::load_or_generate` method instead")]
pub fn load_or_generate(
    spec: &DatasetSpec,
    data_dir: &Path,
    seed: u64,
) -> Result<(DynamicNetwork, Provenance), GraphError> {
    spec.load_or_generate(data_dir, seed)
}

impl DatasetSpec {
    /// Loads `<data_dir>/<name>.txt` if present, else generates this
    /// spec's network synthetically with `seed` (see
    /// [`DatasetSpec::generate`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] only when a file exists but cannot be
    /// parsed (a malformed real dataset should not silently degrade to
    /// synthetic).
    pub fn load_or_generate(
        &self,
        data_dir: &Path,
        seed: u64,
    ) -> Result<(DynamicNetwork, Provenance), GraphError> {
        let path = data_dir.join(file_name(self));
        if path.is_file() {
            let file = File::open(&path).map_err(|e| GraphError::Parse {
                line: 0,
                reason: format!("cannot open {}: {e}", path.display()),
            })?;
            let g = read_edge_list(BufReader::new(file))?;
            Ok((g, Provenance::File(path)))
        } else {
            Ok((self.generate(seed), Provenance::Generated { seed }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn file_names_lowercased() {
        assert_eq!(file_name(&DatasetSpec::eu_email()), "eu-email.txt");
        assert_eq!(file_name(&DatasetSpec::digg()), "digg.txt");
    }

    #[test]
    fn falls_back_to_generation() {
        let spec = DatasetSpec::coauthor().scaled(0.05);
        let dir = std::env::temp_dir().join("ssf-no-such-dir");
        let (g, prov) = spec.load_or_generate(&dir, 9).unwrap();
        assert_eq!(prov, Provenance::Generated { seed: 9 });
        assert_eq!(g.link_count(), spec.target_links);
    }

    #[test]
    fn prefers_real_file() {
        let dir = std::env::temp_dir().join("ssf-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = DatasetSpec::digg().scaled(0.05);
        let path = dir.join(file_name(&spec));
        let mut f = File::create(&path).unwrap();
        writeln!(f, "0 1 1\n1 2 2").unwrap();
        drop(f);
        let (g, prov) = spec.load_or_generate(&dir, 1).unwrap();
        assert_eq!(prov, Provenance::File(path.clone()));
        assert_eq!(g.link_count(), 2);
        std::fs::remove_file(path).unwrap();
    }

    /// The deprecated free function stays a pure delegation shim for
    /// one release; compiling this call under `-D warnings` (with the
    /// targeted allow) is the migration-window regression test.
    #[test]
    #[allow(deprecated)]
    fn deprecated_free_function_matches_method() {
        let spec = DatasetSpec::coauthor().scaled(0.05);
        let dir = std::env::temp_dir().join("ssf-no-such-dir");
        let (g, prov) = load_or_generate(&spec, &dir, 9).unwrap();
        let (g2, prov2) = spec.load_or_generate(&dir, 9).unwrap();
        assert_eq!(prov, prov2);
        assert_eq!(g.link_count(), g2.link_count());
    }

    #[test]
    fn malformed_file_errors_instead_of_degrading() {
        let dir = std::env::temp_dir().join("ssf-io-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = DatasetSpec::contact().scaled(0.05);
        let path = dir.join(file_name(&spec));
        std::fs::write(&path, "not an edge list\n").unwrap();
        let err = spec.load_or_generate(&dir, 1).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
        std::fs::remove_file(path).unwrap();
    }
}
