//! Dataset specifications mirroring the paper's Table II.

use std::fmt;

/// Qualitative topology class of a generated network.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Topology {
    /// Small population, heavy pair repetition (email / proximity traces).
    RepeatedContact {
        /// Probability an event repeats an already-linked pair
        /// (Pólya-urn reinforced by multiplicity).
        repeat: f64,
        /// Latent groups (departments / locations) fresh contacts form in.
        groups: usize,
        /// Probability a fresh contact stays inside one group.
        intra: f64,
        /// Per-event probability that one random node migrates to another
        /// group (re-orgs / mobility), keeping fresh intra-group pairs —
        /// the predictable positives — flowing even once old groups
        /// saturate.
        drift: f64,
    },
    /// Degree-preferential attachment with a celebrity core
    /// (reply / wall-post / loan networks).
    HubDominated {
        /// Probability an event repeats an already-linked pair.
        repeat: f64,
        /// Exponent on the degree bias (1.0 = classic preferential
        /// attachment; larger concentrates on the hubs).
        hub_bias: f64,
        /// Probability a fresh link closes a triangle around the chosen
        /// hub (two-hop locality) instead of reaching a uniform stranger.
        /// Real wall-post/reply links are local — raw degree alone is a
        /// weak predictor (the paper's PA scores 0.303 on Facebook).
        local: f64,
    },
    /// Small dense groups with occasional bridges (co-authorship).
    Community {
        /// Number of communities nodes are partitioned into.
        communities: usize,
        /// Probability a link stays inside one community.
        intra: f64,
        /// Probability an event repeats an already-linked pair.
        repeat: f64,
        /// Per-event probability that one random node migrates to another
        /// community. Drift makes old links stale — the property that
        /// rewards time-aware features over all-time link counts.
        drift: f64,
    },
}

/// Parameters of one dataset: name, Table II statistics and topology class.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// Target node count `|V|`.
    pub nodes: usize,
    /// Target timestamped link count `|E|` (multi-links counted).
    pub target_links: usize,
    /// Number of timestamp ticks ("Time Span" of Table II).
    pub time_span: u32,
    /// Topology class driving the generator.
    pub topology: Topology,
}

impl DatasetSpec {
    /// Eu-Email: |V|=309, |E|=61046, span 803 h — institutional email.
    pub fn eu_email() -> Self {
        DatasetSpec {
            name: "Eu-email",
            nodes: 309,
            target_links: 61_046,
            time_span: 803,
            topology: Topology::RepeatedContact {
                repeat: 0.82,
                groups: 18,
                intra: 0.85,
                drift: 0.01,
            },
        }
    }

    /// Contact: |V|=274, |E|=28245, span 96 h — wireless proximity.
    pub fn contact() -> Self {
        DatasetSpec {
            name: "Contact",
            nodes: 274,
            target_links: 28_245,
            time_span: 96,
            topology: Topology::RepeatedContact {
                repeat: 0.75,
                groups: 14,
                intra: 0.8,
                drift: 0.01,
            },
        }
    }

    /// Facebook: |V|=4313, |E|=42346, span 366 d — wall posts.
    pub fn facebook() -> Self {
        DatasetSpec {
            name: "Facebook",
            nodes: 4313,
            target_links: 42_346,
            time_span: 366,
            topology: Topology::HubDominated {
                repeat: 0.35,
                hub_bias: 1.0,
                local: 0.7,
            },
        }
    }

    /// Co-author: |V|=744, |E|=7034, span 20 y — DBLP subset.
    pub fn coauthor() -> Self {
        DatasetSpec {
            name: "Coauthor",
            nodes: 744,
            target_links: 7034,
            time_span: 20,
            topology: Topology::Community {
                communities: 60,
                intra: 0.9,
                repeat: 0.25,
                drift: 0.1,
            },
        }
    }

    /// Prosper: |V|=1264, |E|=8874, span 60 m — loans.
    pub fn prosper() -> Self {
        DatasetSpec {
            name: "Prosper",
            nodes: 1264,
            target_links: 8874,
            time_span: 60,
            topology: Topology::HubDominated {
                repeat: 0.15,
                hub_bias: 1.1,
                local: 0.6,
            },
        }
    }

    /// Slashdot: |V|=2680, |E|=9904, span 240 d — replies.
    pub fn slashdot() -> Self {
        DatasetSpec {
            name: "Slashdot",
            nodes: 2680,
            target_links: 9904,
            time_span: 240,
            topology: Topology::HubDominated {
                repeat: 0.12,
                hub_bias: 1.2,
                local: 0.45,
            },
        }
    }

    /// Digg: |V|=3215, |E|=9618, span 240 h — replies, sparsest.
    pub fn digg() -> Self {
        DatasetSpec {
            name: "Digg",
            nodes: 3215,
            target_links: 9618,
            time_span: 240,
            topology: Topology::HubDominated {
                repeat: 0.10,
                hub_bias: 1.25,
                local: 0.4,
            },
        }
    }

    /// All seven paper datasets in Table II order.
    pub fn paper_datasets() -> Vec<DatasetSpec> {
        vec![
            Self::eu_email(),
            Self::contact(),
            Self::facebook(),
            Self::coauthor(),
            Self::prosper(),
            Self::slashdot(),
            Self::digg(),
        ]
    }

    /// A reduced copy for fast test/CI runs: scales nodes and links by
    /// `factor` (at least 30 nodes / 60 links), keeping the time span.
    /// Community counts scale along so the per-community size — the
    /// structure the generator relies on — is preserved.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let mut s = self.clone();
        s.nodes = ((s.nodes as f64 * factor) as usize).max(30);
        s.target_links = ((s.target_links as f64 * factor) as usize).max(60);
        match &mut s.topology {
            Topology::Community { communities, .. } => {
                *communities = ((*communities as f64 * factor) as usize).max(4);
            }
            Topology::RepeatedContact { groups, .. } => {
                *groups = ((*groups as f64 * factor) as usize).max(3);
            }
            Topology::HubDominated { .. } => {}
        }
        s
    }

    /// Expected average multigraph degree `2|E| / |V|`.
    pub fn expected_avg_degree(&self) -> f64 {
        2.0 * self.target_links as f64 / self.nodes as f64
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (|V|={}, |E|={}, span={})",
            self.name, self.nodes, self.target_links, self.time_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_statistics() {
        let all = DatasetSpec::paper_datasets();
        assert_eq!(all.len(), 7);
        let eu = &all[0];
        assert_eq!(
            (eu.nodes, eu.target_links, eu.time_span),
            (309, 61_046, 803)
        );
        assert!((eu.expected_avg_degree() - 395.12).abs() < 0.1);
        let digg = &all[6];
        assert!((digg.expected_avg_degree() - 5.98).abs() < 0.01);
    }

    #[test]
    fn scaled_preserves_span_and_bounds() {
        let s = DatasetSpec::facebook().scaled(0.01);
        assert_eq!(s.time_span, 366);
        assert!(s.nodes >= 30);
        assert!(s.target_links >= 60);
        assert!(s.nodes < 4313);
    }

    #[test]
    fn display_contains_name() {
        assert!(DatasetSpec::digg().to_string().contains("Digg"));
    }
}
