//! Dataset specifications: the paper's Table II datasets, the synthetic
//! scale ladder, and the validated [`DatasetSpec::builder`].

use std::error::Error;
use std::fmt;

/// Qualitative topology class of a generated network.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Topology {
    /// Small population, heavy pair repetition (email / proximity traces).
    RepeatedContact {
        /// Probability an event repeats an already-linked pair
        /// (Pólya-urn reinforced by multiplicity).
        repeat: f64,
        /// Latent groups (departments / locations) fresh contacts form in.
        groups: usize,
        /// Probability a fresh contact stays inside one group.
        intra: f64,
        /// Per-event probability that one random node migrates to another
        /// group (re-orgs / mobility), keeping fresh intra-group pairs —
        /// the predictable positives — flowing even once old groups
        /// saturate.
        drift: f64,
    },
    /// Degree-preferential attachment with a celebrity core
    /// (reply / wall-post / loan networks).
    HubDominated {
        /// Probability an event repeats an already-linked pair.
        repeat: f64,
        /// Exponent on the degree bias (1.0 = classic preferential
        /// attachment; larger concentrates on the hubs).
        hub_bias: f64,
        /// Probability a fresh link closes a triangle around the chosen
        /// hub (two-hop locality) instead of reaching a uniform stranger.
        /// Real wall-post/reply links are local — raw degree alone is a
        /// weak predictor (the paper's PA scores 0.303 on Facebook).
        local: f64,
    },
    /// Small dense groups with occasional bridges (co-authorship).
    Community {
        /// Number of communities nodes are partitioned into.
        communities: usize,
        /// Probability a link stays inside one community.
        intra: f64,
        /// Probability an event repeats an already-linked pair.
        repeat: f64,
        /// Per-event probability that one random node migrates to another
        /// community. Drift makes old links stale — the property that
        /// rewards time-aware features over all-time link counts.
        drift: f64,
    },
}

impl Topology {
    /// All `(name, value)` probability parameters of the class, for
    /// validation.
    fn probabilities(&self) -> Vec<(&'static str, f64)> {
        match *self {
            Topology::RepeatedContact {
                repeat,
                intra,
                drift,
                ..
            } => vec![("repeat", repeat), ("intra", intra), ("drift", drift)],
            Topology::HubDominated { repeat, local, .. } => {
                vec![("repeat", repeat), ("local", local)]
            }
            Topology::Community {
                intra,
                repeat,
                drift,
                ..
            } => vec![("intra", intra), ("repeat", repeat), ("drift", drift)],
        }
    }
}

/// A typed reason a [`DatasetSpec`] is invalid, produced by
/// [`DatasetSpecBuilder::build`] (and converted into the facade's
/// `SsfError::Config` by `ssf-repro`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpecError {
    /// The dataset name is empty.
    EmptyName,
    /// Fewer than two nodes: no pair to link.
    TooFewNodes {
        /// The requested node count.
        nodes: usize,
    },
    /// Fewer links than `nodes - 1`: the growth phase attaches every node
    /// with one event, so the graph cannot cover `|V|` nodes.
    TooFewLinks {
        /// The requested link count.
        links: usize,
        /// The minimum for the requested node count.
        min: usize,
    },
    /// A time span of zero ticks: timestamps sweep `[1, span]`.
    ZeroTimeSpan,
    /// No topology class was supplied to the builder.
    MissingTopology,
    /// A probability parameter is outside `[0, 1]`.
    InvalidProbability {
        /// Which parameter (`"repeat"`, `"intra"`, …).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A group/community count of zero, or a degree bias below 1.
    InvalidTopology {
        /// Which invariant failed, human-readable.
        detail: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyName => write!(f, "dataset name is empty"),
            SpecError::TooFewNodes { nodes } => {
                write!(f, "need at least 2 nodes, got {nodes}")
            }
            SpecError::TooFewLinks { links, min } => write!(
                f,
                "need at least {min} links to cover every node, got {links}"
            ),
            SpecError::ZeroTimeSpan => {
                write!(f, "time span must be at least 1 tick")
            }
            SpecError::MissingTopology => {
                write!(f, "no topology class supplied")
            }
            SpecError::InvalidProbability { field, value } => write!(
                f,
                "probability `{field}` must be in [0, 1], got {value}"
            ),
            SpecError::InvalidTopology { detail } => {
                write!(f, "invalid topology: {detail}")
            }
        }
    }
}

impl Error for SpecError {}

/// One paper dataset (Table II), as a typed name for
/// [`ScaleTier::Paper`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// Eu-Email — institutional email.
    EuEmail,
    /// Contact — wireless proximity.
    Contact,
    /// Facebook — wall posts.
    Facebook,
    /// Co-author — DBLP subset.
    Coauthor,
    /// Prosper — loans.
    Prosper,
    /// Slashdot — replies.
    Slashdot,
    /// Digg — replies, sparsest.
    Digg,
}

impl PaperDataset {
    /// All seven paper datasets in Table II order.
    pub fn all() -> [PaperDataset; 7] {
        [
            PaperDataset::EuEmail,
            PaperDataset::Contact,
            PaperDataset::Facebook,
            PaperDataset::Coauthor,
            PaperDataset::Prosper,
            PaperDataset::Slashdot,
            PaperDataset::Digg,
        ]
    }

    /// The spec of this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            PaperDataset::EuEmail => DatasetSpec::eu_email(),
            PaperDataset::Contact => DatasetSpec::contact(),
            PaperDataset::Facebook => DatasetSpec::facebook(),
            PaperDataset::Coauthor => DatasetSpec::coauthor(),
            PaperDataset::Prosper => DatasetSpec::prosper(),
            PaperDataset::Slashdot => DatasetSpec::slashdot(),
            PaperDataset::Digg => DatasetSpec::digg(),
        }
    }
}

/// A rung of the synthetic scale ladder, or one of the paper datasets.
///
/// The synthetic tiers share one topology family (drifting communities
/// with Pólya pair repetition) and grow only in size, so cross-tier
/// comparisons measure scale, not topology. Tier time spans are coarse
/// relative to the link count — consecutive same-row timestamps stay
/// close, which is what the compact storage's delta encoding rewards
/// (and what real traces look like: many events per tick).
///
/// | tier | nodes | links | span |
/// |------|-------|-------|------|
/// | S    | 10 000 | 50 000 | 4 000 |
/// | M    | 100 000 | 300 000 | 8 000 |
/// | L    | 400 000 | 1 000 000 | 16 000 |
/// | XL   | 1 000 000 | 2 500 000 | 30 000 |
/// | Huge | 2 000 000 | 5 000 000 | 50 000 |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ScaleTier {
    /// 10k nodes / 50k links — fits every mode, CI-fast.
    S,
    /// 100k nodes / 300k links — first compact-by-default rung.
    M,
    /// 400k nodes / 1M links — the acceptance rung for bytes/link.
    L,
    /// 1M nodes / 2.5M links.
    Xl,
    /// 2M nodes / 5M links — headroom rung, not exercised by CI.
    Huge,
    /// One of the seven Table II datasets.
    Paper(PaperDataset),
}

impl ScaleTier {
    /// All synthetic rungs, small to large.
    pub fn synthetic() -> [ScaleTier; 5] {
        [
            ScaleTier::S,
            ScaleTier::M,
            ScaleTier::L,
            ScaleTier::Xl,
            ScaleTier::Huge,
        ]
    }

    /// The tier's short name (`"S"`, `"M"`, …, or the paper dataset name).
    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::S => "S",
            ScaleTier::M => "M",
            ScaleTier::L => "L",
            ScaleTier::Xl => "XL",
            ScaleTier::Huge => "Huge",
            ScaleTier::Paper(p) => p.spec().name,
        }
    }
}

/// Parameters of one dataset: name, Table II statistics and topology class.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// Target node count `|V|`.
    pub nodes: usize,
    /// Target timestamped link count `|E|` (multi-links counted).
    pub target_links: usize,
    /// Number of timestamp ticks ("Time Span" of Table II).
    pub time_span: u32,
    /// Topology class driving the generator.
    pub topology: Topology,
}

impl DatasetSpec {
    /// Starts a validated spec builder. See [`DatasetSpecBuilder`].
    ///
    /// ```rust
    /// use datasets::{DatasetSpec, Topology};
    ///
    /// let spec = DatasetSpec::builder("my-trace")
    ///     .nodes(500)
    ///     .target_links(5_000)
    ///     .time_span(100)
    ///     .topology(Topology::HubDominated {
    ///         repeat: 0.3,
    ///         hub_bias: 1.1,
    ///         local: 0.5,
    ///     })
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec.nodes, 500);
    /// ```
    pub fn builder(name: &'static str) -> DatasetSpecBuilder {
        DatasetSpecBuilder {
            name,
            nodes: 0,
            target_links: 0,
            time_span: 0,
            topology: None,
        }
    }

    /// The spec of one [`ScaleTier`] rung — infallible (every rung is a
    /// known-valid spec).
    pub fn tier(tier: ScaleTier) -> DatasetSpec {
        let synthetic = |name, nodes: usize, links, span| DatasetSpec {
            name,
            nodes,
            target_links: links,
            time_span: span,
            topology: Topology::Community {
                communities: (nodes / 250).max(4),
                intra: 0.8,
                repeat: 0.3,
                drift: 0.005,
            },
        };
        match tier {
            ScaleTier::S => synthetic("scale-s", 10_000, 50_000, 4_000),
            ScaleTier::M => synthetic("scale-m", 100_000, 300_000, 8_000),
            ScaleTier::L => synthetic("scale-l", 400_000, 1_000_000, 16_000),
            ScaleTier::Xl => {
                synthetic("scale-xl", 1_000_000, 2_500_000, 30_000)
            }
            ScaleTier::Huge => {
                synthetic("scale-huge", 2_000_000, 5_000_000, 50_000)
            }
            ScaleTier::Paper(p) => p.spec(),
        }
    }

    /// Checks every invariant the builder enforces; constructor-made specs
    /// always pass.
    ///
    /// # Errors
    ///
    /// The first violated [`SpecError`] invariant.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        if self.nodes < 2 {
            return Err(SpecError::TooFewNodes { nodes: self.nodes });
        }
        if self.target_links < self.nodes - 1 {
            return Err(SpecError::TooFewLinks {
                links: self.target_links,
                min: self.nodes - 1,
            });
        }
        if self.time_span == 0 {
            return Err(SpecError::ZeroTimeSpan);
        }
        for (field, value) in self.topology.probabilities() {
            if !(0.0..=1.0).contains(&value) {
                return Err(SpecError::InvalidProbability { field, value });
            }
        }
        match self.topology {
            Topology::RepeatedContact { groups: 0, .. } => {
                return Err(SpecError::InvalidTopology {
                    detail: "zero groups".to_string(),
                });
            }
            Topology::Community { communities: 0, .. } => {
                return Err(SpecError::InvalidTopology {
                    detail: "zero communities".to_string(),
                });
            }
            Topology::HubDominated { hub_bias, .. } if hub_bias < 1.0 => {
                return Err(SpecError::InvalidTopology {
                    detail: format!("hub_bias {hub_bias} below 1.0"),
                });
            }
            _ => {}
        }
        Ok(())
    }

    /// Eu-Email: |V|=309, |E|=61046, span 803 h — institutional email.
    pub fn eu_email() -> Self {
        DatasetSpec {
            name: "Eu-email",
            nodes: 309,
            target_links: 61_046,
            time_span: 803,
            topology: Topology::RepeatedContact {
                repeat: 0.82,
                groups: 18,
                intra: 0.85,
                drift: 0.01,
            },
        }
    }

    /// Contact: |V|=274, |E|=28245, span 96 h — wireless proximity.
    pub fn contact() -> Self {
        DatasetSpec {
            name: "Contact",
            nodes: 274,
            target_links: 28_245,
            time_span: 96,
            topology: Topology::RepeatedContact {
                repeat: 0.75,
                groups: 14,
                intra: 0.8,
                drift: 0.01,
            },
        }
    }

    /// Facebook: |V|=4313, |E|=42346, span 366 d — wall posts.
    pub fn facebook() -> Self {
        DatasetSpec {
            name: "Facebook",
            nodes: 4313,
            target_links: 42_346,
            time_span: 366,
            topology: Topology::HubDominated {
                repeat: 0.35,
                hub_bias: 1.0,
                local: 0.7,
            },
        }
    }

    /// Co-author: |V|=744, |E|=7034, span 20 y — DBLP subset.
    pub fn coauthor() -> Self {
        DatasetSpec {
            name: "Coauthor",
            nodes: 744,
            target_links: 7034,
            time_span: 20,
            topology: Topology::Community {
                communities: 60,
                intra: 0.9,
                repeat: 0.25,
                drift: 0.1,
            },
        }
    }

    /// Prosper: |V|=1264, |E|=8874, span 60 m — loans.
    pub fn prosper() -> Self {
        DatasetSpec {
            name: "Prosper",
            nodes: 1264,
            target_links: 8874,
            time_span: 60,
            topology: Topology::HubDominated {
                repeat: 0.15,
                hub_bias: 1.1,
                local: 0.6,
            },
        }
    }

    /// Slashdot: |V|=2680, |E|=9904, span 240 d — replies.
    pub fn slashdot() -> Self {
        DatasetSpec {
            name: "Slashdot",
            nodes: 2680,
            target_links: 9904,
            time_span: 240,
            topology: Topology::HubDominated {
                repeat: 0.12,
                hub_bias: 1.2,
                local: 0.45,
            },
        }
    }

    /// Digg: |V|=3215, |E|=9618, span 240 h — replies, sparsest.
    pub fn digg() -> Self {
        DatasetSpec {
            name: "Digg",
            nodes: 3215,
            target_links: 9618,
            time_span: 240,
            topology: Topology::HubDominated {
                repeat: 0.10,
                hub_bias: 1.25,
                local: 0.4,
            },
        }
    }

    /// All seven paper datasets in Table II order.
    pub fn paper_datasets() -> Vec<DatasetSpec> {
        PaperDataset::all().iter().map(|p| p.spec()).collect()
    }

    /// A reduced copy for fast test/CI runs: scales nodes and links by
    /// `factor` (at least 30 nodes / 60 links), keeping the time span.
    /// Community counts scale along so the per-community size — the
    /// structure the generator relies on — is preserved.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let mut s = self.clone();
        s.nodes = ((s.nodes as f64 * factor) as usize).max(30);
        s.target_links = ((s.target_links as f64 * factor) as usize).max(60);
        match &mut s.topology {
            Topology::Community { communities, .. } => {
                *communities = ((*communities as f64 * factor) as usize).max(4);
            }
            Topology::RepeatedContact { groups, .. } => {
                *groups = ((*groups as f64 * factor) as usize).max(3);
            }
            Topology::HubDominated { .. } => {}
        }
        s
    }

    /// Expected average multigraph degree `2|E| / |V|`.
    pub fn expected_avg_degree(&self) -> f64 {
        2.0 * self.target_links as f64 / self.nodes as f64
    }
}

impl fmt::Display for DatasetSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (|V|={}, |E|={}, span={})",
            self.name, self.nodes, self.target_links, self.time_span
        )
    }
}

/// Validated builder for custom [`DatasetSpec`]s, mirroring the facade's
/// `OnlinePredictorConfig` pattern: setters are infallible, every
/// invariant is checked once in [`build`](DatasetSpecBuilder::build) and
/// violations come back as typed [`SpecError`]s instead of generator
/// panics deep inside a run.
#[derive(Debug, Clone)]
#[must_use = "call .build() to obtain the validated spec"]
pub struct DatasetSpecBuilder {
    name: &'static str,
    nodes: usize,
    target_links: usize,
    time_span: u32,
    topology: Option<Topology>,
}

impl DatasetSpecBuilder {
    /// Target node count `|V|` (at least 2).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Target timestamped link count `|E|` (at least `nodes - 1`).
    pub fn target_links(mut self, links: usize) -> Self {
        self.target_links = links;
        self
    }

    /// Number of timestamp ticks (at least 1).
    pub fn time_span(mut self, span: u32) -> Self {
        self.time_span = span;
        self
    }

    /// Topology class driving the generator (required).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// The first violated [`SpecError`] invariant.
    pub fn build(self) -> Result<DatasetSpec, SpecError> {
        let topology = self.topology.ok_or(SpecError::MissingTopology)?;
        let spec = DatasetSpec {
            name: self.name,
            nodes: self.nodes,
            target_links: self.target_links,
            time_span: self.time_span,
            topology,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table2_statistics() {
        let all = DatasetSpec::paper_datasets();
        assert_eq!(all.len(), 7);
        let eu = &all[0];
        assert_eq!(
            (eu.nodes, eu.target_links, eu.time_span),
            (309, 61_046, 803)
        );
        assert!((eu.expected_avg_degree() - 395.12).abs() < 0.1);
        let digg = &all[6];
        assert!((digg.expected_avg_degree() - 5.98).abs() < 0.01);
    }

    #[test]
    fn scaled_preserves_span_and_bounds() {
        let s = DatasetSpec::facebook().scaled(0.01);
        assert_eq!(s.time_span, 366);
        assert!(s.nodes >= 30);
        assert!(s.target_links >= 60);
        assert!(s.nodes < 4313);
    }

    #[test]
    fn display_contains_name() {
        assert!(DatasetSpec::digg().to_string().contains("Digg"));
    }

    #[test]
    fn builder_round_trips_a_valid_spec() {
        let spec = DatasetSpec::builder("custom")
            .nodes(100)
            .target_links(1000)
            .time_span(50)
            .topology(Topology::Community {
                communities: 8,
                intra: 0.9,
                repeat: 0.2,
                drift: 0.05,
            })
            .build()
            .unwrap();
        assert_eq!(spec.name, "custom");
        assert_eq!(spec.nodes, 100);
        spec.validate().unwrap();
    }

    #[test]
    fn builder_rejects_each_invalid_field_with_a_typed_error() {
        let topo = Topology::HubDominated {
            repeat: 0.3,
            hub_bias: 1.0,
            local: 0.5,
        };
        let base = || {
            DatasetSpec::builder("t")
                .nodes(100)
                .target_links(1000)
                .time_span(10)
                .topology(topo)
        };
        assert_eq!(
            DatasetSpec::builder("t").build(),
            Err(SpecError::MissingTopology)
        );
        assert_eq!(
            base().nodes(1).build(),
            Err(SpecError::TooFewNodes { nodes: 1 })
        );
        assert_eq!(
            base().target_links(5).build(),
            Err(SpecError::TooFewLinks { links: 5, min: 99 })
        );
        assert_eq!(base().time_span(0).build(), Err(SpecError::ZeroTimeSpan));
        assert_eq!(
            base()
                .topology(Topology::HubDominated {
                    repeat: 1.5,
                    hub_bias: 1.0,
                    local: 0.5,
                })
                .build(),
            Err(SpecError::InvalidProbability {
                field: "repeat",
                value: 1.5
            })
        );
        assert!(matches!(
            base()
                .topology(Topology::Community {
                    communities: 0,
                    intra: 0.5,
                    repeat: 0.5,
                    drift: 0.0,
                })
                .build(),
            Err(SpecError::InvalidTopology { .. })
        ));
        assert_eq!(
            DatasetSpec::builder("")
                .nodes(2)
                .target_links(1)
                .time_span(1)
                .topology(topo)
                .build(),
            Err(SpecError::EmptyName)
        );
    }

    #[test]
    fn spec_error_display_is_actionable() {
        let e = SpecError::TooFewLinks { links: 5, min: 99 };
        let text = e.to_string();
        assert!(text.contains('5') && text.contains("99"), "{text}");
        assert!(SpecError::InvalidProbability {
            field: "intra",
            value: -0.2
        }
        .to_string()
        .contains("intra"));
    }

    #[test]
    fn every_tier_is_valid_and_monotone_in_links() {
        let mut last = 0usize;
        for tier in ScaleTier::synthetic() {
            let spec = DatasetSpec::tier(tier);
            spec.validate().unwrap();
            assert!(
                spec.target_links > last,
                "{tier:?} not larger than predecessor"
            );
            last = spec.target_links;
        }
        for p in PaperDataset::all() {
            DatasetSpec::tier(ScaleTier::Paper(p)).validate().unwrap();
        }
        assert_eq!(DatasetSpec::tier(ScaleTier::S).name, "scale-s");
        assert_eq!(
            DatasetSpec::tier(ScaleTier::Paper(PaperDataset::Digg)).name,
            "Digg"
        );
        assert_eq!(ScaleTier::Xl.name(), "XL");
        assert_eq!(ScaleTier::Paper(PaperDataset::Coauthor).name(), "Coauthor");
    }
}
