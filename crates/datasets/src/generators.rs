//! Synthetic temporal-network generators.
//!
//! Every generator emits exactly `spec.target_links` timestamped events
//! whose timestamps sweep `[1, spec.time_span]` in order — the same
//! "links emerge as a stream" model the paper formalizes in §III. A growth
//! phase first attaches every node to the evolving network (so `|V|` is hit
//! exactly and the graph is connected), then an activity phase draws the
//! remaining events from the topology class:
//!
//! * repetition — with probability `repeat` an event re-draws a random
//!   *past event's* pair, i.e. a Pólya urn over pairs: pairs with many
//!   links attract more (the multi-link reinforcement that rWRA and the
//!   normalized influence are designed to exploit);
//! * otherwise a fresh interaction is drawn per topology (preferential
//!   attachment for hub networks, intra-community pairs for co-authorship,
//!   uniform mixing for contact traces).
//!
//! Both the urn and the preferential-attachment bag are *recency-drifted*
//! ([`RECENCY_BIAS`]): half the draws come from the most recent slice of
//! events. Real reply/contact traces have exactly this temporal locality —
//! threads die, celebrities rise and fall — and it is the property that
//! makes time-aware features (the paper's premise) informative: without
//! drift, all-time link counts would dominate any recency weighting.
//!
//! # Two memory regimes
//!
//! Specs below [`STREAM_THRESHOLD`] nodes use the *dense* state: the full
//! event-pair log and endpoint bag, giving exact Pólya / preferential
//! sampling. That state is two full-edge-list copies — irrelevant at
//! paper scale (≤ 61k events), prohibitive at the million-node scale
//! tiers. At or above the threshold the generator switches to *streamed*
//! state: fixed-capacity recency rings plus uniform reservoirs stand in
//! for the full logs, so auxiliary memory is `O(|V| + W)` for a constant
//! window `W` and the only `O(|E|)` allocation is the network being
//! built. Paper specs are all far below the threshold, so their output is
//! bit-for-bit unchanged by the streamed path's existence.

use dyngraph::{DynamicNetwork, NodeId, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{DatasetSpec, Topology};

/// Probability that an urn/bag draw is restricted to the most recent
/// [`RECENT_SLICE`] fraction of events (temporal drift).
pub const RECENCY_BIAS: f64 = 0.5;

/// The fraction of most recent events that recency-biased draws use.
pub const RECENT_SLICE: f64 = 0.1;

/// Node count at which generation switches from the dense full-log state
/// to the bounded streamed state. Every paper dataset is far below this,
/// every [`crate::ScaleTier`] rung at or above it.
pub const STREAM_THRESHOLD: usize = 10_000;

/// Capacity of the streamed state's recency ring and reservoirs.
const STREAM_WINDOW: usize = 1 << 16;

/// Per-node neighbor-ring capacity in the streamed state (drives triadic
/// closure for hub topologies).
const STREAM_NBR_CAP: usize = 4;

/// Generates a dynamic network for `spec`, deterministically from `seed`.
///
/// Deprecated free-function form of [`DatasetSpec::generate`].
///
/// # Panics
///
/// Panics if the spec has fewer than 2 nodes or fewer links than nodes − 1
/// (the growth phase needs one event per new node).
#[deprecated(note = "use the `DatasetSpec::generate` method instead")]
pub fn generate(spec: &DatasetSpec, seed: u64) -> DynamicNetwork {
    spec.generate(seed)
}

impl DatasetSpec {
    /// Generates the dynamic network of this spec, deterministically from
    /// `seed`.
    ///
    /// Specs with at least [`STREAM_THRESHOLD`] nodes are built through
    /// the streamed generator state (auxiliary memory bounded by a
    /// constant window instead of the full event log); smaller specs use
    /// the dense state. Output is deterministic per `(spec, seed)` in
    /// both regimes.
    ///
    /// # Panics
    ///
    /// Panics if the spec has fewer than 2 nodes or fewer links than
    /// nodes − 1 (the growth phase needs one event per new node) —
    /// specs from [`DatasetSpec::builder`] have already ruled both out.
    pub fn generate(&self, seed: u64) -> DynamicNetwork {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            self.target_links >= self.nodes - 1,
            "need at least |V|-1 links to cover every node"
        );
        if self.nodes >= STREAM_THRESHOLD {
            generate_streamed(self, seed)
        } else {
            generate_dense(self, seed)
        }
    }
}

/// Dense-state generation: exact Pólya urn and endpoint bag.
fn generate_dense(spec: &DatasetSpec, seed: u64) -> DynamicNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = GenState::new(spec, &mut rng);

    let m = spec.target_links;
    let mut g = DynamicNetwork::with_node_capacity(spec.nodes);
    for event in 0..m {
        let t = timestamp_of(event, m, spec.time_span);
        let (u, v) = if event == 0 {
            (0, 1)
        } else if event < spec.nodes - 1 {
            state.growth_pair(event as NodeId + 1, &mut rng)
        } else {
            state.activity_pair(&mut rng)
        };
        state.record(u, v);
        g.add_link(u, v, t);
    }
    g
}

/// Streamed generation: bounded rings/reservoirs instead of full logs.
fn generate_streamed(spec: &DatasetSpec, seed: u64) -> DynamicNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = StreamState::new(spec, &mut rng);

    let m = spec.target_links;
    let mut g = DynamicNetwork::with_node_capacity(spec.nodes);
    for event in 0..m {
        let t = timestamp_of(event, m, spec.time_span);
        let (u, v) = if event == 0 {
            (0, 1)
        } else if event < spec.nodes - 1 {
            state.growth_pair(event as NodeId + 1, &mut rng)
        } else {
            state.activity_pair(&mut rng)
        };
        state.record(u, v, &mut rng);
        g.add_link(u, v, t);
    }
    g
}

/// Timestamp of the `event`-th of `m` events over `[1, span]`: ticks are
/// filled evenly in event order, the last event always lands on `span`.
fn timestamp_of(event: usize, m: usize, span: u32) -> Timestamp {
    ((((event as u64) + 1) * span as u64) / m as u64).max(1) as Timestamp
}

/// Random community labels for `nodes` nodes over `communities` groups,
/// with every group guaranteed non-empty (re-homed from the largest).
/// Members are pushed in ascending node order.
fn assign_communities(
    nodes: usize,
    communities: usize,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<Vec<NodeId>>) {
    let mut of = Vec::with_capacity(nodes);
    let mut members = vec![Vec::new(); communities];
    for node in 0..nodes {
        let c = rng.gen_range(0..communities);
        of.push(c);
        members[c].push(node as NodeId);
    }
    for c in 0..communities {
        if members[c].is_empty() {
            #[allow(clippy::expect_used)] // communities ≥ 1
            let donor = (0..communities)
                .max_by_key(|&d| members[d].len())
                .expect("communities exist");
            #[allow(clippy::expect_used)] // donor holds ≥ 1
            let node = members[donor].pop().expect("non-empty donor");
            of[node as usize] = c;
            members[c].push(node);
        }
    }
    (of, members)
}

/// A uniform pair inside one (size-weighted) group; falls back to a
/// uniform global pair for degenerate groups.
fn intra_group_pair(
    nodes: usize,
    community_of: &[usize],
    members: &[Vec<NodeId>],
    rng: &mut StdRng,
) -> (NodeId, NodeId) {
    for _ in 0..16 {
        let c = community_of[rng.gen_range(0..nodes)];
        let group = &members[c];
        if group.len() >= 2 {
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a != b {
                return (a, b);
            }
        } else {
            break;
        }
    }
    uniform_pair(nodes, rng)
}

/// Community drift: move one random node into a different community.
fn migrate_random_node(
    nodes: usize,
    community_of: &mut [usize],
    members: &mut [Vec<NodeId>],
    rng: &mut StdRng,
) {
    let n_comms = members.len();
    if n_comms < 2 {
        return;
    }
    let node = rng.gen_range(0..nodes) as NodeId;
    let old = community_of[node as usize];
    // Never empty a community.
    if members[old].len() <= 1 {
        return;
    }
    let mut new = rng.gen_range(0..n_comms);
    while new == old {
        new = rng.gen_range(0..n_comms);
    }
    members[old].retain(|&m| m != node);
    members[new].push(node);
    community_of[node as usize] = new;
}

fn uniform_pair(nodes: usize, rng: &mut StdRng) -> (NodeId, NodeId) {
    let a = rng.gen_range(0..nodes as NodeId);
    let mut b = rng.gen_range(0..nodes as NodeId);
    while b == a {
        b = rng.gen_range(0..nodes as NodeId);
    }
    (a, b)
}

/// Dense generator state: the endpoint bag (degree-proportional
/// sampling), the event-pair log (Pólya repetition) and community labels.
struct GenState {
    topology: Topology,
    nodes: usize,
    /// Every event appends both endpoints: sampling uniformly from the bag
    /// is sampling nodes proportionally to multigraph degree.
    endpoint_bag: Vec<NodeId>,
    /// Every event's pair: uniform sampling = multiplicity-proportional
    /// pair repetition.
    pair_log: Vec<(NodeId, NodeId)>,
    /// Community id per node (Community topology only).
    community_of: Vec<usize>,
    /// Members per community.
    members: Vec<Vec<NodeId>>,
    /// Multigraph degree per node (tournament tiebreak for `hub_bias > 1`).
    degree: Vec<u32>,
    /// Per-node incident-neighbor log (duplicates kept, so a uniform draw
    /// is a degree-weighted neighbor sample) — drives triadic closure.
    nbrs: Vec<Vec<NodeId>>,
}

impl GenState {
    fn new(spec: &DatasetSpec, rng: &mut StdRng) -> Self {
        let group_count = match spec.topology {
            Topology::Community { communities, .. } => Some(communities),
            Topology::RepeatedContact { groups, .. } => Some(groups),
            Topology::HubDominated { .. } => None,
        };
        let (community_of, members) = match group_count {
            Some(communities) => {
                assign_communities(spec.nodes, communities, rng)
            }
            None => (Vec::new(), Vec::new()),
        };
        GenState {
            topology: spec.topology,
            nodes: spec.nodes,
            endpoint_bag: Vec::with_capacity(spec.target_links * 2),
            pair_log: Vec::with_capacity(spec.target_links),
            community_of,
            members,
            degree: vec![0; spec.nodes],
            nbrs: vec![Vec::new(); spec.nodes],
        }
    }

    fn record(&mut self, u: NodeId, v: NodeId) {
        self.endpoint_bag.push(u);
        self.endpoint_bag.push(v);
        self.pair_log.push((u, v));
        self.degree[u as usize] += 1;
        self.degree[v as usize] += 1;
        self.nbrs[u as usize].push(v);
        self.nbrs[v as usize].push(u);
    }

    /// Growth phase: attach `newcomer` to the existing network.
    fn growth_pair(
        &mut self,
        newcomer: NodeId,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let anchor = match self.topology {
            Topology::HubDominated { hub_bias, .. } => {
                self.degree_biased_below(newcomer, hub_bias, rng)
            }
            Topology::Community { .. } | Topology::RepeatedContact { .. } => {
                // Prefer an already-attached member of the same group.
                let c = self.community_of[newcomer as usize];
                let candidates: Vec<NodeId> = self.members[c]
                    .iter()
                    .copied()
                    .filter(|&n| n < newcomer)
                    .collect();
                if candidates.is_empty() {
                    rng.gen_range(0..newcomer)
                } else {
                    candidates[rng.gen_range(0..candidates.len())]
                }
            }
        };
        (anchor, newcomer)
    }

    /// Activity phase: repetition or a fresh topology-specific pair.
    fn activity_pair(&mut self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let drift = match self.topology {
            Topology::Community { drift, .. } => drift,
            Topology::RepeatedContact { drift, .. } => drift,
            Topology::HubDominated { .. } => 0.0,
        };
        if drift > 0.0 && rng.gen_bool(drift) {
            migrate_random_node(
                self.nodes,
                &mut self.community_of,
                &mut self.members,
                rng,
            );
        }
        let repeat = match self.topology {
            Topology::RepeatedContact { repeat, .. } => repeat,
            Topology::HubDominated { repeat, .. } => repeat,
            Topology::Community { repeat, .. } => repeat,
        };
        if rng.gen_bool(repeat) {
            // Recency-drifted Pólya urn over past events.
            return self.pair_log[self.drifted_index(self.pair_log.len(), rng)];
        }
        match self.topology {
            Topology::RepeatedContact { intra, .. }
            | Topology::Community { intra, .. } => {
                if rng.gen_bool(intra) {
                    intra_group_pair(
                        self.nodes,
                        &self.community_of,
                        &self.members,
                        rng,
                    )
                } else {
                    uniform_pair(self.nodes, rng)
                }
            }
            Topology::HubDominated {
                hub_bias, local, ..
            } => {
                let hub = self.degree_biased(hub_bias, rng);
                if rng.gen_bool(local) {
                    if let Some(v) = self.two_hop_neighbor(hub, rng) {
                        return (hub, v);
                    }
                }
                let mut other = rng.gen_range(0..self.nodes as NodeId);
                while other == hub {
                    other = rng.gen_range(0..self.nodes as NodeId);
                }
                (hub, other)
            }
        }
    }

    /// Triadic closure: a random neighbor-of-neighbor of `hub` that is not
    /// `hub` itself. `None` when the local neighborhood is too thin.
    fn two_hop_neighbor(
        &self,
        hub: NodeId,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let n1 = &self.nbrs[hub as usize];
        if n1.is_empty() {
            return None;
        }
        for _ in 0..8 {
            let w = n1[rng.gen_range(0..n1.len())];
            let n2 = &self.nbrs[w as usize];
            if n2.is_empty() {
                continue;
            }
            let v = n2[rng.gen_range(0..n2.len())];
            if v != hub {
                return Some(v);
            }
        }
        None
    }

    /// Degree-proportional node pick, sharpened by `bias`: a tournament of
    /// degree-proportional bag draws keeping the highest-degree candidate.
    /// One draw (`bias = 1`) is classic preferential attachment; the
    /// fractional part of `bias` adds an extra draw with that probability,
    /// interpolating the sharpening smoothly.
    fn degree_biased(&self, bias: f64, rng: &mut StdRng) -> NodeId {
        let draws = bias.floor().max(1.0) as usize
            + usize::from(
                bias.fract() > 0.0 && rng.gen_bool(bias.fract().min(1.0)),
            );
        #[allow(clippy::expect_used)] // draws ≥ 1 by construction
        (0..draws)
            .map(|_| {
                self.endpoint_bag
                    [self.drifted_index(self.endpoint_bag.len(), rng)]
            })
            .max_by_key(|&n| self.degree[n as usize])
            .expect("at least one draw")
    }

    /// Index into a chronologically ordered log: with [`RECENCY_BIAS`]
    /// probability restricted to the last [`RECENT_SLICE`] of entries.
    fn drifted_index(&self, len: usize, rng: &mut StdRng) -> usize {
        debug_assert!(len > 0);
        if rng.gen_bool(RECENCY_BIAS) {
            let slice = ((len as f64 * RECENT_SLICE) as usize).max(1);
            len - 1 - rng.gen_range(0..slice)
        } else {
            rng.gen_range(0..len)
        }
    }

    /// Same, restricted to nodes `< limit` (growth phase).
    fn degree_biased_below(
        &self,
        limit: NodeId,
        bias: f64,
        rng: &mut StdRng,
    ) -> NodeId {
        for _ in 0..64 {
            let n = self.degree_biased(bias, rng);
            if n < limit {
                return n;
            }
        }
        rng.gen_range(0..limit)
    }
}

/// Streamed generator state: the full pair log and endpoint bag are
/// replaced by a recency ring (the "last slice" of [`RECENCY_BIAS`]
/// draws) and uniform Algorithm-R reservoirs (the "all time" draws — a
/// uniform sample of the endpoint stream *is* a degree-proportional node
/// sample). Per-node neighbor logs become fixed-capacity rings. All
/// auxiliary state is `O(|V| + STREAM_WINDOW)`.
struct StreamState {
    topology: Topology,
    nodes: usize,
    /// Ring of the most recent events (pairs), overwritten in place.
    recent: Vec<(NodeId, NodeId)>,
    recent_pos: usize,
    /// Uniform reservoir over all events (Algorithm R).
    pair_sample: Vec<(NodeId, NodeId)>,
    /// Uniform reservoir over all endpoint occurrences: a uniform draw is
    /// degree-proportional node sampling, exactly what the dense
    /// endpoint bag provides.
    endpoint_sample: Vec<NodeId>,
    /// Events recorded so far (reservoir denominators).
    events: u64,
    endpoints: u64,
    community_of: Vec<usize>,
    members: Vec<Vec<NodeId>>,
    degree: Vec<u32>,
    /// Fixed-capacity per-node neighbor rings (`STREAM_NBR_CAP` each),
    /// flat: node `u` owns `nbr_ring[u*CAP .. u*CAP + nbr_len[u]]`.
    nbr_ring: Vec<NodeId>,
    nbr_len: Vec<u8>,
    nbr_pos: Vec<u8>,
}

impl StreamState {
    fn new(spec: &DatasetSpec, rng: &mut StdRng) -> Self {
        let group_count = match spec.topology {
            Topology::Community { communities, .. } => Some(communities),
            Topology::RepeatedContact { groups, .. } => Some(groups),
            Topology::HubDominated { .. } => None,
        };
        let (community_of, members) = match group_count {
            Some(communities) => {
                assign_communities(spec.nodes, communities, rng)
            }
            None => (Vec::new(), Vec::new()),
        };
        let hub = matches!(spec.topology, Topology::HubDominated { .. });
        StreamState {
            topology: spec.topology,
            nodes: spec.nodes,
            recent: Vec::with_capacity(STREAM_WINDOW),
            recent_pos: 0,
            pair_sample: Vec::with_capacity(STREAM_WINDOW),
            endpoint_sample: Vec::with_capacity(STREAM_WINDOW),
            events: 0,
            endpoints: 0,
            community_of,
            members,
            degree: vec![0; spec.nodes],
            // Triadic closure only serves hub topologies; skip the ring
            // allocation otherwise.
            nbr_ring: vec![
                0;
                if hub { spec.nodes * STREAM_NBR_CAP } else { 0 }
            ],
            nbr_len: vec![0; if hub { spec.nodes } else { 0 }],
            nbr_pos: vec![0; if hub { spec.nodes } else { 0 }],
        }
    }

    fn record(&mut self, u: NodeId, v: NodeId, rng: &mut StdRng) {
        self.degree[u as usize] += 1;
        self.degree[v as usize] += 1;
        // Recency ring.
        if self.recent.len() < STREAM_WINDOW {
            self.recent.push((u, v));
        } else {
            self.recent[self.recent_pos] = (u, v);
            self.recent_pos = (self.recent_pos + 1) % STREAM_WINDOW;
        }
        // Algorithm R pair reservoir.
        self.events += 1;
        if self.pair_sample.len() < STREAM_WINDOW {
            self.pair_sample.push((u, v));
        } else {
            let j = rng.gen_range(0..self.events);
            if (j as usize) < STREAM_WINDOW {
                self.pair_sample[j as usize] = (u, v);
            }
        }
        // Algorithm R endpoint reservoir (two pushes per event).
        for n in [u, v] {
            self.endpoints += 1;
            if self.endpoint_sample.len() < STREAM_WINDOW {
                self.endpoint_sample.push(n);
            } else {
                let j = rng.gen_range(0..self.endpoints);
                if (j as usize) < STREAM_WINDOW {
                    self.endpoint_sample[j as usize] = n;
                }
            }
        }
        // Neighbor rings (hub topologies only).
        if !self.nbr_len.is_empty() {
            for (a, b) in [(u, v), (v, u)] {
                let i = a as usize;
                let cap = STREAM_NBR_CAP as u8;
                let slot = self.nbr_pos[i] % cap;
                self.nbr_ring[i * STREAM_NBR_CAP + slot as usize] = b;
                self.nbr_pos[i] = (slot + 1) % cap;
                self.nbr_len[i] = (self.nbr_len[i] + 1).min(cap);
            }
        }
    }

    /// Growth phase: attach `newcomer` to the existing network. Growth
    /// precedes all activity, so community member lists are still in
    /// ascending node order and the attached prefix is a binary search.
    fn growth_pair(
        &mut self,
        newcomer: NodeId,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let anchor = match self.topology {
            Topology::HubDominated { hub_bias, .. } => {
                for _ in 0..64 {
                    let n = self.degree_biased(hub_bias, rng);
                    if n < newcomer {
                        return (n, newcomer);
                    }
                }
                rng.gen_range(0..newcomer)
            }
            Topology::Community { .. } | Topology::RepeatedContact { .. } => {
                let c = self.community_of[newcomer as usize];
                let attached =
                    self.members[c].partition_point(|&n| n < newcomer);
                if attached == 0 {
                    rng.gen_range(0..newcomer)
                } else {
                    self.members[c][rng.gen_range(0..attached)]
                }
            }
        };
        (anchor, newcomer)
    }

    /// Activity phase: repetition or a fresh topology-specific pair —
    /// the dense logic with ring/reservoir draws in place of log draws.
    fn activity_pair(&mut self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let drift = match self.topology {
            Topology::Community { drift, .. } => drift,
            Topology::RepeatedContact { drift, .. } => drift,
            Topology::HubDominated { .. } => 0.0,
        };
        if drift > 0.0 && rng.gen_bool(drift) {
            migrate_random_node(
                self.nodes,
                &mut self.community_of,
                &mut self.members,
                rng,
            );
        }
        let repeat = match self.topology {
            Topology::RepeatedContact { repeat, .. } => repeat,
            Topology::HubDominated { repeat, .. } => repeat,
            Topology::Community { repeat, .. } => repeat,
        };
        if rng.gen_bool(repeat) {
            return self.drifted_pair(rng);
        }
        match self.topology {
            Topology::RepeatedContact { intra, .. }
            | Topology::Community { intra, .. } => {
                if rng.gen_bool(intra) {
                    intra_group_pair(
                        self.nodes,
                        &self.community_of,
                        &self.members,
                        rng,
                    )
                } else {
                    uniform_pair(self.nodes, rng)
                }
            }
            Topology::HubDominated {
                hub_bias, local, ..
            } => {
                let hub = self.degree_biased(hub_bias, rng);
                if rng.gen_bool(local) {
                    if let Some(v) = self.two_hop_neighbor(hub, rng) {
                        return (hub, v);
                    }
                }
                let mut other = rng.gen_range(0..self.nodes as NodeId);
                while other == hub {
                    other = rng.gen_range(0..self.nodes as NodeId);
                }
                (hub, other)
            }
        }
    }

    /// Recency-drifted pair draw: recent ring with [`RECENCY_BIAS`]
    /// probability, otherwise the uniform all-time reservoir.
    fn drifted_pair(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        debug_assert!(!self.recent.is_empty());
        if rng.gen_bool(RECENCY_BIAS) {
            self.recent[rng.gen_range(0..self.recent.len())]
        } else {
            self.pair_sample[rng.gen_range(0..self.pair_sample.len())]
        }
    }

    /// Degree-proportional pick via the endpoint reservoir, sharpened by
    /// `bias` with the same tournament rule as the dense state.
    fn degree_biased(&self, bias: f64, rng: &mut StdRng) -> NodeId {
        let draws = bias.floor().max(1.0) as usize
            + usize::from(
                bias.fract() > 0.0 && rng.gen_bool(bias.fract().min(1.0)),
            );
        #[allow(clippy::expect_used)] // draws ≥ 1 by construction
        (0..draws)
            .map(|_| {
                if rng.gen_bool(RECENCY_BIAS) {
                    let (u, v) =
                        self.recent[rng.gen_range(0..self.recent.len())];
                    if rng.gen_bool(0.5) {
                        u
                    } else {
                        v
                    }
                } else {
                    self.endpoint_sample
                        [rng.gen_range(0..self.endpoint_sample.len())]
                }
            })
            .max_by_key(|&n| self.degree[n as usize])
            .expect("at least one draw")
    }

    /// Triadic closure over the bounded neighbor rings.
    fn two_hop_neighbor(
        &self,
        hub: NodeId,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let l1 = self.nbr_len[hub as usize] as usize;
        if l1 == 0 {
            return None;
        }
        for _ in 0..8 {
            let w = self.nbr_ring
                [hub as usize * STREAM_NBR_CAP + rng.gen_range(0..l1)];
            let l2 = self.nbr_len[w as usize] as usize;
            if l2 == 0 {
                continue;
            }
            let v = self.nbr_ring
                [w as usize * STREAM_NBR_CAP + rng.gen_range(0..l2)];
            if v != hub {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScaleTier;
    use dyngraph::stats::NetworkStats;

    fn small_hub() -> DatasetSpec {
        DatasetSpec::facebook().scaled(0.05)
    }

    #[test]
    fn hits_exact_link_count_and_span() {
        let spec = small_hub();
        let g = spec.generate(1);
        assert_eq!(g.link_count(), spec.target_links);
        assert_eq!(g.min_timestamp(), Some(1));
        assert_eq!(g.max_timestamp(), Some(spec.time_span));
    }

    #[test]
    fn covers_every_node() {
        let spec = small_hub();
        let g = spec.generate(2);
        let stats = NetworkStats::of(&g);
        assert_eq!(stats.nodes, spec.nodes);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::coauthor().scaled(0.1);
        assert_eq!(spec.generate(7), spec.generate(7));
        assert_ne!(spec.generate(7), spec.generate(8));
    }

    #[test]
    fn deprecated_free_function_matches_method() {
        let spec = DatasetSpec::coauthor().scaled(0.1);
        #[allow(deprecated)]
        let via_free = generate(&spec, 7);
        assert_eq!(via_free, spec.generate(7));
    }

    #[test]
    fn timestamps_nondecreasing_in_event_order() {
        let m = 100;
        let mut last = 0;
        for e in 0..m {
            let t = timestamp_of(e, m, 20);
            assert!(t >= last);
            assert!((1..=20).contains(&t));
            last = t;
        }
        assert_eq!(timestamp_of(m - 1, m, 20), 20);
    }

    #[test]
    fn hub_networks_have_skewed_degrees() {
        let spec = DatasetSpec {
            name: "hub-test",
            nodes: 150,
            target_links: 1500,
            time_span: 50,
            topology: Topology::HubDominated {
                repeat: 0.2,
                hub_bias: 1.2,
                local: 0.5,
            },
        };
        let g = spec.generate(3);
        let degrees: Vec<usize> = (0..g.node_count())
            .map(|u| g.multi_degree(u as NodeId))
            .collect();
        let max = *degrees.iter().max().unwrap() as f64;
        let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max > 3.0 * avg, "expected hub skew, max {max} vs avg {avg}");
    }

    #[test]
    fn repeated_contact_has_heavy_multilinks() {
        let spec = DatasetSpec {
            name: "contact-test",
            nodes: 50,
            target_links: 3000,
            time_span: 48,
            topology: Topology::RepeatedContact {
                repeat: 0.8,
                groups: 5,
                intra: 0.8,
                drift: 0.0,
            },
        };
        let g = spec.generate(4);
        let distinct = g.to_static().edge_count();
        let ratio = g.link_count() as f64 / distinct as f64;
        assert!(
            ratio > 2.0,
            "expected multi-link reinforcement, ratio {ratio}"
        );
    }

    #[test]
    fn community_links_mostly_intra() {
        let spec = DatasetSpec {
            name: "community-test",
            nodes: 120,
            target_links: 1200,
            time_span: 20,
            topology: Topology::Community {
                communities: 10,
                intra: 0.9,
                repeat: 0.2,
                drift: 0.0,
            },
        };
        // Regenerate the community labels the generator used (same seed,
        // same draw order).
        let mut rng = StdRng::seed_from_u64(5);
        let state = GenState::new(&spec, &mut rng);
        let labels = state.community_of.clone();
        let g = spec.generate(5);
        let (mut intra, mut total) = (0usize, 0usize);
        for link in g.links() {
            total += 1;
            if labels[link.u as usize] == labels[link.v as usize] {
                intra += 1;
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.6,
            "expected intra-community dominance: {intra}/{total}"
        );
    }

    #[test]
    fn paper_scale_generation_is_fast_enough() {
        // Generate the largest dataset at full scale to guard complexity.
        let g = DatasetSpec::eu_email().generate(11);
        assert_eq!(g.link_count(), 61_046);
        let stats = NetworkStats::of(&g);
        assert_eq!(stats.nodes, 309);
        assert!((stats.avg_degree - 395.12).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_links_rejected() {
        let spec = DatasetSpec {
            name: "bad",
            nodes: 100,
            target_links: 10,
            time_span: 5,
            topology: Topology::RepeatedContact {
                repeat: 0.5,
                groups: 3,
                intra: 0.8,
                drift: 0.0,
            },
        };
        let _ = spec.generate(0);
    }

    #[test]
    fn s_tier_streams_to_exact_counts() {
        let spec = DatasetSpec::tier(ScaleTier::S);
        assert!(
            spec.nodes >= STREAM_THRESHOLD,
            "S must take the streamed path"
        );
        let g = spec.generate(1);
        assert_eq!(g.link_count(), spec.target_links);
        let stats = NetworkStats::of(&g);
        assert_eq!(stats.nodes, spec.nodes);
        assert_eq!(g.min_timestamp(), Some(1));
        assert_eq!(g.max_timestamp(), Some(spec.time_span));
    }

    #[test]
    fn streamed_generation_is_deterministic() {
        let spec = DatasetSpec::tier(ScaleTier::S);
        assert_eq!(spec.generate(3), spec.generate(3));
    }

    #[test]
    fn streamed_state_keeps_repetition_and_community_structure() {
        let spec = DatasetSpec::tier(ScaleTier::S);
        let g = spec.generate(2);
        let distinct = g.to_static().edge_count();
        let ratio = g.link_count() as f64 / distinct as f64;
        // repeat = 0.3 with Pólya reinforcement: clear multi-link mass.
        assert!(ratio > 1.1, "expected repetition, ratio {ratio}");
    }

    #[test]
    fn streamed_threshold_splits_paths() {
        // A spec one node below the threshold uses dense state, at the
        // threshold the streamed state; both must satisfy the contract.
        for nodes in [STREAM_THRESHOLD - 1, STREAM_THRESHOLD] {
            let spec = DatasetSpec::builder("threshold-test")
                .nodes(nodes)
                .target_links(2 * nodes)
                .time_span(1000)
                .topology(Topology::Community {
                    communities: nodes / 100,
                    intra: 0.8,
                    repeat: 0.3,
                    drift: 0.005,
                })
                .build()
                .unwrap();
            let g = spec.generate(6);
            assert_eq!(g.link_count(), spec.target_links);
            assert_eq!(NetworkStats::of(&g).nodes, nodes);
        }
    }
}
