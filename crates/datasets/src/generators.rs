//! Synthetic temporal-network generators.
//!
//! Every generator emits exactly `spec.target_links` timestamped events
//! whose timestamps sweep `[1, spec.time_span]` in order — the same
//! "links emerge as a stream" model the paper formalizes in §III. A growth
//! phase first attaches every node to the evolving network (so `|V|` is hit
//! exactly and the graph is connected), then an activity phase draws the
//! remaining events from the topology class:
//!
//! * repetition — with probability `repeat` an event re-draws a random
//!   *past event's* pair, i.e. a Pólya urn over pairs: pairs with many
//!   links attract more (the multi-link reinforcement that rWRA and the
//!   normalized influence are designed to exploit);
//! * otherwise a fresh interaction is drawn per topology (preferential
//!   attachment for hub networks, intra-community pairs for co-authorship,
//!   uniform mixing for contact traces).
//!
//! Both the urn and the preferential-attachment bag are *recency-drifted*
//! ([`RECENCY_BIAS`]): half the draws come from the most recent slice of
//! events. Real reply/contact traces have exactly this temporal locality —
//! threads die, celebrities rise and fall — and it is the property that
//! makes time-aware features (the paper's premise) informative: without
//! drift, all-time link counts would dominate any recency weighting.

use dyngraph::{DynamicNetwork, NodeId, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{DatasetSpec, Topology};

/// Probability that an urn/bag draw is restricted to the most recent
/// [`RECENT_SLICE`] fraction of events (temporal drift).
pub const RECENCY_BIAS: f64 = 0.5;

/// The fraction of most recent events that recency-biased draws use.
pub const RECENT_SLICE: f64 = 0.1;

/// Generates a dynamic network for `spec`, deterministically from `seed`.
///
/// # Panics
///
/// Panics if the spec has fewer than 2 nodes or fewer links than nodes − 1
/// (the growth phase needs one event per new node).
pub fn generate(spec: &DatasetSpec, seed: u64) -> DynamicNetwork {
    assert!(spec.nodes >= 2, "need at least two nodes");
    assert!(
        spec.target_links >= spec.nodes - 1,
        "need at least |V|-1 links to cover every node"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = GenState::new(spec, &mut rng);

    let m = spec.target_links;
    let mut g = DynamicNetwork::with_node_capacity(spec.nodes);
    for event in 0..m {
        let t = timestamp_of(event, m, spec.time_span);
        let (u, v) = if event == 0 {
            (0, 1)
        } else if event < spec.nodes - 1 {
            state.growth_pair(event as NodeId + 1, &mut rng)
        } else {
            state.activity_pair(&mut rng)
        };
        state.record(u, v);
        g.add_link(u, v, t);
    }
    g
}

/// Timestamp of the `event`-th of `m` events over `[1, span]`: ticks are
/// filled evenly in event order, the last event always lands on `span`.
fn timestamp_of(event: usize, m: usize, span: u32) -> Timestamp {
    ((((event as u64) + 1) * span as u64) / m as u64).max(1) as Timestamp
}

/// Mutable generator state: the endpoint bag (degree-proportional
/// sampling), the event-pair log (Pólya repetition) and community labels.
struct GenState {
    topology: Topology,
    nodes: usize,
    /// Every event appends both endpoints: sampling uniformly from the bag
    /// is sampling nodes proportionally to multigraph degree.
    endpoint_bag: Vec<NodeId>,
    /// Every event's pair: uniform sampling = multiplicity-proportional
    /// pair repetition.
    pair_log: Vec<(NodeId, NodeId)>,
    /// Community id per node (Community topology only).
    community_of: Vec<usize>,
    /// Members per community.
    members: Vec<Vec<NodeId>>,
    /// Multigraph degree per node (tournament tiebreak for `hub_bias > 1`).
    degree: Vec<u32>,
    /// Per-node incident-neighbor log (duplicates kept, so a uniform draw
    /// is a degree-weighted neighbor sample) — drives triadic closure.
    nbrs: Vec<Vec<NodeId>>,
}

impl GenState {
    fn new(spec: &DatasetSpec, rng: &mut StdRng) -> Self {
        let group_count = match spec.topology {
            Topology::Community { communities, .. } => Some(communities),
            Topology::RepeatedContact { groups, .. } => Some(groups),
            Topology::HubDominated { .. } => None,
        };
        let (community_of, members) = match group_count {
            Some(communities) => {
                let mut of = Vec::with_capacity(spec.nodes);
                let mut members = vec![Vec::new(); communities];
                for node in 0..spec.nodes {
                    let c = rng.gen_range(0..communities);
                    of.push(c);
                    members[c].push(node as NodeId);
                }
                // No community may be empty (re-home from the largest).
                for c in 0..communities {
                    if members[c].is_empty() {
                        #[allow(clippy::expect_used)] // communities ≥ 1
                        let donor = (0..communities)
                            .max_by_key(|&d| members[d].len())
                            .expect("communities exist");
                        #[allow(clippy::expect_used)] // donor holds ≥ 1
                        let node =
                            members[donor].pop().expect("non-empty donor");
                        of[node as usize] = c;
                        members[c].push(node);
                    }
                }
                (of, members)
            }
            None => (Vec::new(), Vec::new()),
        };
        GenState {
            topology: spec.topology,
            nodes: spec.nodes,
            endpoint_bag: Vec::with_capacity(spec.target_links * 2),
            pair_log: Vec::with_capacity(spec.target_links),
            community_of,
            members,
            degree: vec![0; spec.nodes],
            nbrs: vec![Vec::new(); spec.nodes],
        }
    }

    fn record(&mut self, u: NodeId, v: NodeId) {
        self.endpoint_bag.push(u);
        self.endpoint_bag.push(v);
        self.pair_log.push((u, v));
        self.degree[u as usize] += 1;
        self.degree[v as usize] += 1;
        self.nbrs[u as usize].push(v);
        self.nbrs[v as usize].push(u);
    }

    /// Growth phase: attach `newcomer` to the existing network.
    fn growth_pair(
        &mut self,
        newcomer: NodeId,
        rng: &mut StdRng,
    ) -> (NodeId, NodeId) {
        let anchor = match self.topology {
            Topology::HubDominated { hub_bias, .. } => {
                self.degree_biased_below(newcomer, hub_bias, rng)
            }
            Topology::Community { .. } | Topology::RepeatedContact { .. } => {
                // Prefer an already-attached member of the same group.
                let c = self.community_of[newcomer as usize];
                let candidates: Vec<NodeId> = self.members[c]
                    .iter()
                    .copied()
                    .filter(|&n| n < newcomer)
                    .collect();
                if candidates.is_empty() {
                    rng.gen_range(0..newcomer)
                } else {
                    candidates[rng.gen_range(0..candidates.len())]
                }
            }
        };
        (anchor, newcomer)
    }

    /// Activity phase: repetition or a fresh topology-specific pair.
    fn activity_pair(&mut self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let drift = match self.topology {
            Topology::Community { drift, .. } => drift,
            Topology::RepeatedContact { drift, .. } => drift,
            Topology::HubDominated { .. } => 0.0,
        };
        if drift > 0.0 && rng.gen_bool(drift) {
            self.migrate_random_node(rng);
        }
        let repeat = match self.topology {
            Topology::RepeatedContact { repeat, .. } => repeat,
            Topology::HubDominated { repeat, .. } => repeat,
            Topology::Community { repeat, .. } => repeat,
        };
        if rng.gen_bool(repeat) {
            // Recency-drifted Pólya urn over past events.
            return self.pair_log[self.drifted_index(self.pair_log.len(), rng)];
        }
        match self.topology {
            Topology::RepeatedContact { intra, .. } => {
                if rng.gen_bool(intra) {
                    self.intra_group_pair(rng)
                } else {
                    self.uniform_pair(rng)
                }
            }
            Topology::HubDominated {
                hub_bias, local, ..
            } => {
                let hub = self.degree_biased(hub_bias, rng);
                if rng.gen_bool(local) {
                    if let Some(v) = self.two_hop_neighbor(hub, rng) {
                        return (hub, v);
                    }
                }
                let mut other = rng.gen_range(0..self.nodes as NodeId);
                while other == hub {
                    other = rng.gen_range(0..self.nodes as NodeId);
                }
                (hub, other)
            }
            Topology::Community { intra, .. } => {
                if rng.gen_bool(intra) {
                    self.intra_group_pair(rng)
                } else {
                    self.uniform_pair(rng)
                }
            }
        }
    }

    /// A uniform pair inside one (size-weighted) group; falls back to a
    /// uniform global pair for degenerate groups.
    fn intra_group_pair(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        for _ in 0..16 {
            let c = self.community_of[rng.gen_range(0..self.nodes)];
            let members = &self.members[c];
            if members.len() >= 2 {
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a != b {
                    return (a, b);
                }
            } else {
                break;
            }
        }
        self.uniform_pair(rng)
    }

    /// Triadic closure: a random neighbor-of-neighbor of `hub` that is not
    /// `hub` itself. `None` when the local neighborhood is too thin.
    fn two_hop_neighbor(
        &self,
        hub: NodeId,
        rng: &mut StdRng,
    ) -> Option<NodeId> {
        let n1 = &self.nbrs[hub as usize];
        if n1.is_empty() {
            return None;
        }
        for _ in 0..8 {
            let w = n1[rng.gen_range(0..n1.len())];
            let n2 = &self.nbrs[w as usize];
            if n2.is_empty() {
                continue;
            }
            let v = n2[rng.gen_range(0..n2.len())];
            if v != hub {
                return Some(v);
            }
        }
        None
    }

    /// Community drift: move one random node into a different community.
    fn migrate_random_node(&mut self, rng: &mut StdRng) {
        let n_comms = self.members.len();
        if n_comms < 2 {
            return;
        }
        let node = rng.gen_range(0..self.nodes) as NodeId;
        let old = self.community_of[node as usize];
        // Never empty a community.
        if self.members[old].len() <= 1 {
            return;
        }
        let mut new = rng.gen_range(0..n_comms);
        while new == old {
            new = rng.gen_range(0..n_comms);
        }
        self.members[old].retain(|&m| m != node);
        self.members[new].push(node);
        self.community_of[node as usize] = new;
    }

    fn uniform_pair(&self, rng: &mut StdRng) -> (NodeId, NodeId) {
        let a = rng.gen_range(0..self.nodes as NodeId);
        let mut b = rng.gen_range(0..self.nodes as NodeId);
        while b == a {
            b = rng.gen_range(0..self.nodes as NodeId);
        }
        (a, b)
    }

    /// Degree-proportional node pick, sharpened by `bias`: a tournament of
    /// degree-proportional bag draws keeping the highest-degree candidate.
    /// One draw (`bias = 1`) is classic preferential attachment; the
    /// fractional part of `bias` adds an extra draw with that probability,
    /// interpolating the sharpening smoothly.
    fn degree_biased(&self, bias: f64, rng: &mut StdRng) -> NodeId {
        let draws = bias.floor().max(1.0) as usize
            + usize::from(
                bias.fract() > 0.0 && rng.gen_bool(bias.fract().min(1.0)),
            );
        #[allow(clippy::expect_used)] // draws ≥ 1 by construction
        (0..draws)
            .map(|_| {
                self.endpoint_bag
                    [self.drifted_index(self.endpoint_bag.len(), rng)]
            })
            .max_by_key(|&n| self.degree[n as usize])
            .expect("at least one draw")
    }

    /// Index into a chronologically ordered log: with [`RECENCY_BIAS`]
    /// probability restricted to the last [`RECENT_SLICE`] of entries.
    fn drifted_index(&self, len: usize, rng: &mut StdRng) -> usize {
        debug_assert!(len > 0);
        if rng.gen_bool(RECENCY_BIAS) {
            let slice = ((len as f64 * RECENT_SLICE) as usize).max(1);
            len - 1 - rng.gen_range(0..slice)
        } else {
            rng.gen_range(0..len)
        }
    }

    /// Same, restricted to nodes `< limit` (growth phase).
    fn degree_biased_below(
        &self,
        limit: NodeId,
        bias: f64,
        rng: &mut StdRng,
    ) -> NodeId {
        for _ in 0..64 {
            let n = self.degree_biased(bias, rng);
            if n < limit {
                return n;
            }
        }
        rng.gen_range(0..limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyngraph::stats::NetworkStats;

    fn small_hub() -> DatasetSpec {
        DatasetSpec::facebook().scaled(0.05)
    }

    #[test]
    fn hits_exact_link_count_and_span() {
        let spec = small_hub();
        let g = generate(&spec, 1);
        assert_eq!(g.link_count(), spec.target_links);
        assert_eq!(g.min_timestamp(), Some(1));
        assert_eq!(g.max_timestamp(), Some(spec.time_span));
    }

    #[test]
    fn covers_every_node() {
        let spec = small_hub();
        let g = generate(&spec, 2);
        let stats = NetworkStats::of(&g);
        assert_eq!(stats.nodes, spec.nodes);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::coauthor().scaled(0.1);
        assert_eq!(generate(&spec, 7), generate(&spec, 7));
        assert_ne!(generate(&spec, 7), generate(&spec, 8));
    }

    #[test]
    fn timestamps_nondecreasing_in_event_order() {
        let m = 100;
        let mut last = 0;
        for e in 0..m {
            let t = timestamp_of(e, m, 20);
            assert!(t >= last);
            assert!((1..=20).contains(&t));
            last = t;
        }
        assert_eq!(timestamp_of(m - 1, m, 20), 20);
    }

    #[test]
    fn hub_networks_have_skewed_degrees() {
        let spec = DatasetSpec {
            name: "hub-test",
            nodes: 150,
            target_links: 1500,
            time_span: 50,
            topology: Topology::HubDominated {
                repeat: 0.2,
                hub_bias: 1.2,
                local: 0.5,
            },
        };
        let g = generate(&spec, 3);
        let degrees: Vec<usize> = (0..g.node_count())
            .map(|u| g.multi_degree(u as NodeId))
            .collect();
        let max = *degrees.iter().max().unwrap() as f64;
        let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(max > 3.0 * avg, "expected hub skew, max {max} vs avg {avg}");
    }

    #[test]
    fn repeated_contact_has_heavy_multilinks() {
        let spec = DatasetSpec {
            name: "contact-test",
            nodes: 50,
            target_links: 3000,
            time_span: 48,
            topology: Topology::RepeatedContact {
                repeat: 0.8,
                groups: 5,
                intra: 0.8,
                drift: 0.0,
            },
        };
        let g = generate(&spec, 4);
        let distinct = g.to_static().edge_count();
        let ratio = g.link_count() as f64 / distinct as f64;
        assert!(
            ratio > 2.0,
            "expected multi-link reinforcement, ratio {ratio}"
        );
    }

    #[test]
    fn community_links_mostly_intra() {
        let spec = DatasetSpec {
            name: "community-test",
            nodes: 120,
            target_links: 1200,
            time_span: 20,
            topology: Topology::Community {
                communities: 10,
                intra: 0.9,
                repeat: 0.2,
                drift: 0.0,
            },
        };
        // Regenerate the community labels the generator used (same seed,
        // same draw order).
        let mut rng = StdRng::seed_from_u64(5);
        let state = GenState::new(&spec, &mut rng);
        let labels = state.community_of.clone();
        let g = generate(&spec, 5);
        let (mut intra, mut total) = (0usize, 0usize);
        for link in g.links() {
            total += 1;
            if labels[link.u as usize] == labels[link.v as usize] {
                intra += 1;
            }
        }
        assert!(
            intra as f64 / total as f64 > 0.6,
            "expected intra-community dominance: {intra}/{total}"
        );
    }

    #[test]
    fn paper_scale_generation_is_fast_enough() {
        // Generate the largest dataset at full scale to guard complexity.
        let g = generate(&DatasetSpec::eu_email(), 11);
        assert_eq!(g.link_count(), 61_046);
        let stats = NetworkStats::of(&g);
        assert_eq!(stats.nodes, 309);
        assert!((stats.avg_degree - 395.12).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn too_few_links_rejected() {
        let spec = DatasetSpec {
            name: "bad",
            nodes: 100,
            target_links: 10,
            time_span: 5,
            topology: Topology::RepeatedContact {
                repeat: 0.5,
                groups: 3,
                intra: 0.8,
                drift: 0.0,
            },
        };
        let _ = generate(&spec, 0);
    }
}
