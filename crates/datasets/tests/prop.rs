//! Property-based tests for the synthetic dataset generators.

use proptest::prelude::*;

use datasets::{DatasetSpec, Topology};
use dyngraph::stats::NetworkStats;

fn arbitrary_spec() -> impl Strategy<Value = DatasetSpec> {
    let topology = prop_oneof![
        (0.3..0.9f64, 2..8usize, 0.5..0.95f64).prop_map(
            |(repeat, groups, intra)| Topology::RepeatedContact {
                repeat,
                groups,
                intra,
                drift: 0.005,
            }
        ),
        (0.05..0.5f64, 1.0..1.5f64, 0.2..0.8f64).prop_map(
            |(repeat, hub_bias, local)| Topology::HubDominated {
                repeat,
                hub_bias,
                local,
            }
        ),
        (3..10usize, 0.6..0.95f64, 0.1..0.5f64).prop_map(
            |(communities, intra, repeat)| Topology::Community {
                communities,
                intra,
                repeat,
                drift: 0.02,
            }
        ),
    ];
    (30..120usize, 2..8usize, 5..60u32, topology).prop_map(
        |(nodes, density, span, topology)| DatasetSpec {
            name: "prop",
            nodes,
            target_links: nodes * density,
            time_span: span,
            topology,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator hits |V|, |E| and the time span exactly, for every
    /// topology class and any sane parameters.
    #[test]
    fn generator_meets_spec(spec in arbitrary_spec(), seed in 0..1000u64) {
        let g = spec.generate(seed);
        let s = NetworkStats::of(&g);
        prop_assert_eq!(s.nodes, spec.nodes, "all nodes active");
        prop_assert_eq!(s.links, spec.target_links);
        prop_assert_eq!(g.min_timestamp(), Some(1));
        prop_assert_eq!(g.max_timestamp(), Some(spec.time_span));
    }

    /// No self-loops ever; timestamps are non-decreasing when links are
    /// replayed in generation order cannot be observed from the graph, but
    /// per-tick counts are balanced within a factor.
    #[test]
    fn generator_structural_sanity(spec in arbitrary_spec(), seed in 0..1000u64) {
        let g = spec.generate(seed);
        for link in g.links() {
            prop_assert_ne!(link.u, link.v);
            prop_assert!((1..=spec.time_span).contains(&link.t));
        }
        // The event stream fills ticks evenly: no tick holds more than a
        // generous multiple of the average.
        let mut per_tick = vec![0usize; spec.time_span as usize + 1];
        for link in g.links() {
            per_tick[link.t as usize] += 1;
        }
        let avg = spec.target_links as f64 / spec.time_span as f64;
        for &count in per_tick.iter().skip(1) {
            prop_assert!((count as f64) <= (avg + 1.0) * 3.0 + 2.0);
        }
    }

    /// Determinism: same spec and seed → identical network.
    #[test]
    fn generator_deterministic(spec in arbitrary_spec(), seed in 0..100u64) {
        prop_assert_eq!(spec.generate(seed), spec.generate(seed));
    }

    /// The generated graph is connected (the growth phase attaches every
    /// node to the evolving component).
    #[test]
    fn generator_connected(spec in arbitrary_spec(), seed in 0..100u64) {
        let g = spec.generate(seed);
        let comps =
            dyngraph::metrics::connected_components(&g.to_static());
        prop_assert_eq!(comps.len(), 1, "growth phase keeps one component");
    }
}
