//! h-hop subgraph extraction (Definition 3 of the paper).
//!
//! The *h-hop subgraph* `G_{h→e_t}` of a target link `e_t = (a, b)` contains
//! every node within hop distance `h` of either endpoint (Eq. 1:
//! `d(n_i, e_t) = min(|P(n_i, n_a)|, |P(n_i, n_b)|)`) together with all
//! timestamped links induced among those nodes.
//!
//! The assembly path is branch-light by design: ball merging, local-id
//! lookup and membership tests all run over stamped arrays indexed by
//! global node id (no hashing), and the induced links live in one flat
//! CSR — `crate::reference` keeps the naive `HashMap` formulation this
//! module is differentially tested against (`tests/kernels.rs`).

use dyngraph::{GraphView, NodeId, Timestamp};

use crate::error::ExtractError;

/// Reusable buffers for h-hop extraction: a stamped distance map (so the
/// per-node state never needs clearing between runs), BFS frontiers, and
/// the stamped merge/local-index arrays that replace per-call hash maps.
///
/// One scratch serves any number of sequential extractions; a fresh
/// default-constructed scratch produces bit-identical results to a reused
/// one, so batch paths can thread a single instance through thousands of
/// samples without changing any output.
#[derive(Debug, Clone, Default)]
pub struct HopScratch {
    /// `stamp[n] == epoch` marks `dist[n]` as valid for the current run.
    ///
    /// Stamps are `u32` so the two stamped maps cost 8 bytes per graph
    /// node instead of 16 — at million-node scale the scratch is the
    /// dominant per-thread allocation. Epoch wrap-around is handled by
    /// zeroing the stamp array (once every ~4 billion extractions).
    stamp: Vec<u32>,
    dist: Vec<u32>,
    epoch: u32,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    /// `mstamp[n] == mepoch` marks `n` as a member of the current merge;
    /// `mdist[n]` is its joint distance and `mlocal[n]` its local id.
    mstamp: Vec<u32>,
    mdist: Vec<u32>,
    mlocal: Vec<u32>,
    mepoch: u32,
    rest: Vec<(u32, NodeId)>,
    edges: Vec<(u32, u32, Timestamp)>,
    cursor: Vec<usize>,
    row: Vec<u32>,
}

impl HopScratch {
    fn begin(&mut self, nodes: usize) {
        if self.stamp.len() < nodes {
            self.stamp.resize(nodes, 0);
            self.dist.resize(nodes, 0);
        }
        if self.epoch == u32::MAX {
            // Wrap: every stale stamp could collide with a future epoch,
            // so clear them all and restart. Results are unchanged — a
            // zeroed map is exactly the fresh-scratch state.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn begin_merge(&mut self, nodes: usize) {
        if self.mstamp.len() < nodes {
            self.mstamp.resize(nodes, 0);
            self.mdist.resize(nodes, 0);
            self.mlocal.resize(nodes, 0);
        }
        if self.mepoch == u32::MAX {
            self.mstamp.fill(0);
            self.mepoch = 0;
        }
        self.mepoch += 1;
    }
}

/// Computes the bounded BFS ball of one endpoint: every `(node, distance)`
/// with `distance <= h` from `src`, in breadth-first discovery order
/// (`src` itself first, at distance 0).
///
/// Balls are the unit of reuse of the extraction cache: the h-hop subgraph
/// of a pair is assembled from the two endpoint balls, so pairs sharing an
/// endpoint share its frontier computation.
///
/// Generic over any [`GraphView`]: the mutable `DynamicNetwork`, the CSR
/// `FrozenGraph` and published overlay views all produce bit-identical
/// balls (the view contract fixes the neighbor ordering).
///
/// # Panics
///
/// Panics if `src` is outside `g`.
pub fn ball<G: GraphView + ?Sized>(
    g: &G,
    src: NodeId,
    h: u32,
    scratch: &mut HopScratch,
) -> Vec<(NodeId, u32)> {
    assert!((src as usize) < g.node_count(), "ball source out of range");
    scratch.begin(g.node_count());
    let epoch = scratch.epoch;
    let mut out = Vec::new();
    scratch.stamp[src as usize] = epoch;
    scratch.dist[src as usize] = 0;
    out.push((src, 0));
    scratch.frontier.clear();
    scratch.frontier.push(src);
    grow_layers(g, h, 0, &mut out, scratch);
    out
}

/// Extends a radius-`h_prev` [`ball`] of `src` to radius `h` without
/// re-discovering the inner layers.
///
/// A bounded BFS discovers layers in order, so `ball(src, h_prev)` is a
/// strict prefix of `ball(src, h)`; re-stamping the known layers and
/// resuming from the depth-`h_prev` frontier reproduces the full ball
/// bit for bit (same nodes, same discovery order). `prev` must be the
/// exact output of `ball(g, src, h_prev, …)` at the current graph state.
///
/// # Panics
///
/// Panics if `prev` is empty or not rooted at distance 0.
pub fn ball_extend<G: GraphView + ?Sized>(
    g: &G,
    prev: &[(NodeId, u32)],
    h_prev: u32,
    h: u32,
    scratch: &mut HopScratch,
) -> Vec<(NodeId, u32)> {
    assert!(
        !prev.is_empty() && prev[0].1 == 0,
        "malformed previous ball"
    );
    scratch.begin(g.node_count());
    let epoch = scratch.epoch;
    let mut out = Vec::with_capacity(prev.len());
    scratch.frontier.clear();
    for &(n, d) in prev {
        scratch.stamp[n as usize] = epoch;
        scratch.dist[n as usize] = d;
        out.push((n, d));
        if d == h_prev {
            scratch.frontier.push(n);
        }
    }
    grow_layers(g, h, h_prev, &mut out, scratch);
    out
}

/// BFS layer expansion shared by [`ball`] and [`ball_extend`]: grows
/// `scratch.frontier` (depth `depth`) out to radius `h`, appending
/// discoveries to `out`.
fn grow_layers<G: GraphView + ?Sized>(
    g: &G,
    h: u32,
    mut depth: u32,
    out: &mut Vec<(NodeId, u32)>,
    scratch: &mut HopScratch,
) {
    let epoch = scratch.epoch;
    while !scratch.frontier.is_empty() && depth < h {
        depth += 1;
        scratch.next.clear();
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            for &v in g.distinct_neighbors(u) {
                if scratch.stamp[v as usize] != epoch {
                    scratch.stamp[v as usize] = epoch;
                    scratch.dist[v as usize] = depth;
                    out.push((v, depth));
                    scratch.next.push(v);
                }
            }
        }
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
}

/// The h-hop subgraph of a target link, re-indexed to dense local ids.
///
/// Local id 0 is always endpoint `a`, local id 1 endpoint `b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopSubgraph {
    /// Global node id of each local node; `global[0] = a`, `global[1] = b`.
    global: Vec<NodeId>,
    /// `dist[i]` = hop distance of local node `i` to the target link (Eq. 1).
    dist: Vec<u32>,
    /// Incidence CSR row bounds: row `i` is
    /// `inc_offsets[i]..inc_offsets[i + 1]` of `inc`.
    inc_offsets: Vec<usize>,
    /// Flat `(neighbor, timestamp)` incidences, one entry per induced link
    /// per endpoint (mirrored). Local ids are `u32` — a subgraph's node
    /// count is bounded by the host graph's `u32` id space, and the
    /// narrow entries halve the footprint of the extraction hot path.
    inc: Vec<(u32, Timestamp)>,
    /// Distinct-neighbor CSR row bounds: row `i` is
    /// `nbr_offsets[i]..nbr_offsets[i + 1]` of `nbr_ids`.
    nbr_offsets: Vec<usize>,
    /// Flat distinct local neighbors, sorted ascending per node.
    nbr_ids: Vec<u32>,
    /// The hop radius this subgraph was extracted with.
    h: u32,
    /// Total induced links (each counted once).
    links: usize,
}

impl HopSubgraph {
    /// Extracts the h-hop subgraph of target link `(a, b)` from `g`.
    ///
    /// Any existing history links between `a` and `b` themselves are
    /// *excluded* from the induced link set: the adjacency entry `A(1,2)` of
    /// the eventual feature matrix is defined to be 0 because the target
    /// link is the unknown being predicted (§V-B).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is outside `g`. Serving paths
    /// that cannot rule those out should use [`HopSubgraph::try_extract`].
    pub fn extract<G: GraphView + ?Sized>(
        g: &G,
        a: NodeId,
        b: NodeId,
        h: u32,
    ) -> Self {
        match Self::try_extract(g, a, b, h) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`HopSubgraph::extract`]: degenerate targets come
    /// back as [`ExtractError`] values instead of panics.
    ///
    /// # Errors
    ///
    /// [`ExtractError::DegenerateTarget`] when `a == b`, and
    /// [`ExtractError::UnknownEndpoint`] when either endpoint is outside
    /// `g`'s id space.
    pub fn try_extract<G: GraphView + ?Sized>(
        g: &G,
        a: NodeId,
        b: NodeId,
        h: u32,
    ) -> Result<Self, ExtractError> {
        Self::validate(g, a, b)?;
        let mut scratch = HopScratch::default();
        let ball_a = ball(g, a, h, &mut scratch);
        let ball_b = ball(g, b, h, &mut scratch);
        Ok(Self::from_balls(g, a, b, h, &ball_a, &ball_b, &mut scratch))
    }

    /// Checks that `(a, b)` is a valid target pair in `g`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`HopSubgraph::try_extract`].
    pub fn validate<G: GraphView + ?Sized>(
        g: &G,
        a: NodeId,
        b: NodeId,
    ) -> Result<(), ExtractError> {
        if a == b {
            return Err(ExtractError::DegenerateTarget { node: a });
        }
        for node in [a, b] {
            if node as usize >= g.node_count() {
                return Err(ExtractError::UnknownEndpoint {
                    node,
                    node_count: g.node_count(),
                });
            }
        }
        Ok(())
    }

    /// Assembles the h-hop subgraph from the two endpoint [`ball`]s.
    ///
    /// The joint distance of Eq. 1 is `min(d_a, d_b)`, which is exactly the
    /// per-node minimum over the two balls, and the h-hop node set is their
    /// union — so cached per-endpoint frontiers compose losslessly. Local
    /// ids are canonical: 0 = `a`, 1 = `b`, then every other node sorted by
    /// `(joint distance, global id)`. The canonical order is independent of
    /// how the balls were produced, so cached and freshly-computed
    /// extractions are bit-identical.
    ///
    /// Endpoints must already be validated (see [`HopSubgraph::validate`])
    /// and each ball must belong to its endpoint at radius `h`.
    pub fn from_balls<G: GraphView + ?Sized>(
        g: &G,
        a: NodeId,
        b: NodeId,
        h: u32,
        ball_a: &[(NodeId, u32)],
        ball_b: &[(NodeId, u32)],
        scratch: &mut HopScratch,
    ) -> Self {
        scratch.begin_merge(g.node_count());
        let epoch = scratch.mepoch;
        // Union of the balls with per-node minimum distance, over stamped
        // arrays: first sight records, later sights only lower the
        // distance. The endpoints are members by construction.
        scratch.rest.clear();
        for &(n, d) in ball_a.iter().chain(ball_b) {
            let i = n as usize;
            if scratch.mstamp[i] != epoch {
                scratch.mstamp[i] = epoch;
                scratch.mdist[i] = d;
                if n != a && n != b {
                    scratch.rest.push((0, n));
                }
            } else if d < scratch.mdist[i] {
                scratch.mdist[i] = d;
            }
        }
        // Canonical local order: endpoints first, rest by (distance, id).
        for entry in scratch.rest.iter_mut() {
            entry.0 = scratch.mdist[entry.1 as usize];
        }
        scratch.rest.sort_unstable();
        let mut global = Vec::with_capacity(scratch.rest.len() + 2);
        let mut dist = Vec::with_capacity(scratch.rest.len() + 2);
        global.push(a);
        dist.push(0);
        global.push(b);
        dist.push(0);
        for &(d, n) in &scratch.rest {
            global.push(n);
            dist.push(d);
        }
        for (i, &n) in global.iter().enumerate() {
            scratch.mlocal[n as usize] = i as u32;
        }
        // Induced links, each discovered once via `u < v`; the stamped
        // membership test replaces the per-link hash lookup.
        scratch.edges.clear();
        for (i, &u) in global.iter().enumerate() {
            for (v, t) in g.incident_links(u) {
                if u < v && scratch.mstamp[v as usize] == epoch {
                    if (u == a && v == b) || (u == b && v == a) {
                        continue; // target pair history excluded
                    }
                    scratch.edges.push((
                        i as u32,
                        scratch.mlocal[v as usize],
                        t,
                    ));
                }
            }
        }
        let links = scratch.edges.len();
        // Mirrored incidence CSR, rows filled in edge-discovery order —
        // the same per-row sequence the per-node push formulation yields.
        let n = global.len();
        let mut inc_offsets = vec![0usize; n + 1];
        for &(i, j, _) in &scratch.edges {
            inc_offsets[i as usize + 1] += 1;
            inc_offsets[j as usize + 1] += 1;
        }
        for i in 0..n {
            inc_offsets[i + 1] += inc_offsets[i];
        }
        scratch.cursor.clear();
        scratch.cursor.extend_from_slice(&inc_offsets[..n]);
        let mut inc = vec![(0u32, 0 as Timestamp); 2 * links];
        for &(i, j, t) in &scratch.edges {
            inc[scratch.cursor[i as usize]] = (j, t);
            scratch.cursor[i as usize] += 1;
            inc[scratch.cursor[j as usize]] = (i, t);
            scratch.cursor[j as usize] += 1;
        }
        // Precompute the distinct-neighbor CSR so `neighbors` serves a
        // slice on the hot extraction path instead of allocating.
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        let mut nbr_ids = Vec::with_capacity(2 * links);
        nbr_offsets.push(0);
        for i in 0..n {
            let row = &mut scratch.row;
            row.clear();
            row.extend(
                inc[inc_offsets[i]..inc_offsets[i + 1]]
                    .iter()
                    .map(|&(j, _)| j),
            );
            row.sort_unstable();
            row.dedup();
            nbr_ids.extend_from_slice(row);
            nbr_offsets.push(nbr_ids.len());
        }
        HopSubgraph {
            global,
            dist,
            inc_offsets,
            inc,
            nbr_offsets,
            nbr_ids,
            h,
            links,
        }
    }

    /// Number of nodes in the subgraph.
    pub fn node_count(&self) -> usize {
        self.global.len()
    }

    /// Number of induced timestamped links (multi-links counted, the target
    /// pair's history excluded).
    pub fn link_count(&self) -> usize {
        self.links
    }

    /// The hop radius used for extraction.
    pub fn radius(&self) -> u32 {
        self.h
    }

    /// Global node id of local node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn global_id(&self, i: usize) -> NodeId {
        self.global[i]
    }

    /// Hop distance of local node `i` to the target link.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn distance(&self, i: usize) -> u32 {
        self.dist[i]
    }

    /// All `(local neighbor, timestamp)` incidences of local node `i`,
    /// served from the flat incidence CSR.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn incident_links(&self, i: usize) -> &[(u32, Timestamp)] {
        &self.inc[self.inc_offsets[i]..self.inc_offsets[i + 1]]
    }

    /// Sorted distinct local neighbors of local node `i`, served from the
    /// precomputed local CSR (no per-call allocation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.nbr_ids[self.nbr_offsets[i]..self.nbr_offsets[i + 1]]
    }
}

#[cfg(test)]
mod tests {
    use dyngraph::DynamicNetwork;

    use super::*;

    /// A two-triangle "bowtie" with a pendant chain:
    /// 0-1-2-0 (triangle), 2-3, 3-4, plus multi-link 0-1.
    fn sample() -> DynamicNetwork {
        [
            (0, 1, 1),
            (0, 1, 2),
            (1, 2, 3),
            (2, 0, 4),
            (2, 3, 5),
            (3, 4, 6),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn endpoints_are_locals_zero_and_one() {
        let g = sample();
        let s = HopSubgraph::extract(&g, 2, 4, 1);
        assert_eq!(s.global_id(0), 2);
        assert_eq!(s.global_id(1), 4);
        assert_eq!(s.distance(0), 0);
        assert_eq!(s.distance(1), 0);
    }

    #[test]
    fn one_hop_includes_union_of_neighborhoods() {
        let g = sample();
        let s = HopSubgraph::extract(&g, 2, 4, 1);
        // N(2) = {0,1,3}, N(4) = {3} → nodes {2,4,0,1,3}.
        assert_eq!(s.node_count(), 5);
    }

    #[test]
    fn target_history_links_excluded() {
        let g = sample();
        // 0-1 has two history links; extracting for target (0,1) must skip
        // them but keep everything else.
        let s = HopSubgraph::extract(&g, 0, 1, 2);
        for &(j, _) in s.incident_links(0) {
            assert_ne!(s.global_id(j as usize), 1);
        }
        // other links of the triangle remain
        assert!(s.link_count() >= 2);
    }

    #[test]
    fn multi_links_preserved() {
        let g = sample();
        let s = HopSubgraph::extract(&g, 2, 3, 1);
        // locals: 0->2, 1->3, then 0,1,4.
        let zero = (0..s.node_count()).find(|&i| s.global_id(i) == 0).unwrap();
        let one = (0..s.node_count()).find(|&i| s.global_id(i) == 1).unwrap();
        let links_01 = s
            .incident_links(zero)
            .iter()
            .filter(|&&(j, _)| j as usize == one)
            .count();
        assert_eq!(links_01, 2);
    }

    #[test]
    fn radius_bounds_distance() {
        let g = sample();
        let s = HopSubgraph::extract(&g, 0, 1, 1);
        for i in 0..s.node_count() {
            assert!(s.distance(i) <= 1);
        }
        // node 4 is at distance 2 from {0,1}: excluded.
        assert!((0..s.node_count()).all(|i| s.global_id(i) != 4));
    }

    #[test]
    fn neighbors_dedup_multi_links() {
        let g = sample();
        let s = HopSubgraph::extract(&g, 0, 1, 1);
        // local 0 = global 0: neighbors are {2} only (1 excluded as target).
        let n = s.neighbors(0);
        assert_eq!(n.len(), 1);
        assert_eq!(s.global_id(n[0] as usize), 2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn same_endpoints_panic() {
        let g = sample();
        let _ = HopSubgraph::extract(&g, 1, 1, 1);
    }

    #[test]
    fn try_extract_reports_degenerate_targets() {
        let g = sample();
        assert_eq!(
            HopSubgraph::try_extract(&g, 1, 1, 1),
            Err(ExtractError::DegenerateTarget { node: 1 })
        );
        assert_eq!(
            HopSubgraph::try_extract(&g, 0, 99, 1),
            Err(ExtractError::UnknownEndpoint {
                node: 99,
                node_count: g.node_count()
            })
        );
        assert!(HopSubgraph::try_extract(&g, 0, 1, 1).is_ok());
    }

    #[test]
    fn disconnected_endpoint_pair_still_works() {
        let mut g = sample();
        g.extend([(7, 8, 1)]);
        let s = HopSubgraph::extract(&g, 0, 8, 1);
        assert_eq!(s.global_id(0), 0);
        assert_eq!(s.global_id(1), 8);
        // Components of both endpoints explored.
        assert!(s.node_count() >= 4);
    }

    #[test]
    fn ball_extend_matches_full_ball() {
        let mut g = sample();
        g.extend([(4, 5, 7), (5, 6, 8)]);
        let mut scratch = HopScratch::default();
        for src in [0u32, 2, 4, 6] {
            let mut prev = ball(&g, src, 1, &mut scratch);
            for h in 2..=4u32 {
                let full = ball(&g, src, h, &mut scratch);
                let ext = ball_extend(&g, &prev, h - 1, h, &mut scratch);
                assert_eq!(full, ext, "src {src} radius {h}");
                prev = ext;
            }
        }
    }

    #[test]
    fn ball_extend_handles_exhausted_component() {
        let g = sample();
        let mut scratch = HopScratch::default();
        let full = ball(&g, 0, 10, &mut scratch);
        let prev = ball(&g, 0, 9, &mut scratch);
        // Radius 9 already exhausts the component: the frontier is empty
        // and extension is a no-op copy.
        let ext = ball_extend(&g, &prev, 9, 10, &mut scratch);
        assert_eq!(full, ext);
    }
}
