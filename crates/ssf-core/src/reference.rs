//! Retained naive reference implementation of the full SSF extraction
//! pipeline (Algorithm 3) — the differential-testing oracle for the
//! optimized kernels in [`hop`](crate::hop), [`structure`](crate::structure),
//! [`palette`](crate::palette) and [`feature`](crate::feature).
//!
//! This module deliberately re-implements every stage with the simplest
//! possible data structures (`HashMap` set operations, per-call `Vec`
//! allocations, full-graph Dijkstra) and is **never** optimized: it is the
//! executable specification the fast kernels must match *bit for bit*, on
//! every [`EntryEncoding`], forever. `tests/kernels.rs` holds the
//! differential suite; a divergence there means the optimized path changed
//! semantics, not that this module is out of date.
//!
//! Float-sensitive details are mirrored exactly:
//!
//! * Palette-WL sums neighbor prime-logs in ascending color order and
//!   divides by the whole-graph prime-log sum taken in node-index order.
//! * Influence sums fold timestamps left-to-right from 0.0 in sorted order.
//! * Reciprocal-distance runs a binary-heap Dijkstra whose result is
//!   relaxation-order independent for non-negative weights, so the
//!   optimized early-exit variant lands on the same bits.

use std::collections::HashMap;

use dyngraph::{traversal, GraphView, NodeId, Timestamp};

use crate::error::ExtractError;
use crate::feature::{EntryEncoding, SsfConfig};

/// Bounded BFS ball of `src`: `(node, distance)` in breadth-first
/// discovery order, the source first at distance 0.
fn ball<G: GraphView + ?Sized>(
    g: &G,
    src: NodeId,
    h: u32,
) -> Vec<(NodeId, u32)> {
    let mut dist: HashMap<NodeId, u32> = HashMap::new();
    dist.insert(src, 0);
    let mut out = vec![(src, 0)];
    let mut frontier = vec![src];
    let mut depth = 0;
    while !frontier.is_empty() && depth < h {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.distinct_neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    dist.entry(v)
                {
                    e.insert(depth);
                    out.push((v, depth));
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    out
}

/// The naive h-hop subgraph: dense local ids with endpoints at 0 and 1,
/// the rest in `(distance, global id)` order.
struct RefHop {
    dist: Vec<u32>,
    /// Mirrored `(neighbor, timestamp)` incidences per local node.
    adj: Vec<Vec<(usize, Timestamp)>>,
    node_count: usize,
}

fn hop_subgraph<G: GraphView + ?Sized>(
    g: &G,
    a: NodeId,
    b: NodeId,
    h: u32,
) -> RefHop {
    let mut merged: HashMap<NodeId, u32> = HashMap::new();
    for (n, d) in ball(g, a, h).into_iter().chain(ball(g, b, h)) {
        merged
            .entry(n)
            .and_modify(|cur| *cur = (*cur).min(d))
            .or_insert(d);
    }
    let mut rest: Vec<(u32, NodeId)> = merged
        .iter()
        .filter(|&(&n, _)| n != a && n != b)
        .map(|(&n, &d)| (d, n))
        .collect();
    rest.sort_unstable();
    let mut global = vec![a, b];
    let mut dist = vec![0, 0];
    for &(d, n) in &rest {
        global.push(n);
        dist.push(d);
    }
    let local_of: HashMap<NodeId, usize> =
        global.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj = vec![Vec::new(); global.len()];
    for (i, &u) in global.iter().enumerate() {
        for (v, t) in g.incident_links(u) {
            if u < v {
                if let Some(&j) = local_of.get(&v) {
                    if (u == a && v == b) || (u == b && v == a) {
                        continue; // target pair history excluded
                    }
                    adj[i].push((j, t));
                    adj[j].push((i, t));
                }
            }
        }
    }
    RefHop {
        node_count: global.len(),
        dist,
        adj,
    }
}

/// The naive structure subgraph after Algorithm 1's fixpoint merge.
struct RefStructure {
    members: Vec<Vec<usize>>,
    adj: Vec<Vec<usize>>,
    timestamps: HashMap<(usize, usize), Vec<Timestamp>>,
    dist: Vec<u32>,
}

fn combine(hop: &RefHop) -> RefStructure {
    let n = hop.node_count;
    assert!(n >= 2, "hop subgraph must contain both target endpoints");
    let mut group_of: Vec<usize> = (0..n).collect();
    let mut group_count = n;
    loop {
        // Sorted distinct neighbor set of each current group.
        let mut nbrs: Vec<Vec<usize>> = vec![Vec::new(); group_count];
        for i in 0..n {
            for &(j, _) in &hop.adj[i] {
                nbrs[group_of[i]].push(group_of[j]);
            }
        }
        for nb in &mut nbrs {
            nb.sort_unstable();
            nb.dedup();
        }
        // Merge non-endpoint groups with identical neighbor sets;
        // new ids are assigned by first occurrence.
        let (ga, gb) = (group_of[0], group_of[1]);
        let mut sig_to_new: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut new_of_group = vec![usize::MAX; group_count];
        let mut next = 0;
        for (gid, nb) in nbrs.iter().enumerate() {
            if gid == ga || gid == gb {
                new_of_group[gid] = next;
                next += 1;
                continue;
            }
            let id = *sig_to_new.entry(nb.clone()).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            new_of_group[gid] = id;
        }
        if next == group_count {
            break;
        }
        for gref in &mut group_of {
            *gref = new_of_group[*gref];
        }
        group_count = next;
    }

    // Canonical renumbering: endpoints first, then (distance, smallest
    // member id).
    let mut members_raw: Vec<Vec<usize>> = vec![Vec::new(); group_count];
    for (i, &gid) in group_of.iter().enumerate() {
        members_raw[gid].push(i);
    }
    let mut order: Vec<usize> = (0..group_count).collect();
    let key = |gid: usize| {
        let m = &members_raw[gid];
        let d = m.iter().map(|&i| hop.dist[i]).min().unwrap_or(u32::MAX);
        (d, m.first().copied().unwrap_or(usize::MAX))
    };
    order.sort_by_key(|&gid| key(gid));
    let mut new_id = vec![usize::MAX; group_count];
    for (rank, &gid) in order.iter().enumerate() {
        new_id[gid] = rank;
    }
    let mut members = vec![Vec::new(); group_count];
    let mut dist = vec![u32::MAX; group_count];
    for (gid, m) in members_raw.into_iter().enumerate() {
        let x = new_id[gid];
        dist[x] = m.iter().map(|&i| hop.dist[i]).min().unwrap_or(u32::MAX);
        members[x] = m;
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); group_count];
    let mut timestamps: HashMap<(usize, usize), Vec<Timestamp>> =
        HashMap::new();
    for i in 0..n {
        let x = new_id[group_of[i]];
        for &(j, t) in &hop.adj[i] {
            if i < j {
                let y = new_id[group_of[j]];
                timestamps.entry((x.min(y), x.max(y))).or_default().push(t);
            }
        }
    }
    for (&(x, y), ts) in &mut timestamps {
        ts.sort_unstable();
        adj[x].push(y);
        adj[y].push(x);
    }
    for row in &mut adj {
        row.sort_unstable();
    }
    RefStructure {
        members,
        adj,
        timestamps,
        dist,
    }
}

/// Naive trial-division primes, `P(1) = 2`.
fn first_primes(n: usize) -> Vec<u64> {
    let mut primes: Vec<u64> = Vec::with_capacity(n);
    let mut cand = 2u64;
    while primes.len() < n {
        if primes
            .iter()
            .take_while(|&&p| p * p <= cand)
            .all(|&p| !cand.is_multiple_of(p))
        {
            primes.push(cand);
        }
        cand += 1;
    }
    primes
}

/// 1-based dense ranking by an arbitrary comparator.
fn dense_rank_by(
    n: usize,
    mut cmp: impl FnMut(usize, usize) -> std::cmp::Ordering,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&x, &y| cmp(x, y));
    let mut ranks = vec![0usize; n];
    let mut rank = 0;
    for (pos, &i) in idx.iter().enumerate() {
        if pos == 0 || cmp(idx[pos - 1], i) == std::cmp::Ordering::Less {
            rank += 1;
        }
        ranks[i] = rank;
    }
    ranks
}

/// Naive Palette-WL: per-round float hash `color + Σ ln P(neighbor colors)
/// (sorted ascending) / |Σ ln P(all colors)|`, global re-sort every round.
fn palette_wl(
    adj: &[Vec<usize>],
    init_key: &[u32],
    pinned: (usize, usize),
    tiebreak: &[u64],
) -> Vec<usize> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let sort_key = |i: usize| -> (u8, u32) {
        if i == pinned.0 {
            (0, 0)
        } else if i == pinned.1 {
            (1, 0)
        } else {
            (2, init_key[i])
        }
    };
    let mut colors = dense_rank_by(n, |i, j| sort_key(i).cmp(&sort_key(j)));
    let primes = first_primes(n);
    let ln_p = |c: usize| -> f64 { (primes[c - 1] as f64).ln() };
    for _ in 0..n + 2 {
        let total: f64 =
            (1..=n).map(|i| ln_p(colors[i - 1])).sum::<f64>().abs();
        let mut hash = Vec::with_capacity(n);
        for (i, row) in adj.iter().enumerate() {
            let mut neigh: Vec<usize> =
                row.iter().map(|&j| colors[j]).collect();
            neigh.sort_unstable();
            let frac: f64 = neigh.iter().map(|&c| ln_p(c)).sum::<f64>() / total;
            hash.push(colors[i] as f64 + frac);
        }
        let hkey = |i: usize| -> (u8, f64) {
            if i == pinned.0 {
                (0, 0.0)
            } else if i == pinned.1 {
                (1, 0.0)
            } else {
                (2, hash[i])
            }
        };
        let new_colors = dense_rank_by(n, |i, j| {
            let (ti, hi) = hkey(i);
            let (tj, hj) = hkey(j);
            ti.cmp(&tj).then(hi.total_cmp(&hj))
        });
        if new_colors == colors {
            break;
        }
        colors = new_colors;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&i| (colors[i], tiebreak[i], i));
    let mut order = vec![0usize; n];
    for (rank, &i) in idx.iter().enumerate() {
        order[i] = rank + 1;
    }
    order
}

/// Timestamps per selected slot pair `(m, n)`, `m < n`.
type SlotLinks = HashMap<(usize, usize), Vec<Timestamp>>;

/// Definition 7: the `K` lowest-order structure nodes and their links.
fn select(s: &RefStructure, order: &[usize], k: usize) -> SlotLinks {
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    for (x, &ord) in order.iter().enumerate() {
        if ord <= k {
            slot_of.insert(x, ord - 1);
        }
    }
    let mut out = SlotLinks::new();
    for (&(x, y), ts) in &s.timestamps {
        if let (Some(&m), Some(&n)) = (slot_of.get(&x), slot_of.get(&y)) {
            out.insert((m.min(n), m.max(n)), ts.clone());
        }
    }
    out
}

/// Eq. 2/3: left-to-right influence sum over sorted timestamps.
fn normalized_influence(ts: &[Timestamp], l_t: Timestamp, theta: f64) -> f64 {
    ts.iter()
        .map(|&l_s| {
            if l_s >= l_t {
                1.0
            } else {
                (-theta * (l_t - l_s) as f64).exp()
            }
        })
        .sum()
}

/// Eq. 4 for one non-concatenated encoding, row-major `K×K`.
fn adjacency_matrix(
    links: &SlotLinks,
    k: usize,
    l_t: Timestamp,
    theta: f64,
    encoding: EntryEncoding,
) -> Vec<f64> {
    let mut a = vec![0.0; k * k];
    for (&(m, n), ts) in links {
        let v = match encoding {
            EntryEncoding::NormalizedInfluence => {
                normalized_influence(ts, l_t, theta)
            }
            EntryEncoding::LogInfluence => {
                const LAMBDA: f64 = 30.0;
                let raw = normalized_influence(ts, l_t, theta);
                if raw > 0.0 {
                    (1.0 + raw.ln() / LAMBDA).max(0.0)
                } else {
                    0.0
                }
            }
            EntryEncoding::LinkCount => ts.len() as f64,
            EntryEncoding::Binary => 1.0,
            EntryEncoding::ReciprocalDistance => 0.0, // filled below
            EntryEncoding::InfluenceAndStructure => {
                unreachable!("concatenated encoding split by caller")
            }
        };
        a[m * k + n] = v;
        a[n * k + m] = v;
    }
    if encoding == EntryEncoding::ReciprocalDistance {
        let mut wadj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); k];
        for (&(m, n), ts) in links {
            let lt = normalized_influence(ts, l_t, theta);
            if lt > 0.0 {
                let len = 1.0 / lt;
                wadj[m].push((n, len));
                wadj[n].push((m, len));
            }
        }
        let da = traversal::dijkstra(&wadj, 0);
        let db = traversal::dijkstra(&wadj, 1);
        for &(m, n) in links.keys() {
            let dm = da[m].min(db[m]);
            let dn = da[n].min(db[n]);
            let v = 1.0 / (1.0 + dm.min(dn));
            a[m * k + n] = v;
            a[n * k + m] = v;
        }
    }
    a[1] = 0.0;
    a[k] = 0.0;
    a
}

/// Eq. 5: upper triangle by column, minus the target entry `A(1,2)`.
fn unfold(matrix: &[f64], k: usize, out: &mut Vec<f64>) {
    for n in 2..k {
        for m in 0..n {
            out.push(matrix[m * k + n]);
        }
    }
}

/// Runs the full naive pipeline for target `(a, b)` at prediction time
/// `l_t`, returning `(feature values, h_used, structure node count)` —
/// the oracle the optimized [`SsfExtractor`](crate::SsfExtractor) must
/// reproduce bit for bit.
///
/// # Errors
///
/// Same degenerate-target conditions as
/// [`SsfExtractor::try_extract`](crate::SsfExtractor::try_extract).
pub fn try_extract<G: GraphView + ?Sized>(
    g: &G,
    a: NodeId,
    b: NodeId,
    l_t: Timestamp,
    config: &SsfConfig,
) -> Result<(Vec<f64>, u32, usize), ExtractError> {
    if a == b {
        return Err(ExtractError::DegenerateTarget { node: a });
    }
    for node in [a, b] {
        if node as usize >= g.node_count() {
            return Err(ExtractError::UnknownEndpoint {
                node,
                node_count: g.node_count(),
            });
        }
    }
    let k = config.k;
    let mut h = 1;
    let mut hop = hop_subgraph(g, a, b, h);
    let mut s = combine(&hop);
    while s.members.len() < k && h < config.max_h {
        h += 1;
        let grown = hop_subgraph(g, a, b, h);
        if grown.node_count == hop.node_count {
            break; // component exhausted
        }
        hop = grown;
        s = combine(&hop);
    }
    // Refined init colors: distance doubled, +1 unless the structure node
    // is adjacent to both endpoints (see `SsfExtractor::compute_pair`).
    let dist: Vec<u32> = (0..s.members.len())
        .map(|x| {
            let d = s.dist[x];
            let both = s.adj[x].contains(&0) && s.adj[x].contains(&1);
            2 * d + u32::from(d >= 1 && !both)
        })
        .collect();
    let tiebreak: Vec<u64> = (0..s.members.len())
        .map(|x| s.members[x][0] as u64)
        .collect();
    let order = palette_wl(&s.adj, &dist, (0, 1), &tiebreak);
    let links = select(&s, &order, k);
    let theta = config.decay.theta();
    let mut values = Vec::with_capacity(config.feature_dim());
    match config.encoding {
        EntryEncoding::InfluenceAndStructure => {
            let infl = adjacency_matrix(
                &links,
                k,
                l_t,
                theta,
                EntryEncoding::LogInfluence,
            );
            unfold(&infl, k, &mut values);
            let bin =
                adjacency_matrix(&links, k, l_t, theta, EntryEncoding::Binary);
            unfold(&bin, k, &mut values);
        }
        enc => {
            let matrix = adjacency_matrix(&links, k, l_t, theta, enc);
            unfold(&matrix, k, &mut values);
        }
    }
    Ok((values, h, s.members.len()))
}

/// Panicking wrapper over [`try_extract`] for tests and tools.
///
/// # Panics
///
/// Panics on the [`try_extract`] error conditions.
pub fn extract<G: GraphView + ?Sized>(
    g: &G,
    a: NodeId,
    b: NodeId,
    l_t: Timestamp,
    config: &SsfConfig,
) -> (Vec<f64>, u32, usize) {
    match try_extract(g, a, b, l_t, config) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use dyngraph::DynamicNetwork;

    use super::*;
    use crate::feature::SsfExtractor;

    fn sample() -> DynamicNetwork {
        [
            (0, 2, 8),
            (1, 2, 9),
            (1, 3, 5),
            (3, 4, 6),
            (0, 5, 7),
            (0, 6, 7),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn reference_matches_extractor_on_all_encodings() {
        let g = sample();
        for enc in [
            EntryEncoding::NormalizedInfluence,
            EntryEncoding::LogInfluence,
            EntryEncoding::ReciprocalDistance,
            EntryEncoding::InfluenceAndStructure,
            EntryEncoding::LinkCount,
            EntryEncoding::Binary,
        ] {
            let cfg = SsfConfig::new(5).with_encoding(enc);
            let (vals, h, sn) = extract(&g, 0, 1, 10, &cfg);
            let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 10);
            let bits =
                |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&vals), bits(f.values()), "{enc:?}");
            assert_eq!(h, f.radius());
            assert_eq!(sn, f.structure_node_count());
        }
    }

    #[test]
    fn reference_reports_degenerate_targets() {
        let g = sample();
        let cfg = SsfConfig::new(4);
        assert!(matches!(
            try_extract(&g, 1, 1, 5, &cfg),
            Err(ExtractError::DegenerateTarget { node: 1 })
        ));
        assert!(matches!(
            try_extract(&g, 0, 99, 5, &cfg),
            Err(ExtractError::UnknownEndpoint { node: 99, .. })
        ));
    }
}
