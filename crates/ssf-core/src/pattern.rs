//! K-structure-subgraph pattern mining (Figure 6 of the paper).
//!
//! Two K-structure subgraphs follow the same *pattern* when they have the
//! same connection relations among their ordered structure nodes
//! (multi-links ignored). The paper samples 2,000 links per dataset,
//! extracts their K-structure subgraphs, and visualizes the most frequent
//! pattern; [`PatternMiner`] reproduces the counting and renders patterns
//! as ASCII adjacency matrices.

use std::collections::HashMap;
use std::fmt;

use crate::kstructure::KStructureSubgraph;

/// Canonical connectivity signature of a K-structure subgraph: the binary
/// upper triangle of its ordered slot adjacency, packed into bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternSignature {
    k: usize,
    bits: Vec<u64>,
}

impl PatternSignature {
    /// Builds the signature of a K-structure subgraph.
    pub fn of(ks: &KStructureSubgraph) -> Self {
        let k = ks.k();
        let nbits = k * (k - 1) / 2;
        let mut bits = vec![0u64; nbits.div_ceil(64)];
        for (m, n) in ks.links() {
            let idx = Self::bit_index(k, m, n);
            bits[idx / 64] |= 1 << (idx % 64);
        }
        PatternSignature { k, bits }
    }

    /// The pattern's `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `true` if the pattern has a structure link between slots `m` and `n`.
    ///
    /// # Panics
    ///
    /// Panics if `m == n` or either slot is `>= k`.
    pub fn has_link(&self, m: usize, n: usize) -> bool {
        assert!(m != n && m < self.k && n < self.k, "invalid slot pair");
        let idx = Self::bit_index(self.k, m.min(n), m.max(n));
        self.bits[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// Number of structure links in the pattern.
    pub fn link_count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Upper-triangle bit position of pair `(m, n)` with `m < n`.
    fn bit_index(k: usize, m: usize, n: usize) -> usize {
        debug_assert!(m < n && n < k);
        // pairs (0,1), (0,2), (1,2), (0,3), ... column-major like Eq. 5.
        n * (n - 1) / 2 + m
    }
}

impl fmt::Display for PatternSignature {
    /// ASCII adjacency matrix; `a`/`b` mark the endpoint slots, `#` a link.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "    ")?;
        for n in 0..self.k {
            write!(f, "{:>2}", slot_label(n))?;
        }
        writeln!(f)?;
        for m in 0..self.k {
            write!(f, "  {:>2}", slot_label(m))?;
            for n in 0..self.k {
                let c = if m == n {
                    '.'
                } else if self.has_link(m, n) {
                    '#'
                } else {
                    ' '
                };
                write!(f, " {c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn slot_label(slot: usize) -> String {
    match slot {
        0 => "a".to_string(),
        1 => "b".to_string(),
        n => (n + 1).to_string(),
    }
}

/// Frequency counter over observed pattern signatures.
///
/// # Example
///
/// ```rust
/// use dyngraph::DynamicNetwork;
/// use ssf_core::{PatternMiner, SsfConfig, SsfExtractor};
///
/// let g: DynamicNetwork =
///     [(0, 2, 1), (1, 2, 2), (2, 3, 3)].into_iter().collect();
/// let ex = SsfExtractor::new(SsfConfig::new(4));
/// let mut miner = PatternMiner::new();
/// let (ks, _, _) = ex.k_structure(&g, 0, 1);
/// miner.observe(&ks);
/// assert_eq!(miner.observations(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PatternMiner {
    counts: HashMap<PatternSignature, usize>,
    total: usize,
}

impl PatternMiner {
    /// Creates an empty miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one K-structure subgraph.
    pub fn observe(&mut self, ks: &KStructureSubgraph) {
        *self.counts.entry(PatternSignature::of(ks)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total subgraphs observed.
    pub fn observations(&self) -> usize {
        self.total
    }

    /// Number of distinct patterns seen.
    pub fn distinct_patterns(&self) -> usize {
        self.counts.len()
    }

    /// The most frequent pattern and its count (ties broken towards the
    /// denser pattern, then deterministically).
    pub fn most_frequent(&self) -> Option<(&PatternSignature, usize)> {
        self.counts
            .iter()
            .max_by_key(|(sig, &c)| (c, sig.link_count(), sig.bits.clone()))
            .map(|(sig, &c)| (sig, c))
    }

    /// All patterns sorted by descending frequency.
    pub fn ranked(&self) -> Vec<(&PatternSignature, usize)> {
        let mut v: Vec<(&PatternSignature, usize)> =
            self.counts.iter().map(|(s, &c)| (s, c)).collect();
        v.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then_with(|| b.0.link_count().cmp(&a.0.link_count()))
                .then_with(|| a.0.bits.cmp(&b.0.bits))
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SsfConfig, SsfExtractor};
    use dyngraph::DynamicNetwork;

    fn ks_of(
        g: &DynamicNetwork,
        a: u32,
        b: u32,
        k: usize,
    ) -> KStructureSubgraph {
        SsfExtractor::new(SsfConfig::new(k)).k_structure(g, a, b).0
    }

    #[test]
    fn identical_topology_same_signature() {
        let g1: DynamicNetwork = [(0, 2, 1), (1, 2, 9)].into_iter().collect();
        let g2: DynamicNetwork =
            [(0, 2, 4), (1, 2, 4), (0, 2, 5)].into_iter().collect();
        // Same shape (common neighbor), different timestamps/multiplicity.
        let s1 = PatternSignature::of(&ks_of(&g1, 0, 1, 3));
        let s2 = PatternSignature::of(&ks_of(&g2, 0, 1, 3));
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_topology_different_signature() {
        let common: DynamicNetwork =
            [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let pendant: DynamicNetwork =
            [(0, 2, 1), (2, 3, 1), (1, 3, 1)].into_iter().collect();
        let s1 = PatternSignature::of(&ks_of(&common, 0, 1, 3));
        let s2 = PatternSignature::of(&ks_of(&pendant, 0, 1, 3));
        assert_ne!(s1, s2);
    }

    #[test]
    fn has_link_matches_subgraph() {
        let g: DynamicNetwork = [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let ks = ks_of(&g, 0, 1, 3);
        let sig = PatternSignature::of(&ks);
        for m in 0..3 {
            for n in 0..3 {
                if m != n {
                    assert_eq!(sig.has_link(m, n), ks.has_link(m, n));
                }
            }
        }
        assert_eq!(sig.link_count(), 2);
    }

    #[test]
    fn miner_counts_and_ranks() {
        let common: DynamicNetwork =
            [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let pendant: DynamicNetwork =
            [(0, 2, 1), (2, 3, 1), (1, 3, 1)].into_iter().collect();
        let mut miner = PatternMiner::new();
        miner.observe(&ks_of(&common, 0, 1, 4));
        miner.observe(&ks_of(&common, 0, 1, 4));
        miner.observe(&ks_of(&pendant, 0, 1, 4));
        assert_eq!(miner.observations(), 3);
        assert_eq!(miner.distinct_patterns(), 2);
        let (top, count) = miner.most_frequent().unwrap();
        assert_eq!(count, 2);
        assert_eq!(top, &PatternSignature::of(&ks_of(&common, 0, 1, 4)));
        let ranked = miner.ranked();
        assert_eq!(ranked[0].1, 2);
        assert_eq!(ranked[1].1, 1);
    }

    #[test]
    fn display_renders_matrix() {
        let g: DynamicNetwork = [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let sig = PatternSignature::of(&ks_of(&g, 0, 1, 3));
        let text = sig.to_string();
        assert!(text.contains('a'));
        assert!(text.contains('b'));
        assert!(text.contains('#'));
    }

    #[test]
    fn large_k_uses_multiple_words() {
        // k = 20 → 190 bits → 3 u64 words.
        let g: DynamicNetwork = (0..30u32).map(|i| (i, i + 1, 1)).collect();
        let ks = ks_of(&g, 10, 11, 20);
        let sig = PatternSignature::of(&ks);
        assert!(sig.link_count() > 0);
        assert!(sig.k() == 20);
    }
}
