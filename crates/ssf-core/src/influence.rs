//! Temporal influence decay and normalization (Definition 8 of the paper).
//!
//! A history link emerged at `l_s` retains influence
//! `f(l_t, l_s) = exp(−θ·(l_t − l_s))` at prediction time `l_t` (Eq. 2,
//! after Yu et al., IJCAI'17). All links between two structure nodes are
//! collapsed into one *normalized influence* — the sum of their individual
//! remaining influences (Eq. 3).
//!
//! Inputs here are bare timestamp multisets already pulled out of a
//! subgraph, so this stage is representation-independent: any
//! [`dyngraph::GraphView`] source (mutable, frozen CSR, overlay) that
//! serves the same timestamps produces the same influence, bit for bit.

use dyngraph::Timestamp;

/// Exponential influence decay `f(l_t, l_s) = exp(−θ·(l_t − l_s))`.
///
/// The paper fixes `θ = 0.5` "to obtain an average performance"; the
/// ablation bench sweeps it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialDecay {
    theta: f64,
}

impl Default for ExponentialDecay {
    fn default() -> Self {
        ExponentialDecay { theta: 0.5 }
    }
}

impl ExponentialDecay {
    /// Creates a decay with damping factor `theta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta` and `theta` is finite (the paper restricts
    /// `θ ∈ (0, 1)`; values ≥ 1 are accepted for ablation sweeps).
    pub fn new(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta.is_finite(),
            "theta must be positive and finite, got {theta}"
        );
        ExponentialDecay { theta }
    }

    /// The damping factor θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Remaining influence of a link from time `l_s` at time `l_t` (Eq. 2).
    ///
    /// Links "from the future" (`l_s > l_t`) are clamped to influence 1.0;
    /// the extraction pipeline never passes them, but clamping keeps the
    /// function total.
    pub fn influence(&self, l_t: Timestamp, l_s: Timestamp) -> f64 {
        if l_s >= l_t {
            return 1.0;
        }
        (-self.theta * (l_t - l_s) as f64).exp()
    }
}

/// Normalized influence `l̃ = Σ_k exp(−θ·(l_t − l_k))` of a multiset of link
/// timestamps (Eq. 3).
///
/// Returns 0.0 for an empty slice (no structure link).
///
/// # Example
///
/// ```rust
/// use ssf_core::normalized_influence;
///
/// let decay = ssf_core::ExponentialDecay::new(0.5);
/// let l = normalized_influence(&[9, 10], 10, decay);
/// assert!((l - (1.0 + (-0.5f64).exp())).abs() < 1e-12);
/// ```
pub fn normalized_influence(
    timestamps: &[Timestamp],
    l_t: Timestamp,
    decay: ExponentialDecay,
) -> f64 {
    timestamps.iter().map(|&l| decay.influence(l_t, l)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influence_at_present_is_one() {
        let d = ExponentialDecay::default();
        assert_eq!(d.influence(10, 10), 1.0);
    }

    #[test]
    fn influence_decays_monotonically() {
        let d = ExponentialDecay::new(0.5);
        let vals: Vec<f64> =
            (0..5).map(|age| d.influence(10, 10 - age)).collect();
        for w in vals.windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!((d.influence(10, 8) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn larger_theta_decays_faster() {
        let slow = ExponentialDecay::new(0.1);
        let fast = ExponentialDecay::new(0.9);
        assert!(fast.influence(10, 5) < slow.influence(10, 5));
    }

    #[test]
    fn future_links_clamped() {
        let d = ExponentialDecay::default();
        assert_eq!(d.influence(5, 9), 1.0);
    }

    #[test]
    fn normalized_influence_sums() {
        let d = ExponentialDecay::new(0.5);
        let single = normalized_influence(&[10], 10, d);
        assert_eq!(single, 1.0);
        let many = normalized_influence(&[10, 10, 10], 10, d);
        assert_eq!(many, 3.0);
        assert_eq!(normalized_influence(&[], 10, d), 0.0);
    }

    #[test]
    fn more_links_more_influence() {
        let d = ExponentialDecay::new(0.5);
        let one_recent = normalized_influence(&[10], 10, d);
        let two_old = normalized_influence(&[1, 1], 10, d);
        // Very old pairs can still lose to one fresh link — the decay
        // dominates multiplicity at large age.
        assert!(two_old < one_recent);
        let two_recent = normalized_influence(&[9, 10], 10, d);
        assert!(two_recent > one_recent);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_theta_rejected() {
        let _ = ExponentialDecay::new(0.0);
    }
}
