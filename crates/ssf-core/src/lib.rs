//! Structure Subgraph Feature (SSF) extraction — the core contribution of
//! *"A Universal Method Based on Structure Subgraph Feature for Link
//! Prediction over Dynamic Networks"* (ICDCS 2019).
//!
//! The extraction pipeline (Algorithm 3 of the paper) turns a target link
//! `e_t = (a, b)` of a timestamped multigraph into a fixed-length feature
//! vector:
//!
//! 1. [`hop`] — extract the *h-hop subgraph* around the target link
//!    (Definition 3), growing `h` until enough structure exists.
//! 2. [`structure`] — merge nodes with identical neighbor sets into
//!    *structure nodes* (Definition 4, Algorithm 1), producing the
//!    *h-hop structure subgraph* (Definition 6).
//! 3. [`palette`] — order the structure nodes with the Palette-WL color
//!    refinement (Algorithm 2), pinning the two endpoints to orders 1 and 2.
//! 4. [`kstructure`] — keep the top-`K` structure nodes (Definition 7).
//! 5. [`influence`] — collapse the multi-links between two structure nodes
//!    into a single *normalized influence*
//!    `l̃ = Σ exp(−θ·(l_t − l_k))` (Definition 8).
//! 6. [`feature`] — fill the `K×K` adjacency matrix (Eq. 4, with pluggable
//!    [`EntryEncoding`]s) and unfold its upper triangle, minus the target
//!    entry, into the SSF vector (Definition 10, Eq. 5).
//!
//! [`pattern`] additionally mines the most frequent K-structure-subgraph
//! connection patterns, reproducing the paper's Figure 6.
//!
//! # Example
//!
//! ```rust
//! use dyngraph::DynamicNetwork;
//! use ssf_core::{SsfConfig, SsfExtractor};
//!
//! // A small dynamic network; will node 0 link to node 4 at time 6?
//! let g: DynamicNetwork = [
//!     (0, 1, 1), (1, 2, 2), (2, 0, 3), (0, 3, 4), (3, 4, 5), (2, 4, 5),
//! ]
//! .into_iter()
//! .collect();
//!
//! let extractor = SsfExtractor::new(SsfConfig::new(5));
//! let feature = extractor.extract(&g, 0, 4, 6);
//! assert_eq!(feature.values().len(), SsfConfig::new(5).feature_dim());
//! ```

pub mod cache;
pub mod error;
pub mod feature;
pub mod hop;
pub mod influence;
pub mod kstructure;
pub mod palette;
pub mod pattern;
pub mod reference;
pub mod roles;
pub mod structure;
pub mod viz;

pub use cache::{
    CacheStats, CachedPair, ExtractScratch, ExtractionCache, FrozenCacheView,
    LruCache,
};
pub use error::ExtractError;
pub use feature::{
    DijkstraScratch, EntryEncoding, SsfConfig, SsfExtractor, SsfFeature,
};
pub use hop::{HopScratch, HopSubgraph};
pub use influence::{normalized_influence, ExponentialDecay};
pub use kstructure::KStructureSubgraph;
pub use pattern::{PatternMiner, PatternSignature};
pub use roles::{NodeRole, RoleAnalysis};
pub use structure::{StructureScratch, StructureSubgraph};
