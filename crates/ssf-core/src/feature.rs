//! SSF extraction (Algorithm 3, Definitions 9–10, Eq. 4–5 of the paper).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use dyngraph::{GraphView, NodeId, Timestamp};
use obs::ObsHandle;

use crate::cache::{CachedPair, ExtractionCache};
use crate::error::ExtractError;
use crate::hop::HopSubgraph;
use crate::influence::{normalized_influence, ExponentialDecay};
use crate::kstructure::KStructureSubgraph;
use crate::palette::palette_wl_csr;
use crate::structure::StructureSubgraph;

/// How an entry `A(m, n)` of the normalized K-structure-subgraph adjacency
/// matrix is encoded when a structure link exists between slots `m` and `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EntryEncoding {
    /// The normalized influence `l̃ = Σ exp(−θ·(l_t − l_k))` itself
    /// (Definition 8 / Eq. 4).
    NormalizedInfluence,
    /// Log-scaled normalized influence `max(0, 1 + ln(l̃)/Λ)` with `Λ = 30`:
    /// a monotone reparameterization of Definition 8 that is *linear in
    /// link age* (a single link of age `Δ` maps to `1 − θΔ/Λ`). The raw
    /// exponential spans hundreds of orders of magnitude, which no
    /// standardization can recondition for a learner; the log form keeps
    /// the same per-entry ranking while staying numerically informative.
    LogInfluence,
    /// The paper's experimental variant (§V-B): `1/(1 + min(d(N_x), d(N_y)))`
    /// where `d` is the shortest-path distance to the target link in the
    /// normalized subgraph with edge lengths `1/l̃`. The paper writes `1/min`
    /// without the `+1`; the endpoints sit at distance 0, so the raw formula
    /// divides by zero on every link incident to them — we add 1 to keep the
    /// encoding total while preserving its monotonicity (see DESIGN.md).
    ReciprocalDistance,
    /// The normalized-influence unfolding concatenated with the plain 0/1
    /// connectivity unfolding (feature dimension doubles). §V-B invites
    /// relaxing the entries "to further increase the flexibility of SSF";
    /// the influence half carries recency and multiplicity magnitude while
    /// the binary half keeps links visible after their influence has
    /// decayed to ~0, so the combination is the most *universal* choice
    /// and our default (ablation: `cargo run -p ssf-bench --bin ablation`).
    #[default]
    InfluenceAndStructure,
    /// SSF-W (§VI-C1): the raw multi-link count `k`, timestamps ignored.
    LinkCount,
    /// Plain 0/1 connectivity.
    Binary,
}

impl EntryEncoding {
    /// Stable identifier used in persisted models and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            EntryEncoding::NormalizedInfluence => "influence",
            EntryEncoding::LogInfluence => "log-influence",
            EntryEncoding::ReciprocalDistance => "recip-distance",
            EntryEncoding::InfluenceAndStructure => "influence+structure",
            EntryEncoding::LinkCount => "link-count",
            EntryEncoding::Binary => "binary",
        }
    }

    /// Parses [`EntryEncoding::as_str`] output (case-insensitive).
    pub fn parse(name: &str) -> Option<EntryEncoding> {
        [
            EntryEncoding::NormalizedInfluence,
            EntryEncoding::LogInfluence,
            EntryEncoding::ReciprocalDistance,
            EntryEncoding::InfluenceAndStructure,
            EntryEncoding::LinkCount,
            EntryEncoding::Binary,
        ]
        .into_iter()
        .find(|e| e.as_str().eq_ignore_ascii_case(name))
    }
}

/// Configuration of the SSF extractor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsfConfig {
    /// Number of structure nodes `K` to keep (the paper uses `K = 10`).
    pub k: usize,
    /// Influence decay.
    pub decay: ExponentialDecay,
    /// Adjacency-entry encoding.
    pub encoding: EntryEncoding,
    /// Safety cap on the hop radius growth (Algorithm 3 line 2 grows `h`
    /// until `|V_S| ≥ K`; the cap bounds pathological components).
    pub max_h: u32,
}

impl SsfConfig {
    /// Configuration with `K = k` and the paper's defaults
    /// (`θ = 0.5`, reciprocal-distance entries, `h ≤ 10`).
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` — smaller `K` yields an empty feature vector.
    pub fn new(k: usize) -> Self {
        assert!(k >= 3, "k must be at least 3 for a non-empty feature");
        SsfConfig {
            k,
            decay: ExponentialDecay::default(),
            encoding: EntryEncoding::default(),
            max_h: 10,
        }
    }

    /// Sets the decay damping factor θ.
    #[must_use]
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.decay = ExponentialDecay::new(theta);
        self
    }

    /// Sets the entry encoding.
    #[must_use]
    pub fn with_encoding(mut self, encoding: EntryEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// Sets the hop-radius cap.
    #[must_use]
    pub fn with_max_h(mut self, max_h: u32) -> Self {
        assert!(max_h >= 1, "max_h must be at least 1");
        self.max_h = max_h;
        self
    }

    /// Dimension of the feature vector: `K(K−1)/2 − 1` (Eq. 5, every upper
    /// triangle entry except the target `A(1,2)`), doubled for the
    /// concatenated [`EntryEncoding::InfluenceAndStructure`].
    pub fn feature_dim(&self) -> usize {
        let base = self.k * (self.k - 1) / 2 - 1;
        if self.encoding == EntryEncoding::InfluenceAndStructure {
            2 * base
        } else {
            base
        }
    }
}

/// The Structure Subgraph Feature of one target link (Definition 10).
#[derive(Debug, Clone, PartialEq)]
pub struct SsfFeature {
    values: Vec<f64>,
    k: usize,
    h_used: u32,
    structure_nodes: usize,
}

impl SsfFeature {
    /// The unfolded feature vector, length `K(K−1)/2 − 1`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the feature, returning the raw vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// The `K` this feature was extracted with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The hop radius the extraction stopped at.
    pub fn radius(&self) -> u32 {
        self.h_used
    }

    /// `|V_S|` of the final h-hop structure subgraph.
    pub fn structure_node_count(&self) -> usize {
        self.structure_nodes
    }
}

/// Extracts Structure Subgraph Features from a dynamic network
/// (Algorithm 3).
///
/// # Example
///
/// ```rust
/// use dyngraph::DynamicNetwork;
/// use ssf_core::{SsfConfig, SsfExtractor};
///
/// let g: DynamicNetwork =
///     [(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)].into_iter().collect();
/// let ex = SsfExtractor::new(SsfConfig::new(4));
/// let f = ex.extract(&g, 0, 2, 5);
/// assert_eq!(f.values().len(), SsfConfig::new(4).feature_dim());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsfExtractor {
    config: SsfConfig,
}

impl SsfExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(config: SsfConfig) -> Self {
        SsfExtractor { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &SsfConfig {
        &self.config
    }

    /// Runs the full pipeline for target link `(a, b)` predicted at time
    /// `l_t` and returns the feature vector.
    ///
    /// `g` must be the *history* network (all links strictly before `l_t`);
    /// the extractor does not filter by timestamp itself so that callers can
    /// reuse one period slice for many target links.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is outside `g`. Serving paths
    /// that cannot rule those out should use
    /// [`SsfExtractor::try_extract`].
    pub fn extract<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
        l_t: Timestamp,
    ) -> SsfFeature {
        match self.try_extract(g, a, b, l_t) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SsfExtractor::extract`]: degenerate targets come
    /// back as [`ExtractError`] values instead of panics.
    ///
    /// # Errors
    ///
    /// [`ExtractError::DegenerateTarget`] when `a == b`, and
    /// [`ExtractError::UnknownEndpoint`] when either endpoint is outside
    /// `g`'s id space.
    pub fn try_extract<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
        l_t: Timestamp,
    ) -> Result<SsfFeature, ExtractError> {
        let (ks, h_used, structure_nodes) = self.try_k_structure(g, a, b)?;
        Ok(self.feature_from_ks(
            &ks,
            h_used,
            structure_nodes,
            l_t,
            &ObsHandle::noop(),
            &mut DijkstraScratch::default(),
        ))
    }

    /// [`SsfExtractor::try_extract`] against an [`ExtractionCache`]:
    /// bit-identical output, with the `l_t`-independent pipeline prefix
    /// served from (and stored into) the cache's pair memo and the h-hop
    /// frontiers from its ball memo.
    ///
    /// The cache is synced to `g`'s revision and this extractor's
    /// configuration first, so stale entries can never leak into a result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SsfExtractor::try_extract`].
    pub fn try_extract_cached<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
        l_t: Timestamp,
        cache: &mut ExtractionCache,
    ) -> Result<SsfFeature, ExtractError> {
        let p = self.try_k_structure_cached(g, a, b, cache)?;
        let obs = cache.recorder().clone();
        Ok(self.feature_from_ks(
            &p.ks,
            p.h_used,
            p.structure_nodes,
            l_t,
            &obs,
            &mut cache.scratch.dijkstra,
        ))
    }

    /// Definitions 9–10 from an already-selected K-structure subgraph: the
    /// cheap, `l_t`-dependent tail every caching layer re-runs per call.
    fn feature_from_ks(
        &self,
        ks: &KStructureSubgraph,
        h_used: u32,
        structure_nodes: usize,
        l_t: Timestamp,
        obs: &ObsHandle,
        dij: &mut DijkstraScratch,
    ) -> SsfFeature {
        let _span = obs.span("ssf.core.encode");
        let k = self.config.k;
        let mut values = Vec::with_capacity(self.config.feature_dim());
        match self.config.encoding {
            EntryEncoding::InfluenceAndStructure => {
                let infl = self.adjacency_matrix(
                    ks,
                    l_t,
                    EntryEncoding::LogInfluence,
                    dij,
                );
                unfold_upper_triangle(&infl, k, &mut values);
                let bin =
                    self.adjacency_matrix(ks, l_t, EntryEncoding::Binary, dij);
                unfold_upper_triangle(&bin, k, &mut values);
            }
            enc => {
                let matrix = self.adjacency_matrix(ks, l_t, enc, dij);
                unfold_upper_triangle(&matrix, k, &mut values);
            }
        }
        SsfFeature {
            values,
            k,
            h_used,
            structure_nodes,
        }
    }

    /// Runs the pipeline up to K-structure-subgraph selection (Algorithm 3
    /// lines 1–8), returning `(subgraph, h_used, |V_S|)`.
    ///
    /// Exposed separately so pattern mining (Figure 6) can reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is outside `g`.
    pub fn k_structure<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
    ) -> (KStructureSubgraph, u32, usize) {
        match self.try_k_structure(g, a, b) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`SsfExtractor::k_structure`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SsfExtractor::try_extract`].
    pub fn try_k_structure<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
    ) -> Result<(KStructureSubgraph, u32, usize), ExtractError> {
        HopSubgraph::validate(g, a, b)?;
        // One code path for cached and uncached extraction: the uncached
        // form simply runs against a throwaway cache, which is what makes
        // "bit-identical" a structural guarantee instead of a test hope.
        let mut cache = ExtractionCache::new();
        let p = self.compute_pair(g, a, b, &mut cache);
        Ok((p.ks, p.h_used, p.structure_nodes))
    }

    /// Cached form of [`SsfExtractor::try_k_structure`]: syncs `cache` to
    /// `g`'s revision and this extractor's configuration, then serves the
    /// pair from the memo or computes and stores it.
    ///
    /// Pair keys are directional: `(a, b)` pins Palette-WL orders 1/2 to
    /// `a`/`b`, so `(b, a)` is a different target.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SsfExtractor::try_extract`].
    pub fn try_k_structure_cached<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
        cache: &mut ExtractionCache,
    ) -> Result<Arc<CachedPair>, ExtractError> {
        HopSubgraph::validate(g, a, b)?;
        cache.sync(g);
        cache.sync_config(self.config.k, self.config.max_h);
        if let Some(p) = cache.pair(a, b) {
            cache.stats.pair_hits += 1;
            return Ok(p);
        }
        cache.stats.pair_misses += 1;
        let p = Arc::new(self.compute_pair(g, a, b, cache));
        cache.insert_pair(a, b, Arc::clone(&p));
        Ok(p)
    }

    /// Algorithm 3 lines 1–8 against `cache`'s ball memo and scratch
    /// buffers. Endpoints must already be validated.
    fn compute_pair<G: GraphView + ?Sized>(
        &self,
        g: &G,
        a: NodeId,
        b: NodeId,
        cache: &mut ExtractionCache,
    ) -> CachedPair {
        let _pair_span = cache.recorder().span("ssf.core.pair");
        let k = self.config.k;
        let mut h = 1;
        let ball_a = cache.ball(g, a, h);
        let ball_b = cache.ball(g, b, h);
        let mut hop = HopSubgraph::from_balls(
            g,
            a,
            b,
            h,
            ball_a.as_slice(),
            ball_b.as_slice(),
            &mut cache.scratch.hop,
        );
        let structure_span = cache.recorder().span("ssf.core.structure");
        let mut s = StructureSubgraph::combine_with_scratch(
            &hop,
            &mut cache.scratch.structure,
        );
        structure_span.finish();
        while s.node_count() < k && h < self.config.max_h {
            h += 1;
            cache.recorder().counter("ssf.core.kgrowth_rounds", 1);
            let ball_a = cache.ball(g, a, h);
            let ball_b = cache.ball(g, b, h);
            let grown = HopSubgraph::from_balls(
                g,
                a,
                b,
                h,
                ball_a.as_slice(),
                ball_b.as_slice(),
                &mut cache.scratch.hop,
            );
            if grown.node_count() == hop.node_count() {
                break; // component exhausted
            }
            hop = grown;
            let structure_span = cache.recorder().span("ssf.core.structure");
            s = StructureSubgraph::combine_with_scratch(
                &hop,
                &mut cache.scratch.structure,
            );
            structure_span.finish();
        }
        // Initial colors: distance to the target link, with structure nodes
        // adjacent to BOTH endpoints preceding the rest of their distance
        // class. The prime-log hash ranks well-connected nodes late within
        // a class, which would push high-degree common neighbors — the very
        // nodes the paper's Figure 1 argument relies on — out of the top-K
        // window on dense graphs; the refined init keeps them selectable
        // (it is also the order the paper's own Figure 4 example shows).
        let dist: Vec<u32> = (0..s.node_count())
            .map(|x| {
                let d = s.distance(x);
                let nb = s.neighbors(x);
                let both = nb.contains(&0) && nb.contains(&1);
                2 * d + u32::from(d >= 1 && !both)
            })
            .collect();
        // Tiebreak for automorphic structure nodes: earliest-ordered member
        // first — canonical local ids sort by (distance, global id), which
        // keeps a slot's meaning stable across target links.
        let tiebreak: Vec<u64> = (0..s.node_count())
            .map(|x| s.members(x)[0] as u64)
            .collect();
        let wl_span = cache.recorder().span("ssf.core.wl");
        // Refinement reads the structure subgraph's adjacency CSR directly —
        // no per-pair `Vec<Vec<usize>>` materialization.
        let order = palette_wl_csr(
            s.node_count(),
            |x| s.neighbors(x),
            &dist,
            (0, 1),
            &tiebreak,
            &mut cache.scratch.wl,
        );
        wl_span.finish();
        let node_count = s.node_count();
        // Invalidation footprint: the merged-ball node set the growth
        // loop examined. A mutation touching none of these nodes leaves
        // every ball at every examined radius — and therefore this whole
        // result — bit-identical.
        let mut deps: Vec<NodeId> =
            (0..hop.node_count()).map(|i| hop.global_id(i)).collect();
        deps.sort_unstable();
        CachedPair {
            ks: KStructureSubgraph::select(&s, &order, k),
            h_used: h,
            structure_nodes: node_count,
            deps,
        }
    }

    /// Builds the dense `K×K` adjacency matrix `A` (Eq. 4) in row-major
    /// order for one (non-concatenated) [`EntryEncoding`].
    fn adjacency_matrix(
        &self,
        ks: &KStructureSubgraph,
        l_t: Timestamp,
        encoding: EntryEncoding,
        dij: &mut DijkstraScratch,
    ) -> Vec<f64> {
        let k = self.config.k;
        let mut a = vec![0.0; k * k];
        let entry = |m: usize, n: usize| -> f64 {
            let ts = ks.timestamps_between(m, n);
            if ts.is_empty() {
                return 0.0;
            }
            match encoding {
                EntryEncoding::NormalizedInfluence => {
                    normalized_influence(ts, l_t, self.config.decay)
                }
                EntryEncoding::LogInfluence => {
                    const LAMBDA: f64 = 30.0;
                    let raw = normalized_influence(ts, l_t, self.config.decay);
                    if raw > 0.0 {
                        (1.0 + raw.ln() / LAMBDA).max(0.0)
                    } else {
                        0.0
                    }
                }
                EntryEncoding::LinkCount => ts.len() as f64,
                EntryEncoding::Binary => 1.0,
                EntryEncoding::ReciprocalDistance => 0.0, // filled below
                EntryEncoding::InfluenceAndStructure => {
                    unreachable!("concatenated encoding split by caller")
                }
            }
        };
        for (m, n) in ks.links() {
            let v = entry(m, n);
            a[m * k + n] = v;
            a[n * k + m] = v;
        }
        if encoding == EntryEncoding::ReciprocalDistance {
            self.fill_reciprocal_distance(ks, l_t, &mut a, dij);
        }
        // The target entry is always unknown (Eq. 4 note).
        a[1] = 0.0;
        a[k] = 0.0;
        a
    }

    /// §V-B variant: entries are `1/(1 + min(d(N_x), d(N_y)))` with `d` the
    /// Dijkstra distance to either endpoint over edge lengths `1/l̃`.
    ///
    /// Both runs are *bounded*: relaxation stops as soon as every slot
    /// incident to a structure link has settled (only those distances are
    /// read below), and a link-free subgraph skips the traversal entirely.
    /// With non-negative weights and strict `<` relaxation the settled
    /// distances are the minimum over paths of the float path sum — a value
    /// independent of relaxation order — so early exit is bit-identical to
    /// the exhaustive reference run; unreachable slots keep `+∞`, and
    /// `1/(1+∞)` is the same `+0.0` the matrix was initialized with.
    fn fill_reciprocal_distance(
        &self,
        ks: &KStructureSubgraph,
        l_t: Timestamp,
        a: &mut [f64],
        dij: &mut DijkstraScratch,
    ) {
        let k = self.config.k;
        if dij.wadj.len() < k {
            dij.wadj.resize_with(k, Vec::new);
        }
        for row in dij.wadj[..k].iter_mut() {
            row.clear();
        }
        dij.needed.clear();
        dij.needed.resize(k, false);
        let mut needed_count = 0;
        for (m, n) in ks.links() {
            let lt = normalized_influence(
                ks.timestamps_between(m, n),
                l_t,
                self.config.decay,
            );
            if lt > 0.0 {
                let len = 1.0 / lt;
                dij.wadj[m].push((n, len));
                dij.wadj[n].push((m, len));
            }
            for s in [m, n] {
                if !dij.needed[s] {
                    dij.needed[s] = true;
                    needed_count += 1;
                }
            }
        }
        if needed_count == 0 {
            return; // no links: every entry stays 0
        }
        bounded_dijkstra(dij, k, 0, needed_count, DistSlot::A);
        bounded_dijkstra(dij, k, 1, needed_count, DistSlot::B);
        let d = |m: usize| dij.dist_a[m].min(dij.dist_b[m]);
        for (m, n) in ks.links() {
            let v = 1.0 / (1.0 + d(m).min(d(n)));
            a[m * k + n] = v;
            a[n * k + m] = v;
        }
    }
}

/// Which distance array of [`DijkstraScratch`] a run fills.
#[derive(Clone, Copy)]
enum DistSlot {
    A,
    B,
}

/// Reusable buffers for the bounded Dijkstra runs of the
/// [`EntryEncoding::ReciprocalDistance`] encoding: the weighted slot
/// adjacency, both distance arrays and the relaxation heap.
///
/// Like [`crate::HopScratch`], reuse never changes output.
#[derive(Debug, Clone, Default)]
pub struct DijkstraScratch {
    wadj: Vec<Vec<(usize, f64)>>,
    dist_a: Vec<f64>,
    dist_b: Vec<f64>,
    /// Slots whose distance the encoding actually reads (incident to links).
    needed: Vec<bool>,
    settled: Vec<bool>,
    /// Min-heap of `(distance bits, slot)`; for non-negative finite `f64`
    /// the bit order equals the numeric order.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

/// Single-source Dijkstra over `dij.wadj[..k]` from `src`, exiting early
/// once all `needed_count` link-incident slots have settled.
fn bounded_dijkstra(
    dij: &mut DijkstraScratch,
    k: usize,
    src: usize,
    needed_count: usize,
    slot: DistSlot,
) {
    let dist = match slot {
        DistSlot::A => &mut dij.dist_a,
        DistSlot::B => &mut dij.dist_b,
    };
    dist.clear();
    dist.resize(k, f64::INFINITY);
    dij.settled.clear();
    dij.settled.resize(k, false);
    dij.heap.clear();
    dist[src] = 0.0;
    dij.heap.push(Reverse((0.0f64.to_bits(), src)));
    let mut remaining = needed_count;
    while let Some(Reverse((bits, u))) = dij.heap.pop() {
        let du = f64::from_bits(bits);
        if dij.settled[u] || du > dist[u] {
            continue; // stale heap entry
        }
        dij.settled[u] = true;
        if dij.needed[u] {
            remaining -= 1;
            if remaining == 0 {
                break; // every read distance is final
            }
        }
        for &(v, w) in &dij.wadj[u] {
            let nd = du + w;
            if nd < dist[v] {
                dist[v] = nd;
                dij.heap.push(Reverse((nd.to_bits(), v)));
            }
        }
    }
}

/// Eq. 5: appends the upper triangle of the row-major `K×K` matrix by
/// column, skipping the target entry A(1,2) (0-based (0,1)).
fn unfold_upper_triangle(matrix: &[f64], k: usize, out: &mut Vec<f64>) {
    for n in 2..k {
        for m in 0..n {
            out.push(matrix[m * k + n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use dyngraph::DynamicNetwork;

    use super::*;

    fn chain_with_fan() -> DynamicNetwork {
        // target (0,1); triangle 0-2-1; chain 1-3-4; pendants 5,6 on 0.
        [
            (0, 2, 8),
            (1, 2, 9),
            (1, 3, 5),
            (3, 4, 6),
            (0, 5, 7),
            (0, 6, 7),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn feature_has_configured_dimension() {
        for k in [3, 5, 10] {
            let cfg = SsfConfig::new(k);
            let f = SsfExtractor::new(cfg).extract(&chain_with_fan(), 0, 1, 10);
            assert_eq!(f.values().len(), cfg.feature_dim());
            // Default (concatenated) encoding doubles the Eq. 5 dimension.
            assert_eq!(f.values().len(), 2 * (k * (k - 1) / 2 - 1));
            let single = cfg.with_encoding(EntryEncoding::Binary);
            let f =
                SsfExtractor::new(single).extract(&chain_with_fan(), 0, 1, 10);
            assert_eq!(f.values().len(), k * (k - 1) / 2 - 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn config_rejects_tiny_k() {
        let _ = SsfConfig::new(2);
    }

    #[test]
    fn radius_grows_until_k_reached() {
        // A long path needs h > 1 to collect enough structure nodes.
        let g: DynamicNetwork = (0..8u32).map(|i| (i, i + 1, 1)).collect();
        let cfg = SsfConfig::new(6);
        let f = SsfExtractor::new(cfg).extract(&g, 3, 4, 2);
        assert!(f.radius() > 1);
        assert!(f.structure_node_count() >= 6);
    }

    #[test]
    fn radius_stops_when_component_exhausted() {
        let g: DynamicNetwork = [(0, 1, 1), (0, 2, 1)].into_iter().collect();
        let cfg = SsfConfig::new(10);
        let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 2);
        assert!(f.structure_node_count() < 10);
        assert_eq!(f.values().len(), cfg.feature_dim());
    }

    #[test]
    fn normalized_influence_encoding_reflects_recency() {
        let recent: DynamicNetwork =
            [(0, 2, 9), (1, 2, 9)].into_iter().collect();
        let old: DynamicNetwork = [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let cfg =
            SsfConfig::new(3).with_encoding(EntryEncoding::NormalizedInfluence);
        let ex = SsfExtractor::new(cfg);
        let fr = ex.extract(&recent, 0, 1, 10);
        let fo = ex.extract(&old, 0, 1, 10);
        let sum = |f: &SsfFeature| f.values().iter().sum::<f64>();
        assert!(sum(&fr) > sum(&fo));
    }

    #[test]
    fn link_count_encoding_ignores_time() {
        let g: DynamicNetwork =
            [(0, 2, 1), (0, 2, 9), (1, 2, 5)].into_iter().collect();
        let cfg = SsfConfig::new(3).with_encoding(EntryEncoding::LinkCount);
        let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 10);
        // slots: 0={0},1={1},2={2}; unfold = [A(0,2), A(1,2)].
        assert_eq!(f.values(), &[2.0, 1.0]);
    }

    #[test]
    fn binary_encoding_is_zero_one() {
        let g = chain_with_fan();
        let cfg = SsfConfig::new(6).with_encoding(EntryEncoding::Binary);
        let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 10);
        assert!(f.values().iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(f.values().contains(&1.0));
    }

    #[test]
    fn reciprocal_distance_bounded_by_one() {
        let g = chain_with_fan();
        let cfg =
            SsfConfig::new(6).with_encoding(EntryEncoding::ReciprocalDistance);
        let f = SsfExtractor::new(cfg).extract(&g, 0, 1, 10);
        assert!(f.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(f.values().iter().any(|&v| v > 0.0));
    }

    #[test]
    fn try_extract_matches_extract_and_reports_errors() {
        let g = chain_with_fan();
        let ex = SsfExtractor::new(SsfConfig::new(5));
        assert_eq!(
            ex.try_extract(&g, 0, 1, 10).expect("valid target"),
            ex.extract(&g, 0, 1, 10)
        );
        assert_eq!(
            ex.try_extract(&g, 3, 3, 10),
            Err(ExtractError::DegenerateTarget { node: 3 })
        );
        assert_eq!(
            ex.try_extract(&g, 0, 42, 10),
            Err(ExtractError::UnknownEndpoint {
                node: 42,
                node_count: g.node_count()
            })
        );
    }

    #[test]
    fn deterministic_extraction() {
        let g = chain_with_fan();
        let ex = SsfExtractor::new(SsfConfig::new(8));
        assert_eq!(ex.extract(&g, 0, 1, 10), ex.extract(&g, 0, 1, 10));
    }

    #[test]
    fn target_history_does_not_leak() {
        // Identical neighborhoods; one network also has direct 0-1 history.
        let base: DynamicNetwork = [(0, 2, 5), (1, 2, 6)].into_iter().collect();
        let leaky: DynamicNetwork =
            [(0, 2, 5), (1, 2, 6), (0, 1, 7), (0, 1, 8)]
                .into_iter()
                .collect();
        let ex = SsfExtractor::new(SsfConfig::new(3));
        assert_eq!(
            ex.extract(&base, 0, 1, 10).values(),
            ex.extract(&leaky, 0, 1, 10).values()
        );
    }

    #[test]
    fn cached_extraction_is_bit_identical_to_plain() {
        let g = chain_with_fan();
        let ex = SsfExtractor::new(SsfConfig::new(5));
        let mut cache = ExtractionCache::new();
        let plain = ex.extract(&g, 0, 1, 10);
        let cold = ex.try_extract_cached(&g, 0, 1, 10, &mut cache).unwrap();
        let warm = ex.try_extract_cached(&g, 0, 1, 10, &mut cache).unwrap();
        let bits = |f: &SsfFeature| -> Vec<u64> {
            f.values().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&cold), bits(&plain));
        assert_eq!(bits(&warm), bits(&plain));
        assert!(cache.stats().pair_hits >= 1);
        // A second pair sharing endpoint 0 reuses its cached ball.
        let _ = ex.try_extract_cached(&g, 0, 3, 10, &mut cache).unwrap();
        assert!(cache.stats().ball_hits >= 1, "endpoint balls shared");
    }

    #[test]
    fn cached_extraction_tracks_graph_mutations() {
        let mut g = chain_with_fan();
        let ex = SsfExtractor::new(SsfConfig::new(5));
        let mut cache = ExtractionCache::new();
        let before = ex.try_extract_cached(&g, 0, 1, 10, &mut cache).unwrap();
        g.add_link(2, 3, 9); // new induced link inside the 1-hop subgraph
        let after = ex.try_extract_cached(&g, 0, 1, 10, &mut cache).unwrap();
        assert_eq!(after, ex.extract(&g, 0, 1, 10), "no stale result");
        assert_ne!(before, after, "mutation must be visible");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn extraction_over_frozen_view_is_bit_identical() {
        use dyngraph::{DeltaGraph, FrozenGraph};
        use std::sync::Arc;

        let g = chain_with_fan();
        let frozen = FrozenGraph::from_view(&g);
        let overlay = DeltaGraph::new(Arc::new(frozen.clone())).publish();
        let ex = SsfExtractor::new(SsfConfig::new(5));
        let bits = |f: &SsfFeature| -> Vec<u64> {
            f.values().iter().map(|v| v.to_bits()).collect()
        };
        let want = ex.extract(&g, 0, 1, 10);
        assert_eq!(bits(&ex.extract(&frozen, 0, 1, 10)), bits(&want));
        assert_eq!(bits(&ex.extract(&overlay, 0, 1, 10)), bits(&want));
        let mut cache = ExtractionCache::new();
        let cached = ex
            .try_extract_cached(&frozen, 0, 1, 10, &mut cache)
            .unwrap();
        assert_eq!(bits(&cached), bits(&want));
    }

    #[test]
    fn endpoint_symmetry() {
        // Extracting (a, b) and (b, a) gives the same vector when the two
        // sides are mirror images.
        let g: DynamicNetwork = [(0, 2, 1), (1, 3, 1), (2, 4, 2), (3, 4, 2)]
            .into_iter()
            .collect();
        let ex = SsfExtractor::new(SsfConfig::new(5));
        let ab = ex.extract(&g, 0, 1, 3);
        let ba = ex.extract(&g, 1, 0, 3);
        assert_eq!(ab.values(), ba.values());
    }
}
