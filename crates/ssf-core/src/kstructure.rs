//! K-structure subgraph selection (Definition 7 of the paper).
//!
//! Once the h-hop structure subgraph has at least `K` structure nodes and a
//! Palette-WL order, the `K` lowest-order structure nodes (the endpoints are
//! always orders 1 and 2) and the structure links among them form the
//! *K-structure subgraph*, whose `K×K` adjacency matrix is uniform across
//! target links. If the whole component holds fewer than `K` structure
//! nodes, the remaining slots stay unoccupied and the matrix is zero-padded
//! (the paper leaves this case unspecified; zero-padding matches WLNM).

use dyngraph::Timestamp;

use crate::structure::StructureSubgraph;

/// The selected top-`K` structure nodes of a target link, indexed by
/// *slot* = Palette-WL order − 1 (slot 0 = endpoint `a`, slot 1 = `b`).
///
/// Links and their timestamp multisets are stored flat — a sorted slot-pair
/// key list with a timestamp CSR — so the encoding stage probes links with
/// a binary search over contiguous memory instead of hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KStructureSubgraph {
    k: usize,
    /// `selected[slot]` = structure-subgraph node id, `None` when padded.
    selected: Vec<Option<usize>>,
    /// Slot-pair link keys `(m, n)` with `m < n`, sorted ascending.
    link_keys: Vec<(usize, usize)>,
    /// Timestamp CSR row bounds: link `link_keys[e]` owns
    /// `ts[ts_offsets[e]..ts_offsets[e + 1]]`.
    ts_offsets: Vec<usize>,
    /// Flat timestamps of all underlying links, sorted per link.
    ts: Vec<Timestamp>,
    /// Hop distance to the target link per slot (`u32::MAX` when padded).
    dist: Vec<u32>,
}

impl KStructureSubgraph {
    /// Selects the `K` structure nodes with Palette-WL order ≤ `K`.
    ///
    /// `order[x]` is the 1-based order of structure node `x`, as produced by
    /// [`crate::palette::palette_wl`].
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, if `order.len() != s.node_count()`, or if the
    /// endpoints (structure nodes 0 and 1) do not hold orders 1 and 2.
    pub fn select(s: &StructureSubgraph, order: &[usize], k: usize) -> Self {
        assert!(k >= 2, "k must be at least 2 (the two endpoints)");
        assert_eq!(order.len(), s.node_count(), "order length mismatch");
        assert_eq!(order.first(), Some(&1), "endpoint a must have order 1");
        assert_eq!(order.get(1), Some(&2), "endpoint b must have order 2");

        let mut selected = vec![None; k];
        let mut dist = vec![u32::MAX; k];
        // slot_of[x] for selected structure nodes, sentinel otherwise.
        let mut slot_of = vec![usize::MAX; s.node_count()];
        for (x, &ord) in order.iter().enumerate() {
            if ord <= k {
                selected[ord - 1] = Some(x);
                dist[ord - 1] = s.distance(x);
                slot_of[x] = ord - 1;
            }
        }
        // Structure links between selected nodes, re-keyed to slot pairs.
        // Palette order permutes the node order, so re-sort by slot key.
        let mut kept: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (x, y) in s.links() {
            let (m, n) = (slot_of[x], slot_of[y]);
            if m != usize::MAX && n != usize::MAX {
                kept.push((m.min(n), m.max(n), x, y));
            }
        }
        kept.sort_unstable();
        let mut link_keys = Vec::with_capacity(kept.len());
        let mut ts_offsets = Vec::with_capacity(kept.len() + 1);
        let mut ts = Vec::new();
        ts_offsets.push(0);
        for &(m, n, x, y) in &kept {
            link_keys.push((m, n));
            ts.extend_from_slice(s.timestamps_between(x, y));
            ts_offsets.push(ts.len());
        }
        KStructureSubgraph {
            k,
            selected,
            link_keys,
            ts_offsets,
            ts,
            dist,
        }
    }

    /// An all-padding subgraph with `k` unoccupied slots; the fixture the
    /// cache tests use for slot-independent bookkeeping checks.
    #[cfg(test)]
    pub(crate) fn empty(k: usize) -> Self {
        KStructureSubgraph {
            k,
            selected: vec![None; k],
            link_keys: Vec::new(),
            ts_offsets: vec![0],
            ts: Vec::new(),
            dist: vec![u32::MAX; k],
        }
    }

    /// The configured `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of occupied slots (`min(K, |V_S|)`).
    pub fn occupied_count(&self) -> usize {
        self.selected.iter().flatten().count()
    }

    /// `true` if slot `m` holds a structure node (not padding).
    ///
    /// # Panics
    ///
    /// Panics if `m >= k`.
    pub fn is_occupied(&self, m: usize) -> bool {
        self.selected[m].is_some()
    }

    /// The structure-subgraph node id in slot `m`, if occupied.
    ///
    /// # Panics
    ///
    /// Panics if `m >= k`.
    pub fn structure_node(&self, m: usize) -> Option<usize> {
        self.selected[m]
    }

    /// Hop distance of slot `m` to the target link (`u32::MAX` if padded).
    ///
    /// # Panics
    ///
    /// Panics if `m >= k`.
    pub fn slot_distance(&self, m: usize) -> u32 {
        self.dist[m]
    }

    /// `true` if a structure link connects slots `m` and `n`.
    pub fn has_link(&self, m: usize, n: usize) -> bool {
        self.link_keys.binary_search(&(m.min(n), m.max(n))).is_ok()
    }

    /// Timestamps of the structure link between slots `m` and `n`
    /// (empty if absent).
    pub fn timestamps_between(&self, m: usize, n: usize) -> &[Timestamp] {
        match self.link_keys.binary_search(&(m.min(n), m.max(n))) {
            Ok(e) => &self.ts[self.ts_offsets[e]..self.ts_offsets[e + 1]],
            Err(_) => &[],
        }
    }

    /// Iterates existing structure links once as slot pairs `(m, n)` with
    /// `m < n`, in ascending order.
    pub fn links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.link_keys.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::HopSubgraph;
    use crate::palette::palette_wl;
    use dyngraph::DynamicNetwork;

    fn pipeline(
        g: &DynamicNetwork,
        a: u32,
        b: u32,
        h: u32,
        k: usize,
    ) -> (StructureSubgraph, KStructureSubgraph) {
        let hop = HopSubgraph::extract(g, a, b, h);
        let s = StructureSubgraph::combine(&hop);
        let adj: Vec<Vec<usize>> = (0..s.node_count())
            .map(|x| s.neighbors(x).to_vec())
            .collect();
        let dist: Vec<u32> =
            (0..s.node_count()).map(|x| s.distance(x)).collect();
        let tiebreak: Vec<u64> = (0..s.node_count())
            .map(|x| s.members(x)[0] as u64)
            .collect();
        let order = palette_wl(&adj, &dist, (0, 1), &tiebreak);
        let ks = KStructureSubgraph::select(&s, &order, k);
        (s, ks)
    }

    fn bowtie() -> DynamicNetwork {
        // target (0,1); 0-2, 1-2, 0-3, 3-4, pendants 5,6 on 0.
        [
            (0, 2, 1),
            (1, 2, 2),
            (0, 3, 3),
            (3, 4, 4),
            (0, 5, 5),
            (0, 6, 5),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn endpoints_occupy_first_slots() {
        let g = bowtie();
        let (s, ks) = pipeline(&g, 0, 1, 2, 4);
        assert_eq!(ks.structure_node(0), Some(0));
        assert_eq!(ks.structure_node(1), Some(1));
        assert_eq!(s.members(0), &[0]);
        assert_eq!(ks.slot_distance(0), 0);
    }

    #[test]
    fn selection_truncates_to_k() {
        let g = bowtie();
        let (s, ks) = pipeline(&g, 0, 1, 2, 3);
        assert!(s.node_count() > 3);
        assert_eq!(ks.k(), 3);
        assert_eq!(ks.occupied_count(), 3);
    }

    #[test]
    fn padding_when_component_small() {
        let g: DynamicNetwork = [(0, 1, 1), (0, 2, 1)].into_iter().collect();
        let (_, ks) = pipeline(&g, 0, 1, 3, 6);
        assert_eq!(ks.occupied_count(), 3);
        assert!(!ks.is_occupied(5));
        assert_eq!(ks.slot_distance(5), u32::MAX);
        assert!(!ks.has_link(4, 5));
    }

    #[test]
    fn links_restricted_to_selected() {
        let g = bowtie();
        // k=3 keeps slots for {0},{1} and one distance-1 structure node; the
        // far node 4 and its link 3-4 must not appear.
        let (_, ks) = pipeline(&g, 0, 1, 2, 3);
        for (m, n) in ks.links() {
            assert!(m < 3 && n < 3);
        }
    }

    #[test]
    fn links_iterate_sorted() {
        let g = bowtie();
        let (_, ks) = pipeline(&g, 0, 1, 2, 5);
        let links: Vec<_> = ks.links().collect();
        assert!(links.windows(2).all(|w| w[0] < w[1]));
        assert!(links.iter().all(|&(m, n)| m < n));
    }

    #[test]
    fn timestamps_carried_over() {
        let g: DynamicNetwork =
            [(0, 2, 3), (0, 2, 7), (1, 2, 5)].into_iter().collect();
        let (_, ks) = pipeline(&g, 0, 1, 1, 3);
        assert_eq!(ks.timestamps_between(0, 2), &[3, 7]);
        assert_eq!(ks.timestamps_between(2, 0), &[3, 7]);
        assert_eq!(ks.timestamps_between(1, 2), &[5]);
        assert!(!ks.has_link(0, 1)); // target slot pair has no history here
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn k_less_than_two_rejected() {
        let g = bowtie();
        let _ = pipeline(&g, 0, 1, 1, 1);
    }
}
