//! GraphViz DOT export of K-structure subgraphs — the visual form of the
//! paper's Figure 6: blue structure nodes sized by the number of merged
//! underlying nodes, the target link dashed red, structure links weighted
//! by multiplicity.

use std::fmt::Write as _;

use crate::kstructure::KStructureSubgraph;

/// Renders a K-structure subgraph as a GraphViz `graph` document.
///
/// `member_counts[slot]` (optional) sizes each node by how many underlying
/// nodes its structure node merged; pass `None` for uniform sizes.
/// Slot 0/1 are labeled `a`/`b` and connected by the dashed red target
/// link. Pipe the output through `dot -Tsvg` to render.
///
/// # Panics
///
/// Panics if `member_counts` is provided with a length different from `k`.
pub fn to_dot(
    ks: &KStructureSubgraph,
    member_counts: Option<&[usize]>,
) -> String {
    if let Some(counts) = member_counts {
        assert_eq!(counts.len(), ks.k(), "one member count per slot required");
    }
    let mut out = String::from("graph k_structure {\n");
    out.push_str("  layout=neato;\n  node [style=filled, fillcolor=\"#4a7fb5\", fontcolor=white];\n");
    for slot in 0..ks.k() {
        if !ks.is_occupied(slot) {
            continue;
        }
        let label = match slot {
            0 => "a".to_string(),
            1 => "b".to_string(),
            n => format!("N{}", n + 1),
        };
        let size = member_counts
            .map(|c| 0.3 + (c[slot] as f64).sqrt() * 0.2)
            .unwrap_or(0.5);
        let _ = writeln!(
            out,
            "  s{slot} [label=\"{label}\", width={size:.2}, height={size:.2}, fixedsize=true];"
        );
    }
    // Target link: dashed red between the endpoints.
    out.push_str("  s0 -- s1 [style=dashed, color=red, penwidth=2];\n");
    for (m, n) in ks.links() {
        let width = 1.0 + (ks.timestamps_between(m, n).len() as f64).ln();
        let _ = writeln!(
            out,
            "  s{m} -- s{n} [color=\"#3aa05a\", penwidth={width:.2}];"
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{SsfConfig, SsfExtractor};
    use dyngraph::DynamicNetwork;

    fn sample_ks() -> KStructureSubgraph {
        let g: DynamicNetwork =
            [(0, 2, 1), (1, 2, 2), (0, 3, 3), (0, 4, 3), (2, 5, 4)]
                .into_iter()
                .collect();
        SsfExtractor::new(SsfConfig::new(5)).k_structure(&g, 0, 1).0
    }

    #[test]
    fn dot_contains_nodes_links_and_target() {
        let ks = sample_ks();
        let dot = to_dot(&ks, None);
        assert!(dot.starts_with("graph k_structure {"));
        assert!(dot.contains("s0 [label=\"a\""));
        assert!(dot.contains("s1 [label=\"b\""));
        assert!(dot.contains("style=dashed, color=red"));
        assert!(dot.contains("--"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn member_counts_scale_node_sizes() {
        let ks = sample_ks();
        let counts = vec![1usize; ks.k()];
        let uniform = to_dot(&ks, Some(&counts));
        let mut bigger = counts.clone();
        bigger[2] = 16;
        let scaled = to_dot(&ks, Some(&bigger));
        assert_ne!(uniform, scaled);
    }

    #[test]
    fn padded_slots_omitted() {
        let g: DynamicNetwork = [(0, 2, 1), (1, 2, 1)].into_iter().collect();
        let ks = SsfExtractor::new(SsfConfig::new(8)).k_structure(&g, 0, 1).0;
        let dot = to_dot(&ks, None);
        assert!(!dot.contains("s7 ["), "padding slot must not be drawn");
    }

    #[test]
    #[should_panic(expected = "one member count per slot")]
    fn member_count_length_checked() {
        let ks = sample_ks();
        let _ = to_dot(&ks, Some(&[1, 2]));
    }
}
