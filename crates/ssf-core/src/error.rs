//! Typed errors for feature extraction on degenerate targets.

use std::error::Error;
use std::fmt;

use dyngraph::NodeId;

/// Why an SSF extraction could not run for a target link.
///
/// These are precondition violations on the *target pair*, not on the
/// network: a well-formed history network never produces them for a
/// well-formed candidate pair. Serving paths that ingest hostile streams
/// use [`crate::SsfExtractor::try_extract`] to turn them into degraded
/// scores instead of panics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExtractError {
    /// Both target endpoints are the same node — a self-loop has no
    /// h-hop subgraph (Definition 3 requires two distinct endpoints).
    DegenerateTarget {
        /// The node appearing on both ends.
        node: NodeId,
    },
    /// A target endpoint is outside the network's dense id space.
    UnknownEndpoint {
        /// The out-of-range endpoint.
        node: NodeId,
        /// The network's node count at extraction time.
        node_count: usize,
    },
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::DegenerateTarget { node } => write!(
                f,
                "target link endpoints must differ (both are node {node})"
            ),
            ExtractError::UnknownEndpoint { node, node_count } => write!(
                f,
                "target link endpoints must exist in the network \
                 (node {node} outside 0..{node_count})"
            ),
        }
    }
}

impl Error for ExtractError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ExtractError::DegenerateTarget { node: 4 };
        assert!(e.to_string().contains("node 4"));
        let e = ExtractError::UnknownEndpoint {
            node: 9,
            node_count: 5,
        };
        assert!(e.to_string().contains("node 9"));
        assert!(e.to_string().contains("0..5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExtractError>();
    }
}
